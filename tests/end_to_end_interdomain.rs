//! End-to-end interdomain pipeline over the full 23-network corpus.

use riskroute::interdomain::{InterdomainAnalysis, InterdomainTopology};
use riskroute::prelude::*;
use riskroute_topology::colocation::DEFAULT_COLOCATION_MILES;
use riskroute_topology::Network;

fn analysis() -> (Corpus, InterdomainAnalysis) {
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 4_000);
    let hazards = riskroute_hazard::HistoricalRisk::standard(42, Some(800));
    let networks: Vec<&Network> = corpus.all_networks().collect();
    let an = InterdomainAnalysis::new(
        &networks,
        &corpus.peering,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    );
    (corpus.clone(), an)
}

#[test]
fn merged_topology_covers_all_809_pops() {
    let (corpus, an) = analysis();
    let topo = an.topology();
    assert_eq!(topo.merged().pop_count(), 354 + 455);
    // Every network's PoPs are addressable and provenance round-trips.
    for net in corpus.all_networks() {
        let ids = topo.pops_of(net.name()).expect("network is merged");
        assert_eq!(ids.len(), net.pop_count());
        let (name, pop) = topo.provenance(ids[0]);
        assert_eq!(name, net.name());
        assert_eq!(pop, 0);
    }
}

#[test]
fn merged_topology_is_connected_through_peering() {
    let (_, an) = analysis();
    let g = an.topology().merged().distance_graph();
    assert!(
        riskroute_graph::components::is_connected(&g),
        "figure-2 peering must join all 23 networks into one routable fabric"
    );
}

#[test]
fn bounds_order_holds_across_networks() {
    let (corpus, an) = analysis();
    let topo = an.topology();
    let telepak = topo.pops_of("Telepak").unwrap();
    let mut dests = Vec::new();
    for name in ["CoStreet", "Goodnet", "Iris"] {
        dests.extend(topo.pops_of(name).unwrap());
    }
    let mut checked = 0;
    for &s in telepak.iter().take(5) {
        for &d in dests.iter().take(12) {
            if let Some((upper, lower)) = an.bounds(s, d) {
                assert!(
                    lower.bit_risk_miles <= upper.bit_risk_miles + 1e-6,
                    "lower bound must not exceed upper bound"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "peering fabric must route cross-country pairs");
    let _ = corpus;
}

#[test]
fn regional_reports_exist_for_all_sixteen() {
    let (corpus, an) = analysis();
    let names: Vec<&str> = corpus.regional.iter().map(|n| n.name()).collect();
    for name in &names {
        let r = an
            .regional_report(name, &names)
            .unwrap_or_else(|| panic!("{name} must have informative pairs"));
        assert!(r.pairs > 0);
        assert!(r.risk_reduction_ratio >= 0.0 && r.risk_reduction_ratio < 1.0);
        assert!(r.distance_increase_ratio >= -1e-12);
    }
}

#[test]
fn handoffs_only_between_peers() {
    let corpus = Corpus::standard(42);
    // Merge just three networks with one declared peering and verify no
    // shortcut appears between non-peers.
    let a = corpus.network("Epoch").unwrap();
    let b = corpus.network("Goodnet").unwrap();
    let c = corpus.network("CoStreet").unwrap();
    let mut peering = riskroute_topology::PeeringGraph::new();
    peering.add_peering("Epoch", "Goodnet");
    peering.add_network("CoStreet");
    let topo = InterdomainTopology::merge(&[a, b, c], &peering, DEFAULT_COLOCATION_MILES);
    let g = topo.merged().distance_graph();
    let epoch0 = topo.merged_id("Epoch", 0).unwrap();
    let costreet0 = topo.merged_id("CoStreet", 0).unwrap();
    assert!(
        riskroute_graph::dijkstra::shortest_path(&g, epoch0, costreet0).is_none(),
        "no path may exist to a non-peer island"
    );
    let goodnet0 = topo.merged_id("Goodnet", 0).unwrap();
    assert!(
        riskroute_graph::dijkstra::shortest_path(&g, epoch0, goodnet0).is_some(),
        "declared peering must be routable"
    );
}
