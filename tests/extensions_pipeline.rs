//! Cross-crate integration tests for the beyond-the-paper extensions:
//! backup routing, failure injection, corridor risk, seasonal hazard, and
//! forecast projection — all driven over the synthesized corpus.

use riskroute::backup::{backup_paths, lfa_next_hops};
use riskroute::corridor::corridor_risks;
use riskroute::failure::{criticality_ranking, storm_failure};
use riskroute::prelude::*;
use riskroute::replay::{replay_storm, replay_storm_proactive};
use riskroute::NodeRisk;
use riskroute_forecast::{advisories_for, earliest_warning, ForecastRisk, StormSwath};
use riskroute_hazard::{HistoricalRisk, SeasonalRisk};
use riskroute_population::PopShares;

fn substrate() -> (Corpus, PopulationModel, HistoricalRisk) {
    (
        Corpus::standard(42),
        PopulationModel::synthesize(42, 4_000),
        HistoricalRisk::standard(42, Some(800)),
    )
}

#[test]
fn backup_plans_exist_for_every_sprint_pair() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Sprint").unwrap();
    let planner = Planner::for_network(
        net,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    );
    for dst in 1..net.pop_count() {
        let plan = backup_paths(&planner, net, 0, dst, 3).expect("connected corpus network");
        // Primary matches the framework's risk route.
        let rr = planner.risk_route(0, dst).unwrap();
        assert_eq!(plan.primary.nodes, rr.nodes, "dst {dst}");
        // Ranked non-decreasing, loopless, physically valid.
        let mut prev = plan.primary.bit_risk_miles;
        for alt in &plan.alternates {
            assert!(alt.bit_risk_miles >= prev - 1e-6);
            prev = alt.bit_risk_miles;
            for w in alt.nodes.windows(2) {
                assert!(net.has_link(w[0], w[1]));
            }
        }
    }
}

#[test]
fn lfa_alternates_are_strictly_closer_to_the_destination() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Tinet").unwrap();
    let planner = Planner::for_network(
        net,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    );
    let dst = net.pop_count() - 1;
    let hops = lfa_next_hops(&planner, net, dst);
    assert_eq!(hops.len(), net.pop_count());
    let mut protected = 0;
    for h in &hops {
        if h.src == dst {
            assert_eq!(h.primary, None);
            continue;
        }
        let primary = h.primary.expect("connected network");
        assert!(net.has_link(h.src, primary), "primary must be a neighbor");
        if let Some(alt) = h.alternate {
            protected += 1;
            assert!(net.has_link(h.src, alt), "alternate must be a neighbor");
            assert_ne!(alt, primary);
            // Loop-freedom, verified operationally: hand the packet to the
            // alternate, then follow every node's *primary* next hop — it
            // must reach the destination without revisiting any node.
            // (The LFA inequality itself lives under the (src, dst) pair's
            // β, which has no public per-pair distance accessor; the
            // forwarding simulation is the observable contract.)
            let mut at = alt;
            let mut visited = std::collections::HashSet::from([h.src, alt]);
            while at != dst {
                let next = hops[at].primary.expect("on-path nodes are connected");
                assert!(
                    visited.insert(next) || next == dst,
                    "forwarding loop from src {} via alt {alt}",
                    h.src
                );
                at = next;
            }
        }
    }
    assert!(protected > 0, "a meshy network must have some LFA coverage");
}

#[test]
fn katrina_failure_injection_on_the_gulf_regional() {
    let (corpus, population, _) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let shares = PopShares::assign(&population, net, None);
    let swath = StormSwath::new(
        advisories_for(Storm::Katrina)
            .iter()
            .map(ForecastRisk::from_advisory)
            .collect(),
    );
    let report = storm_failure(net, &shares, &swath);
    assert!(
        !report.failed_pops.is_empty(),
        "Katrina must destroy Gulf-coast PoPs"
    );
    assert!(report.lost_links > 0);
    assert!(report.failed_population_share > 0.0);
    assert!(report.total_affected_share() <= 1.0 + 1e-9);
    // Every failed PoP really is inside the hurricane-force swath.
    for &p in &report.failed_pops {
        assert!(swath.ever_in_hurricane_winds(net.location(p)));
    }
}

#[test]
fn criticality_covers_the_corpus_and_flags_real_spofs() {
    let (corpus, _, hazards) = substrate();
    for name in ["Level3", "Telepak"] {
        let net = corpus.network(name).unwrap();
        let risk = NodeRisk::from_historical(net, &hazards);
        let ranking = criticality_ranking(net, &risk);
        assert_eq!(ranking.len(), net.pop_count());
        // Exposure ordering holds.
        for w in ranking.windows(2) {
            assert!(w[0].exposure >= w[1].exposure - 1e-12);
        }
        // Every flagged articulation point genuinely disconnects.
        let g = net.distance_graph();
        for c in ranking.iter().filter(|c| c.articulation).take(3) {
            let mut pruned = riskroute_graph::Graph::with_nodes(g.node_count());
            for (_, a, b, w) in g.edges() {
                if a != c.pop && b != c.pop {
                    pruned.add_edge(a, b, w).unwrap();
                }
            }
            // Removing the node leaves it isolated plus >= 2 other components.
            let comps = riskroute_graph::components::connected_components(&pruned);
            let non_trivial = comps
                .iter()
                .filter(|cc| !(cc.len() == 1 && cc[0] == c.pop))
                .count();
            assert!(non_trivial >= 2, "{name}: PoP {} is not a SPOF", c.pop);
        }
    }
}

#[test]
fn corridor_risk_is_consistent_with_the_hazard_surface() {
    let (corpus, _, hazards) = substrate();
    let net = corpus.network("NTS").unwrap(); // Texas/Gulf regional
    let risks = corridor_risks(net, &hazards);
    assert_eq!(risks.len(), net.link_count());
    for r in &risks {
        assert!(r.mean_risk >= 0.0 && r.peak_risk >= r.mean_risk);
        // Corridor mean is bounded by the hottest point on the corridor.
        assert!(r.risk_miles <= r.peak_risk * r.miles + 1e-9);
    }
    // Sorted by risk-mile integral.
    for w in risks.windows(2) {
        assert!(w[0].risk_miles >= w[1].risk_miles - 1e-12);
    }
}

#[test]
fn seasonal_risk_reshapes_routing_by_month() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("USA Network").unwrap(); // southeast regional
    let pts: Vec<riskroute_geo::GeoPoint> = net.pops().iter().map(|p| p.location).collect();
    let september = SeasonalRisk::new(&hazards, 9).risk_at_all(&pts);
    let january = SeasonalRisk::new(&hazards, 1).risk_at_all(&pts);
    // Hurricane country: September risk strictly dominates January.
    let sep_total: f64 = september.iter().sum();
    let jan_total: f64 = january.iter().sum();
    assert!(
        sep_total > 1.5 * jan_total,
        "sep {sep_total} vs jan {jan_total}"
    );
    // The seasonal vectors slot straight into the planner.
    let shares = PopShares::assign(&population, net, None);
    let n = net.pop_count();
    let planner_sep = Planner::new(
        net,
        NodeRisk::new(september, vec![0.0; n]),
        PopShares::from_shares(shares.shares().to_vec()),
        RiskWeights::historical_only(1e5),
    );
    let planner_jan = Planner::new(
        net,
        NodeRisk::new(january, vec![0.0; n]),
        PopShares::from_shares(shares.shares().to_vec()),
        RiskWeights::historical_only(1e5),
    );
    let sep_report = planner_sep.ratio_report();
    let jan_report = planner_jan.ratio_report();
    assert!(
        sep_report.risk_reduction_ratio >= jan_report.risk_reduction_ratio - 1e-9,
        "hurricane season should reward risk-aware routing at least as much"
    );
}

#[test]
fn proactive_replay_never_reacts_later_than_reactive() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let planner = Planner::for_network(net, &population, &hazards, RiskWeights::PAPER);
    let reactive = replay_storm(&planner, net, Storm::Katrina, 2).expect("valid replay args");
    let proactive = replay_storm_proactive(&planner, net, Storm::Katrina, 2, 24.0)
        .expect("valid replay args");
    let baseline = reactive.ticks[0].report.risk_reduction_ratio;
    let first = |r: &riskroute::replay::DisasterReplay| {
        r.ticks
            .iter()
            .find(|t| t.report.risk_reduction_ratio > baseline + 0.005)
            .map(|t| t.advisory)
    };
    match (first(&reactive), first(&proactive)) {
        (Some(re), Some(pro)) => assert!(pro <= re, "proactive {pro} vs reactive {re}"),
        (Some(_), None) => panic!("proactive must react when reactive does"),
        _ => {}
    }
}

#[test]
fn projection_warns_gulf_pops_before_landfall() {
    let (corpus, _, _) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let advisories = advisories_for(Storm::Katrina);
    let mut warned = 0;
    for p in net.pops() {
        if earliest_warning(&advisories, p.location, &[24.0, 48.0]).is_some() {
            warned += 1;
        }
    }
    assert!(
        warned as f64 > 0.5 * net.pop_count() as f64,
        "most Gulf PoPs get projected warnings ({warned}/{})",
        net.pop_count()
    );
}
