//! Property tests for the scoped worker pool: ordered reduction must hold
//! for arbitrary task/worker shapes, and a panicking task must surface as
//! a typed error — never abort the process or scramble the output order.

use riskroute_par::{par_map_collect, try_par_map_collect, Parallelism, PoolError};
use riskroute_rng::StdRng;

const CASES: usize = 40;

#[test]
fn par_map_collect_preserves_input_order_for_arbitrary_shapes() {
    let mut rng = StdRng::seed_from_u64(0x9a11e7);
    for case in 0..CASES {
        // Cover the degenerate shapes explicitly, then fuzz: empty input,
        // a single task, and task counts far above the worker count.
        let tasks = match case {
            0 => 0usize,
            1 => 1,
            2 => 1_000,
            _ => rng.gen_range(0..200usize),
        };
        let workers = match case {
            2 => 2usize, // tasks >> workers
            _ => rng.gen_range(1..12usize),
        };
        let items: Vec<u64> = (0..tasks).map(|_| rng.next_u64() >> 16).collect();
        let par = Parallelism::from_worker_count(workers);
        let out = par_map_collect(par, &items, |idx, &x| (idx, x.wrapping_mul(3)));
        assert_eq!(out.len(), items.len(), "case {case}: length must match input");
        for (i, (idx, mapped)) in out.iter().enumerate() {
            assert_eq!(*idx, i, "case {case}: slot {i} holds another task's result");
            assert_eq!(*mapped, items[i].wrapping_mul(3), "case {case}: slot {i} value");
        }
    }
}

#[test]
fn parallel_matches_sequential_for_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for case in 0..CASES {
        let tasks = rng.gen_range(0..150usize);
        let workers = rng.gen_range(2..9usize);
        let items: Vec<u64> = (0..tasks).map(|_| rng.next_u64()).collect();
        let f = |idx: usize, x: &u64| x.rotate_left(u32::try_from(idx % 64).unwrap_or(0));
        let sequential = par_map_collect(Parallelism::Sequential, &items, f);
        let parallel = par_map_collect(Parallelism::Threads(workers), &items, f);
        assert_eq!(sequential, parallel, "case {case}: {tasks} tasks x {workers} workers");
    }
}

#[test]
fn panicking_task_surfaces_as_typed_pool_error() {
    let mut rng = StdRng::seed_from_u64(0xdead);
    for workers in [1usize, 2, 8] {
        let tasks = rng.gen_range(10..60usize);
        let poison = rng.gen_range(0..tasks);
        let items: Vec<usize> = (0..tasks).collect();
        let result = try_par_map_collect(Parallelism::from_worker_count(workers), &items, |_, &x| {
            assert_ne!(x, poison, "deliberate test panic");
            x
        });
        let Err(err) = result else {
            panic!("{workers} workers: a panicking task must poison the pool")
        };
        assert!(
            matches!(err, PoolError::WorkerPanicked { panicked } if panicked >= 1),
            "{workers} workers: expected WorkerPanicked, got {err:?}"
        );
        // The CLI maps this through the core taxonomy to exit code 7.
        let core: riskroute::Error = err.into();
        assert!(
            matches!(core, riskroute::Error::WorkerPanic { panicked } if panicked >= 1),
            "core error must keep the panic count, got {core:?}"
        );
        assert!(core.to_string().contains("worker pool poisoned"));
    }
}

#[test]
fn pool_survives_a_poisoned_run_and_stays_ordered_afterwards() {
    // A panic in one call must not leak state into the next: each call
    // owns its scope, so a fresh call right after a poisoning succeeds.
    let items: Vec<usize> = (0..64).collect();
    let par = Parallelism::Threads(4);
    let poisoned = try_par_map_collect(par, &items, |_, &x| {
        assert!(x != 17, "deliberate test panic");
        x
    });
    assert!(poisoned.is_err());
    let clean = try_par_map_collect(par, &items, |idx, &x| idx + x).unwrap();
    assert_eq!(clean, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
}
