//! Paper-level invariants: the structural facts §4 and §7 state about the
//! data sets and framework, checked against this reproduction's substitutes.

use riskroute::prelude::*;
use riskroute_forecast::storms::ALL_STORMS;
use riskroute_hazard::events::sample_events;
use riskroute_hazard::ALL_EVENT_KINDS;
use riskroute_topology::peering::{PeeringGraph, TIER1_NAMES};

#[test]
fn section_4_1_network_counts() {
    let corpus = Corpus::standard(42);
    assert_eq!(corpus.tier1.len(), 7, "7 Tier-1 networks");
    assert_eq!(corpus.regional.len(), 16, "16 regional networks");
    let tier1_pops: usize = corpus.tier1.iter().map(|n| n.pop_count()).sum();
    let regional_pops: usize = corpus.regional.iter().map(|n| n.pop_count()).sum();
    assert_eq!(tier1_pops, 354, "354 total Tier-1 PoPs");
    assert_eq!(regional_pops, 455, "455 total regional PoPs");
    // Table 2's per-network PoP counts.
    for (name, pops) in [
        ("Level3", 233),
        ("AT&T", 25),
        ("Deutsche Telekom", 10),
        ("NTT", 12),
        ("Sprint", 24),
        ("Tinet", 35),
        ("Teliasonera", 15),
    ] {
        assert_eq!(corpus.network(name).unwrap().pop_count(), pops, "{name}");
    }
}

#[test]
fn section_4_3_event_counts() {
    let total_fema: usize = ALL_EVENT_KINDS
        .iter()
        .filter(|k| k.label().starts_with("FEMA"))
        .map(|k| k.paper_count())
        .sum();
    assert_eq!(total_fema, 29_865, "29,865 FEMA declarations 1970-2010");
    // Samplers honour the exact counts.
    for &kind in ALL_EVENT_KINDS {
        let n = kind.paper_count().min(1_000);
        assert_eq!(sample_events(kind, n, 1).len(), n);
    }
}

#[test]
fn section_4_4_advisory_counts() {
    let counts: Vec<usize> = ALL_STORMS.iter().map(|s| s.advisory_count()).collect();
    // Paper order: Katrina 61, Irene 70, Sandy 60.
    assert!(counts.contains(&61) && counts.contains(&70) && counts.contains(&60));
    for &storm in ALL_STORMS {
        assert_eq!(advisories_for(storm).len(), storm.advisory_count());
    }
}

#[test]
fn figure_2_peering_structure() {
    let g = PeeringGraph::figure2();
    assert_eq!(g.networks().len(), 23);
    // Full Tier-1 mesh.
    for a in TIER1_NAMES {
        for b in TIER1_NAMES {
            if a != b {
                assert!(g.are_peers(a, b));
            }
        }
    }
    // No regional-regional peerings in Figure 2.
    let corpus = Corpus::standard(42);
    for x in &corpus.regional {
        for y in &corpus.regional {
            if x.name() != y.name() {
                assert!(
                    !g.are_peers(x.name(), y.name()),
                    "{} / {} must not peer directly",
                    x.name(),
                    y.name()
                );
            }
        }
    }
}

#[test]
fn every_corpus_network_is_internally_connected() {
    let corpus = Corpus::standard(42);
    for net in corpus.all_networks() {
        assert!(
            riskroute_graph::components::is_connected(&net.distance_graph()),
            "{} must be connected",
            net.name()
        );
    }
}

#[test]
fn definition_1_bit_risk_decomposition() {
    // bit-risk miles = bit-miles + impact-scaled risk, exactly (Definition 1).
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 3_000);
    let hazards = riskroute_hazard::HistoricalRisk::standard(42, Some(500));
    let net = corpus.network("NTT").unwrap();
    let planner = Planner::for_network(net, &population, &hazards, RiskWeights::PAPER);
    let route = planner.risk_route(0, net.pop_count() - 1).unwrap();
    let beta = planner.impact(0, net.pop_count() - 1);
    let recomputed: f64 = route.nodes[1..]
        .iter()
        .map(|&v| beta * planner.risk().scaled(v, planner.weights()))
        .sum();
    assert!((route.risk_miles - recomputed).abs() < 1e-9);
    assert!((route.bit_risk_miles - route.bit_miles - route.risk_miles).abs() < 1e-9);
}
