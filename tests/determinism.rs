//! Determinism: every experiment input regenerates bit-identically from its
//! seed — the property that makes the harness outputs reproducible.

use riskroute::prelude::*;
use riskroute_hazard::events::sample_events;
use riskroute_hazard::EventKind;

#[test]
fn corpus_is_bit_identical_under_a_seed() {
    let a = Corpus::standard(7);
    let b = Corpus::standard(7);
    for (na, nb) in a.all_networks().zip(b.all_networks()) {
        assert_eq!(na.name(), nb.name());
        assert_eq!(na.pops(), nb.pops());
        assert_eq!(na.links(), nb.links());
    }
    let c = Corpus::standard(8);
    let diff = a
        .all_networks()
        .zip(c.all_networks())
        .filter(|(x, y)| x.pops() != y.pops())
        .count();
    assert!(
        diff > 0,
        "a different seed must synthesize different networks"
    );
}

#[test]
fn population_and_hazards_are_deterministic() {
    let p1 = PopulationModel::synthesize(3, 2_000);
    let p2 = PopulationModel::synthesize(3, 2_000);
    assert_eq!(p1.blocks(), p2.blocks());

    let e1 = sample_events(EventKind::FemaStorm, 500, 3);
    let e2 = sample_events(EventKind::FemaStorm, 500, 3);
    assert_eq!(e1, e2);
}

#[test]
fn routes_and_ratios_are_deterministic() {
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 3_000);
    let hazards = riskroute_hazard::HistoricalRisk::standard(42, Some(500));
    let net = corpus.network("Sprint").unwrap();
    let build = || {
        Planner::for_network(
            net,
            &population,
            &hazards,
            RiskWeights::historical_only(1e5),
        )
    };
    let r1 = build().ratio_report();
    let r2 = build().ratio_report();
    assert_eq!(r1.risk_reduction_ratio, r2.risk_reduction_ratio);
    assert_eq!(r1.distance_increase_ratio, r2.distance_increase_ratio);
    let p1 = build().risk_route(0, net.pop_count() - 1).unwrap();
    let p2 = build().risk_route(0, net.pop_count() - 1).unwrap();
    assert_eq!(p1.nodes, p2.nodes);
    assert_eq!(p1.bit_risk_miles, p2.bit_risk_miles);
}

#[test]
fn advisory_series_are_deterministic() {
    let a = advisories_for(Storm::Irene);
    let b = advisories_for(Storm::Irene);
    assert_eq!(a, b);
    let texts_a: Vec<String> = a.iter().map(|x| x.to_text()).collect();
    let texts_b: Vec<String> = b.iter().map(|x| x.to_text()).collect();
    assert_eq!(texts_a, texts_b);
}
