//! Integration tests for the §3.1 deployment paths over corpus networks:
//! risk-aware OSPF weights and MRC backup configurations.

use riskroute::mrc::MrcConfigurations;
use riskroute::ospf::{evaluate_ospf, mean_impact, risk_aware_weights};
use riskroute::prelude::*;

fn substrate() -> (Corpus, PopulationModel, riskroute_hazard::HistoricalRisk) {
    (
        Corpus::standard(42),
        PopulationModel::synthesize(42, 4_000),
        riskroute_hazard::HistoricalRisk::standard(42, Some(800)),
    )
}

#[test]
fn ospf_weights_capture_most_of_riskroute_on_corpus_networks() {
    let (corpus, population, hazards) = substrate();
    for name in ["Sprint", "Teliasonera"] {
        let net = corpus.network(name).unwrap();
        let planner = Planner::for_network(
            net,
            &population,
            &hazards,
            RiskWeights::historical_only(1e5),
        );
        let weights = risk_aware_weights(net, &planner, mean_impact(&planner));
        // Weights never fall below the raw mileage.
        for (w, l) in weights.iter().zip(net.links()) {
            assert!(*w >= l.miles - 1e-9);
        }
        let eval = evaluate_ospf(net, &planner, &weights);
        let exact = planner.ratio_report();
        assert_eq!(eval.pairs, exact.pairs, "{name}");
        assert!(
            eval.path_fidelity > 0.5,
            "{name}: fidelity {}",
            eval.path_fidelity
        );
        assert!(eval.mean_excess_bit_risk >= -1e-12);
        assert!(
            eval.report.risk_reduction_ratio <= exact.risk_reduction_ratio + 1e-9,
            "{name}: OSPF cannot beat the optimum"
        );
        // And it must capture a substantive share of the benefit.
        if exact.risk_reduction_ratio > 0.01 {
            assert!(
                eval.report.risk_reduction_ratio > 0.5 * exact.risk_reduction_ratio,
                "{name}: captured only {} of {}",
                eval.report.risk_reduction_ratio,
                exact.risk_reduction_ratio
            );
        }
    }
}

#[test]
fn mrc_covers_single_failures_on_a_coverable_corpus_network() {
    let (corpus, population, hazards) = substrate();
    // MRC requires a 2-connected topology (no articulation points); find a
    // coverable Tier-1 in the corpus. If a network is uncoverable at every
    // k, it must be because it has articulation points — that contract is
    // asserted for the skipped networks.
    let mut chosen = None;
    for net in &corpus.tier1 {
        match (3..=10).find_map(|k| MrcConfigurations::build(net, k)) {
            Some(mrc) => {
                chosen = Some((net, mrc));
                break;
            }
            None => {
                let aps = riskroute_graph::centrality::articulation_points(&net.distance_graph());
                assert!(
                    !aps.is_empty(),
                    "{} is uncoverable yet has no articulation point",
                    net.name()
                );
            }
        }
    }
    let Some((net, mrc)) = chosen else {
        // Every Tier-1 has SPOFs in this corpus draw; the contract above
        // already verified each refusal was justified.
        return;
    };
    let planner = Planner::for_network(
        net,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    );
    // Spot-check recovery for every failure with a fixed src/dst sample.
    let n = net.pop_count();
    let mut covered = 0;
    let mut total = 0;
    for failed in 0..n {
        for (src, dst) in [(0, n - 1), (1, n / 2), (n - 1, 2)] {
            if src == failed || dst == failed || src == dst {
                continue;
            }
            total += 1;
            if let Some(route) = mrc.route_around_failure(&planner, net, failed, src, dst) {
                covered += 1;
                assert!(!route.nodes.contains(&failed));
                for w in route.nodes.windows(2) {
                    assert!(net.has_link(w[0], w[1]));
                }
            }
        }
    }
    assert_eq!(
        covered, total,
        "every sampled failure case must be recoverable"
    );
}

#[test]
fn mrc_groups_partition_the_network() {
    let (corpus, _, _) = substrate();
    let net = corpus.network("Tinet").unwrap();
    if let Some(mrc) = (3..=10).find_map(|k| MrcConfigurations::build(net, k)) {
        let mut seen = vec![false; net.pop_count()];
        for c in 0..mrc.config_count() {
            for v in mrc.isolated_by(c) {
                assert!(!seen[v], "PoP {v} in two configurations");
                seen[v] = true;
                assert_eq!(mrc.config_for(v), c);
            }
        }
        assert!(seen.iter().all(|&s| s), "every PoP is protected somewhere");
    }
}
