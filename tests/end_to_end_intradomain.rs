//! End-to-end intradomain pipeline: synthesize corpus + substrate, route,
//! and check the paper's structural invariants.

use riskroute::prelude::*;

fn substrate() -> (Corpus, PopulationModel, riskroute_hazard::HistoricalRisk) {
    (
        Corpus::standard(42),
        PopulationModel::synthesize(42, 4_000),
        riskroute_hazard::HistoricalRisk::standard(42, Some(800)),
    )
}

#[test]
fn riskroute_dominates_shortest_path_in_bit_risk() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Sprint").unwrap();
    let planner = Planner::for_network(
        net,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    );
    for src in 0..net.pop_count() {
        for dst in 0..net.pop_count() {
            if src == dst {
                continue;
            }
            let rr = planner
                .risk_route(src, dst)
                .expect("connected corpus network");
            let sp = planner.shortest_route(src, dst).expect("connected");
            assert!(
                rr.bit_risk_miles <= sp.bit_risk_miles + 1e-6,
                "({src},{dst}): RiskRoute must never lose in bit-risk"
            );
            assert!(
                rr.bit_miles >= sp.bit_miles - 1e-6,
                "({src},{dst}): RiskRoute can never be geographically shorter"
            );
            // Decomposition consistency.
            assert!((rr.bit_risk_miles - rr.bit_miles - rr.risk_miles).abs() < 1e-9);
        }
    }
}

#[test]
fn paths_are_walks_over_real_links() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Teliasonera").unwrap();
    let planner = Planner::for_network(
        net,
        &population,
        &hazards,
        RiskWeights::historical_only(1e6),
    );
    for dst in 1..net.pop_count() {
        let rr = planner.risk_route(0, dst).expect("connected");
        assert_eq!(rr.nodes.first(), Some(&0));
        assert_eq!(rr.nodes.last(), Some(&dst));
        for w in rr.nodes.windows(2) {
            assert!(
                net.has_link(w[0], w[1]),
                "hop {:?} is not a physical link",
                w
            );
        }
        // Loopless.
        let mut seen = std::collections::HashSet::new();
        assert!(
            rr.nodes.iter().all(|n| seen.insert(*n)),
            "loop in {:?}",
            rr.nodes
        );
    }
}

#[test]
fn lambda_sweep_is_monotone_in_both_objectives() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("AT&T").unwrap();
    let mut planner = Planner::for_network(
        net,
        &population,
        &hazards,
        RiskWeights::historical_only(0.0),
    );
    let mut prev_rr = -1.0;
    let mut prev_dr = -1.0;
    for lambda in [0.0, 1e4, 1e5, 1e6] {
        planner.set_weights(RiskWeights::historical_only(lambda));
        let r = planner.ratio_report();
        assert!(
            r.risk_reduction_ratio >= prev_rr - 1e-9,
            "risk reduction must grow with lambda"
        );
        assert!(
            r.distance_increase_ratio >= prev_dr - 1e-9,
            "distance increase must grow with lambda"
        );
        prev_rr = r.risk_reduction_ratio;
        prev_dr = r.distance_increase_ratio;
    }
    // λ = 0 degenerates to shortest-path routing exactly.
    planner.set_weights(RiskWeights::historical_only(0.0));
    let r0 = planner.ratio_report();
    assert!(r0.risk_reduction_ratio.abs() < 1e-12);
    assert!(r0.distance_increase_ratio.abs() < 1e-12);
}

#[test]
fn ratio_report_is_bounded_and_counts_pairs() {
    let (corpus, population, hazards) = substrate();
    for name in ["Deutsche Telekom", "NTT"] {
        let net = corpus.network(name).unwrap();
        let planner = Planner::for_network(
            net,
            &population,
            &hazards,
            RiskWeights::historical_only(1e5),
        );
        let r = planner.ratio_report();
        let n = net.pop_count();
        assert_eq!(
            r.pairs,
            n * (n - 1),
            "{name}: all ordered pairs informative"
        );
        assert!(r.risk_reduction_ratio >= 0.0 && r.risk_reduction_ratio < 1.0);
        assert!(r.distance_increase_ratio >= 0.0);
    }
}

#[test]
fn impact_scaling_shapes_risk_charges() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Tinet").unwrap();
    let planner = Planner::for_network(
        net,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    );
    // β(i,j) = c_i + c_j must be symmetric and positive for populated PoPs.
    for i in 0..net.pop_count() {
        for j in 0..net.pop_count() {
            assert!((planner.impact(i, j) - planner.impact(j, i)).abs() < 1e-15);
        }
    }
    // The same physical route charges more risk for higher-impact pairs.
    let shares = planner.shares();
    let mut by_share: Vec<usize> = (0..net.pop_count()).collect();
    by_share.sort_by(|&a, &b| shares.share(b).partial_cmp(&shares.share(a)).unwrap());
    let (big, small) = (by_share[0], by_share[by_share.len() - 1]);
    assert!(shares.share(big) >= shares.share(small));
}
