//! Property test for edge-delta-aware cost stamps and incremental SSSP
//! repair: over random graphs and random forecast-delta sequences, a planner
//! that evolved through `set_forecast` (serving queries via cache survival
//! and incremental tree repair) must answer every pair query **bit-for-bit**
//! like a planner built fresh at the same state — at any worker count.
//!
//! The delta sequences deliberately include bitwise-identical resubmissions
//! (must keep the stamp), localized single-node nudges, risk drops back to
//! zero (sign flips of the cost delta), global rewrites, and graphs with an
//! isolated PoP (unreachable nodes in the repair cone).
//!
//! This file holds exactly one `#[test]`: the obs collector is
//! process-global, and the final non-vacuousness assertion (repairs and
//! survivals actually happened) would be polluted by a sibling test.

use riskroute::prelude::*;
use riskroute::NodeRisk;
use riskroute_geo::GeoPoint;
use riskroute_population::PopShares;
use riskroute_rng::StdRng;
use riskroute_topology::{Network, NetworkKind, Pop};

/// Worker counts the evolved planner is crossed with.
const MATRIX: [Parallelism; 3] = [
    Parallelism::Sequential,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
];

/// Random connected-ish network: a random tree over `n` PoPs plus random
/// chords (non-tree edges), occasionally leaving the last PoP isolated so
/// repair must cope with unreachable nodes.
fn random_network(rng: &mut StdRng, trial: usize) -> Network {
    let n = rng.gen_range(6..14usize);
    let pops: Vec<Pop> = (0..n)
        .map(|i| Pop {
            name: format!("P{trial}-{i}"),
            location: GeoPoint::new(
                30.0 + 10.0 * rng.gen_f64(),
                -100.0 + 10.0 * rng.gen_f64(),
            )
            .unwrap(),
        })
        .collect();
    let isolate_last = rng.gen_bool(0.25);
    let mut links: Vec<(usize, usize)> = Vec::new();
    for i in 1..n {
        if isolate_last && i == n - 1 {
            continue;
        }
        links.push((rng.gen_range(0..i), i));
    }
    let span = if isolate_last { n - 1 } else { n };
    for _ in 0..n / 2 {
        let a = rng.gen_range(0..span);
        let b = rng.gen_range(0..span);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if links.iter().any(|&(x, y)| (x.min(y), x.max(y)) == key) {
            continue;
        }
        links.push((a, b));
    }
    Network::new(format!("prop-{trial}"), NetworkKind::Regional, pops, links).unwrap()
}

/// One random forecast mutation: resubmit, nudge one node, drop one node to
/// zero, or rewrite globally.
fn mutate_forecast(rng: &mut StdRng, forecast: &mut [f64]) {
    match rng.gen_range(0..4usize) {
        // Bitwise resubmission: the stamp (and every cached tree) must
        // survive untouched.
        0 => {}
        // Localized nudge: a small repair cone.
        1 => {
            let v = rng.gen_range(0..forecast.len());
            forecast[v] = rng.gen_f64() * 1e-2;
        }
        // Sign flip of the cost delta: risk that was raised falls back to
        // zero (cheaper edges — the direction scratch invalidation never
        // exercises).
        2 => {
            let v = rng.gen_range(0..forecast.len());
            forecast[v] = 0.0;
        }
        // Global rewrite: the repair cone covers most of the graph, forcing
        // the fallback-to-scratch path.
        _ => {
            for f in forecast.iter_mut() {
                *f = rng.gen_f64() * 1e-2;
            }
        }
    }
}

fn counter(snap: &riskroute_obs::MetricsSnapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn evolved_planners_answer_like_fresh_planners_under_random_deltas() {
    let mut rng = riskroute_rng::seeded(0x5eed_cafe);
    riskroute_obs::reset();
    riskroute_obs::enable();
    for trial in 0..6 {
        let net = random_network(&mut rng, trial);
        let n = net.pop_count();
        let hist: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 1e-2).collect();
        let shares = PopShares::from_shares(vec![1.0 / n as f64; n]);
        let weights = RiskWeights::PAPER;
        let build = |forecast: Vec<f64>| {
            Planner::new(
                &net,
                NodeRisk::new(hist.clone(), forecast),
                shares.clone(),
                weights,
            )
        };
        // One planner per worker count, all evolved through the same
        // forecast sequence.
        let mut evolved: Vec<Planner> = MATRIX
            .iter()
            .map(|&par| build(vec![0.0; n]).with_parallelism(par))
            .collect();
        let all: Vec<usize> = (0..n).collect();
        let mut forecast = vec![0.0; n];
        for _step in 0..8 {
            mutate_forecast(&mut rng, &mut forecast);
            let fresh = build(forecast.clone());
            let reference = fresh.pair_sweep(&all, &all);
            for planner in &mut evolved {
                planner.set_forecast(forecast.clone());
                let got = planner.pair_sweep(&all, &all);
                assert_eq!(
                    reference.outcomes,
                    got.outcomes,
                    "evolved planner diverged from fresh (trial {trial}, {})",
                    planner.parallelism()
                );
                assert_eq!(
                    reference.stranded, got.stranded,
                    "stranded pairs diverged from fresh (trial {trial})"
                );
            }
        }
    }
    riskroute_obs::disable();
    let snap = riskroute_obs::snapshot();
    // Non-vacuousness: the sequences above must actually have exercised the
    // delta machinery, not fallen through to scratch SSSP everywhere.
    assert!(
        counter(&snap, "sssp_repairs") > 0,
        "no incremental repairs happened — the property test is vacuous"
    );
    assert!(
        counter(&snap, "trees_survived_delta") > 0,
        "no trees survived a delta — the property test is vacuous"
    );
    assert!(
        counter(&snap, "changed_edges") > 0,
        "no changed edges were logged — the property test is vacuous"
    );
}
