//! Tracing must be free of observable effect: daemon responses are
//! byte-identical with collection enabled or disabled at any worker count,
//! and when eight clients hammer the daemon concurrently, the per-trace
//! attribution tables account for *all* engine work — per-trace SSSP-run
//! and route-cache counters sum exactly to the global deltas, with no lost
//! or cross-attributed work.
//!
//! One `#[test]` on purpose: the obs collector is process-global, and the
//! enable/disable toggling here needs exclusive ownership of it.

use riskroute::Parallelism;
use riskroute_cli::commands::ServeHandler;
use riskroute_cli::{parse_args, CliContext};
use riskroute_serve::{ServeConfig, Server, SpawnedServer};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// Spawn an in-process daemon whose handler runs at `workers` threads.
fn daemon(workers: Parallelism) -> (SpawnedServer, SocketAddr) {
    let mut ctx = CliContext::build(&[]).expect("context");
    ctx.parallelism = workers;
    let cli = parse_args(&["corpus".to_string()]).expect("parse");
    let handler = Arc::new(ServeHandler::new(ctx, cli.weights(), None));
    let server = Server::bind_tcp("127.0.0.1:0", handler, ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    (server.spawn(), addr)
}

/// One request line in, the raw response line out (byte comparison needs
/// the unparsed wire bytes).
fn query_raw(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    reader.read_line(&mut out).expect("read");
    out
}

/// Requests that exercise SSSP, the route-tree cache, parallel pair
/// sweeps, and the scenario engine.
const CASES: &[&str] = &[
    r#"{"id":1,"op":"route","network":"Sprint","src":"0","dst":"5"}"#,
    r#"{"id":2,"op":"ratio","network":"Telepak"}"#,
    r#"{"id":3,"op":"sweep","network":"Telepak","mode":"n1"}"#,
    r#"{"id":4,"op":"corpus"}"#,
];

#[test]
fn tracing_never_changes_bytes_and_attribution_sums_to_global_deltas() {
    // Part 1: byte-identical responses with tracing off vs on, at one, two,
    // and eight workers.
    for workers in [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(8),
    ] {
        riskroute_obs::disable();
        riskroute_obs::reset();
        let (server, addr) = daemon(workers);
        let plain: Vec<String> = CASES.iter().map(|req| query_raw(addr, req)).collect();
        let report = server.drain_and_join();
        assert!(!report.forced, "{workers:?}");

        riskroute_obs::reset();
        riskroute_obs::enable();
        let (server, addr) = daemon(workers);
        let traced: Vec<String> = CASES.iter().map(|req| query_raw(addr, req)).collect();
        let report = server.drain_and_join();
        assert!(!report.forced, "{workers:?}");
        riskroute_obs::disable();

        assert_eq!(
            plain, traced,
            "tracing changed response bytes at {workers:?}"
        );
    }

    // Part 2: eight concurrent clients; per-trace engine counters must sum
    // exactly to the global deltas — nothing lost, nothing cross-attributed
    // to a foreign trace or left unattributed.
    riskroute_obs::reset();
    riskroute_obs::enable();
    let (server, addr) = daemon(Parallelism::Threads(2));
    let tracked = ["risk_sssp_runs", "route_cache_hits", "route_cache_misses"];
    let before: Vec<u64> = tracked
        .iter()
        .map(|n| riskroute_obs::counter_value(n))
        .collect();
    let requests: Vec<String> = (0..8)
        .map(|i| match i % 4 {
            0 => format!(
                r#"{{"id":{i},"op":"route","network":"Sprint","src":"0","dst":"{}"}}"#,
                i + 2
            ),
            1 => format!(
                r#"{{"id":{i},"op":"route","network":"Telepak","src":"1","dst":"{}"}}"#,
                i + 2
            ),
            2 => format!(r#"{{"id":{i},"op":"ratio","network":"Telepak"}}"#),
            _ => format!(r#"{{"id":{i},"op":"sweep","network":"Telepak","mode":"n1"}}"#),
        })
        .collect();
    let replies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|req| scope.spawn(move || query_raw(addr, req)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (req, reply) in requests.iter().zip(&replies) {
        assert!(
            reply.contains("\"status\":\"ok\""),
            "{req} failed: {reply}"
        );
    }
    let report = server.drain_and_join();
    assert!(!report.forced, "{report:?}");
    riskroute_obs::disable();

    let snap = riskroute_obs::snapshot();
    assert_eq!(
        snap.traces.len(),
        8,
        "one trace per admitted request: {:?}",
        snap.traces
    );
    for (name, before) in tracked.iter().zip(before) {
        let global_delta = snap.counters.get(*name).copied().unwrap_or(0) - before;
        let per_trace_sum: u64 = snap
            .traces
            .values()
            .map(|t| t.counters.get(*name).copied().unwrap_or(0))
            .sum();
        assert_eq!(
            per_trace_sum, global_delta,
            "{name}: per-trace attribution must sum to the global delta"
        );
    }
    // The workload actually exercised the engine — the equality above is
    // not vacuous.
    assert!(
        snap.counters.get("risk_sssp_runs").copied().unwrap_or(0) > 0,
        "workload drove no SSSP runs"
    );
}
