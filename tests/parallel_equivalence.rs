//! Sequential/parallel equivalence: every `--threads` setting must produce
//! byte-identical results. The parallel reductions replay the sequential
//! fold order exactly, so these are `assert_eq!` checks on full result
//! structs (f64s included), not tolerance comparisons — and budgeted runs
//! must cut at the same stage boundary regardless of worker count.

use riskroute::prelude::*;
use riskroute::provisioning::{greedy_links, greedy_links_budgeted, greedy_links_resume};
use riskroute::replay::{raw_advisories, replay_raw_advisories_budgeted, replay_storm};
use riskroute_geo::GeoPoint;
use riskroute_hazard::HistoricalRisk;
use riskroute_population::PopShares;
use riskroute_topology::Network;

/// Sequential first: the later entries are diffed against index 0.
const MATRIX: [Parallelism; 3] = [
    Parallelism::Sequential,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
];

fn substrate() -> (Corpus, PopulationModel, HistoricalRisk) {
    (
        Corpus::standard(42),
        PopulationModel::synthesize(42, 4_000),
        HistoricalRisk::standard(42, Some(800)),
    )
}

fn planner_at(
    net: &Network,
    population: &PopulationModel,
    hazards: &HistoricalRisk,
    parallelism: Parallelism,
) -> Planner {
    Planner::for_network(net, population, hazards, RiskWeights::historical_only(1e5))
        .with_parallelism(parallelism)
}

#[test]
fn ratio_reports_are_identical_across_thread_counts() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let sequential = planner_at(net, &population, &hazards, MATRIX[0]).ratio_report();
    for par in &MATRIX[1..] {
        let report = planner_at(net, &population, &hazards, *par).ratio_report();
        assert_eq!(sequential, report, "ratio report diverged at {par}");
    }
}

#[test]
fn provisioning_pick_sequence_is_identical_across_thread_counts() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let mut runs = Vec::new();
    for par in MATRIX {
        let planner = planner_at(net, &population, &hazards, par);
        let risk = planner.risk().clone();
        let shares = PopShares::from_shares(planner.shares().shares().to_vec());
        let weights = RiskWeights::historical_only(1e5);
        let rebuild =
            move |aug: &Network| Planner::new(aug, risk.clone(), shares.clone(), weights);
        runs.push(greedy_links(net, &planner, 3, rebuild));
    }
    assert!(!runs[0].added.is_empty(), "fixture must actually choose links");
    for (run, par) in runs.iter().zip(MATRIX).skip(1) {
        assert_eq!(&runs[0], run, "greedy pick sequence diverged at {par}");
    }
}

#[test]
fn budgeted_provisioning_cuts_and_resumes_identically_across_thread_counts() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let weights = RiskWeights::historical_only(1e5);
    let mut partials = Vec::new();
    let mut resumed_runs = Vec::new();
    for par in MATRIX {
        let planner = planner_at(net, &population, &hazards, par);
        let risk = planner.risk().clone();
        let shares = PopShares::from_shares(planner.shares().shares().to_vec());
        let make_rebuild = || {
            let risk = risk.clone();
            let shares = shares.clone();
            move |aug: &Network| Planner::new(aug, risk.clone(), shares.clone(), weights)
        };
        // One greedy iteration's worth of work: the cut must land after
        // the same iteration no matter how the wave was fanned out.
        let budget = WorkBudget::unlimited().with_max_work(1);
        let run = greedy_links_budgeted(net, &planner, 3, make_rebuild(), &budget, |_| {});
        let Budgeted::Partial {
            completed,
            resume_state,
            stopped,
        } = run
        else {
            panic!("a 1-unit budget must stop a 3-link search ({par})");
        };
        assert_eq!(stopped, StopReason::WorkExhausted);
        partials.push((completed.clone(), resume_state));
        let resume = greedy_links_resume(
            net,
            &planner,
            3,
            make_rebuild(),
            completed,
            &WorkBudget::unlimited(),
            |_| {},
        );
        let (full, stopped) = resume.into_parts();
        assert!(stopped.is_none(), "unlimited resume never stops");
        resumed_runs.push(full);
    }
    for (i, par) in MATRIX.iter().enumerate().skip(1) {
        assert_eq!(partials[0], partials[i], "partial prefix diverged at {par}");
        assert_eq!(
            resumed_runs[0], resumed_runs[i],
            "resumed result diverged at {par}"
        );
    }
}

#[test]
fn replay_tick_series_is_identical_across_thread_counts() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let sequential = replay_storm(
        &planner_at(net, &population, &hazards, MATRIX[0]),
        net,
        Storm::Katrina,
        4,
    )
    .unwrap();
    assert!(sequential.ticks.len() >= 3, "fixture needs a real tick series");
    for par in &MATRIX[1..] {
        let replay = replay_storm(
            &planner_at(net, &population, &hazards, *par),
            net,
            Storm::Katrina,
            4,
        )
        .unwrap();
        assert_eq!(sequential, replay, "replay tick series diverged at {par}");
    }
}

#[test]
fn budgeted_replay_cuts_and_resumes_identically_across_thread_counts() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let locations: Vec<GeoPoint> = net.pops().iter().map(|p| p.location).collect();
    let all: Vec<usize> = (0..net.pop_count()).collect();
    let raws = raw_advisories(Storm::Katrina, 4).unwrap();
    assert!(raws.len() >= 4, "fixture needs enough advisories to cut");
    let cut = raws.len() as u64 / 2;

    let mut partials = Vec::new();
    let mut resumed_runs = Vec::new();
    for par in MATRIX {
        let planner = planner_at(net, &population, &hazards, par);
        let budget = WorkBudget::unlimited().with_max_work(cut);
        let run = replay_raw_advisories_budgeted(
            &planner,
            net.name(),
            &locations,
            Storm::Katrina.name(),
            &raws,
            &all,
            &all,
            Vec::new(),
            &budget,
            |_, _| {},
        )
        .unwrap();
        let Budgeted::Partial {
            completed,
            resume_state,
            stopped,
        } = run
        else {
            panic!("a {cut}-tick budget must stop a {}-tick replay ({par})", raws.len());
        };
        assert_eq!(stopped, StopReason::WorkExhausted);
        assert_eq!(
            completed.ticks.len(),
            usize::try_from(cut).unwrap(),
            "the work-counter cut must land on the exact tick boundary at {par}"
        );
        assert_eq!(resume_state.next_index, completed.ticks.len());
        partials.push(completed.clone());
        let resume = replay_raw_advisories_budgeted(
            &planner,
            net.name(),
            &locations,
            Storm::Katrina.name(),
            &raws,
            &all,
            &all,
            completed.ticks,
            &WorkBudget::unlimited(),
            |_, _| {},
        )
        .unwrap();
        let (full, stopped) = resume.into_parts();
        assert!(stopped.is_none(), "unlimited resume never stops");
        resumed_runs.push(full);
    }
    for (i, par) in MATRIX.iter().enumerate().skip(1) {
        assert_eq!(partials[0], partials[i], "partial tick prefix diverged at {par}");
        assert_eq!(
            resumed_runs[0], resumed_runs[i],
            "resumed tick series diverged at {par}"
        );
    }
}
