//! Crash-consistency of budgeted provisioning: the greedy search is
//! deterministic, and resuming from a snapshot taken at *any* checkpoint
//! boundary reproduces the uninterrupted result bit-identically.

use riskroute::checkpoint::{load_snapshot, Snapshot, SnapshotProgress};
use riskroute::prelude::*;
use riskroute::provisioning::{greedy_links, greedy_links_resume, GreedyLinks};
use riskroute_population::PopShares;
use riskroute_topology::Network;

const K: usize = 3;

fn substrate() -> (Corpus, PopulationModel, riskroute_hazard::HistoricalRisk) {
    (
        Corpus::standard(42),
        PopulationModel::synthesize(42, 4_000),
        riskroute_hazard::HistoricalRisk::standard(42, Some(800)),
    )
}

#[test]
fn greedy_provisioning_is_deterministic_and_resumes_from_every_boundary() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let weights = RiskWeights::historical_only(1e5);
    let planner = Planner::for_network(net, &population, &hazards, weights);
    let risk = planner.risk().clone();
    let shares = PopShares::from_shares(planner.shares().shares().to_vec());
    let make_rebuild = || {
        let risk = risk.clone();
        let shares = shares.clone();
        move |aug: &Network| Planner::new(aug, risk.clone(), shares.clone(), weights)
    };

    // Determinism: two unbudgeted runs agree exactly, f64s included.
    let full = greedy_links(net, &planner, K, make_rebuild());
    let again = greedy_links(net, &planner, K, make_rebuild());
    assert_eq!(full, again, "greedy must be bit-deterministic");
    assert!(!full.added.is_empty(), "fixture must actually choose links");

    // Crash-consistency: for every prefix length (every point a checkpoint
    // could have been written, including the empty one), round-trip the
    // prefix through the snapshot wire format and resume. The continuation
    // must land on the identical uninterrupted result.
    for cut in 0..=full.added.len() {
        let prior = GreedyLinks {
            original_bit_risk: full.original_bit_risk,
            added: full.added[..cut].to_vec(),
        };
        let snap = Snapshot::provision(net.name(), K, weights.lambda_h, weights.lambda_f, &prior);
        let loaded = load_snapshot(&snap.to_text()).unwrap();
        let SnapshotProgress::Provision(prior) = loaded.progress else {
            panic!("provision snapshot must load provision progress");
        };
        assert_eq!(prior.added.len(), cut, "prefix survives the wire format");
        let run = greedy_links_resume(
            net,
            &planner,
            K,
            make_rebuild(),
            prior,
            &WorkBudget::unlimited(),
            |_| {},
        );
        let (resumed, stopped) = run.into_parts();
        assert!(stopped.is_none(), "unlimited budget never stops");
        assert_eq!(resumed, full, "resume from boundary {cut} must be bit-identical");
    }
}
