//! Delta-on/delta-off equivalence: edge-delta-aware cost stamps and
//! incremental SSSP repair are exact, so disabling them
//! (`--no-delta-invalidation`) must change nothing but wall time — at any
//! worker count, including budget-cut-and-resume runs. Like the cache and
//! `--threads` equivalence suites these are `assert_eq!` checks on full
//! result structs (f64s included), not tolerance comparisons.

use riskroute::prelude::*;
use riskroute::replay::{raw_advisories, replay_raw_advisories_budgeted, replay_storm};
use riskroute::scenario::{run_sweep, run_sweep_budgeted, SweepMode, SweepPrior};
use riskroute_hazard::HistoricalRisk;
use riskroute_topology::Network;

/// Worker counts the delta knob is crossed with.
const MATRIX: [Parallelism; 3] = [
    Parallelism::Sequential,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
];

fn substrate() -> (Corpus, PopulationModel, HistoricalRisk) {
    (
        Corpus::standard(42),
        PopulationModel::synthesize(42, 4_000),
        HistoricalRisk::standard(42, Some(800)),
    )
}

fn planner_at(
    net: &Network,
    population: &PopulationModel,
    hazards: &HistoricalRisk,
    parallelism: Parallelism,
    delta: bool,
) -> Planner {
    Planner::for_network(net, population, hazards, RiskWeights::PAPER)
        .with_parallelism(parallelism)
        .with_delta_invalidation(delta)
}

#[test]
fn replay_tick_series_is_identical_with_and_without_delta() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let reference = replay_storm(
        &planner_at(net, &population, &hazards, MATRIX[0], false),
        net,
        Storm::Katrina,
        4,
    )
    .unwrap();
    assert!(reference.ticks.len() >= 3, "fixture needs a real tick series");
    for par in MATRIX {
        let replay = replay_storm(
            &planner_at(net, &population, &hazards, par, true),
            net,
            Storm::Katrina,
            4,
        )
        .unwrap();
        assert_eq!(reference, replay, "delta replay diverged at {par}");
    }
}

#[test]
fn ensemble_sweep_with_forecast_overrides_is_identical_with_and_without_delta() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    // The ensemble sweep's forks are pure forecast overrides — exactly the
    // shape the delta machinery accelerates.
    let mode = SweepMode::Ensemble { samples: 6, seed: 7 };
    let reference = run_sweep(
        &planner_at(net, &population, &hazards, MATRIX[0], false),
        net,
        mode,
    )
    .unwrap();
    assert!(!reference.records.is_empty(), "fixture must evaluate members");
    for par in MATRIX {
        let swept = run_sweep(&planner_at(net, &population, &hazards, par, true), net, mode)
            .unwrap();
        assert_eq!(reference, swept, "delta ensemble sweep diverged at {par}");
    }
}

#[test]
fn n1_sweep_is_identical_with_and_without_delta() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    // Structural forks never carry a delta log across the masked topology;
    // the knob must still be a pure no-op on results.
    let reference = run_sweep(
        &planner_at(net, &population, &hazards, MATRIX[0], false),
        net,
        SweepMode::N1,
    )
    .unwrap();
    for par in MATRIX {
        let swept = run_sweep(
            &planner_at(net, &population, &hazards, par, true),
            net,
            SweepMode::N1,
        )
        .unwrap();
        assert_eq!(reference, swept, "delta N-1 sweep diverged at {par}");
    }
}

#[test]
fn budgeted_replay_cut_and_resume_is_identical_with_and_without_delta() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let raws = raw_advisories(Storm::Katrina, 4).unwrap();
    let locations: Vec<_> = net.pops().iter().map(|p| p.location).collect();
    let all: Vec<usize> = (0..net.pop_count()).collect();
    assert!(raws.len() >= 3, "fixture needs room for a mid-stream cut");
    let mut partials = Vec::new();
    let mut resumed_runs = Vec::new();
    for delta in [false, true] {
        for par in [MATRIX[0], MATRIX[2]] {
            let planner = planner_at(net, &population, &hazards, par, delta);
            let budget = WorkBudget::unlimited().with_max_work(2);
            let run = replay_raw_advisories_budgeted(
                &planner,
                net.name(),
                &locations,
                "KATRINA",
                &raws,
                &all,
                &all,
                Vec::new(),
                &budget,
                |_, _| {},
            )
            .unwrap();
            let Budgeted::Partial {
                completed,
                resume_state,
                stopped,
            } = run
            else {
                panic!("a 2-tick budget must stop the replay (delta={delta}, {par})");
            };
            assert_eq!(stopped, StopReason::WorkExhausted);
            partials.push((completed.clone(), resume_state));
            let resume = replay_raw_advisories_budgeted(
                &planner,
                net.name(),
                &locations,
                "KATRINA",
                &raws,
                &all,
                &all,
                completed.ticks,
                &WorkBudget::unlimited(),
                |_, _| {},
            )
            .unwrap();
            let (full, stopped) = resume.into_parts();
            assert!(stopped.is_none(), "unlimited resume never stops");
            resumed_runs.push(full);
        }
    }
    for i in 1..partials.len() {
        assert_eq!(partials[0], partials[i], "partial replay prefix diverged");
        assert_eq!(resumed_runs[0], resumed_runs[i], "resumed replay diverged");
    }
}

#[test]
fn budgeted_ensemble_cut_and_resume_is_identical_with_and_without_delta() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let mode = SweepMode::Ensemble { samples: 5, seed: 11 };
    let mut partials = Vec::new();
    let mut resumed_runs = Vec::new();
    for delta in [false, true] {
        for par in [MATRIX[0], MATRIX[2]] {
            let planner = planner_at(net, &population, &hazards, par, delta);
            let budget = WorkBudget::unlimited().with_max_work(2);
            let run = run_sweep_budgeted(&planner, net, mode, None, &budget, |_, _| {}).unwrap();
            let Budgeted::Partial {
                completed,
                resume_state: _,
                stopped,
            } = run
            else {
                panic!("a 2-unit budget must stop a 5-member sweep (delta={delta}, {par})");
            };
            assert_eq!(stopped, StopReason::WorkExhausted);
            partials.push(completed.clone());
            let prior = SweepPrior {
                baseline: completed.baseline,
                records: completed.records,
            };
            let resume = run_sweep_budgeted(
                &planner,
                net,
                mode,
                Some(prior),
                &WorkBudget::unlimited(),
                |_, _| {},
            )
            .unwrap();
            let (full, stopped) = resume.into_parts();
            assert!(stopped.is_none(), "unlimited resume never stops");
            resumed_runs.push(full);
        }
    }
    for i in 1..partials.len() {
        assert_eq!(partials[0], partials[i], "partial sweep prefix diverged");
        assert_eq!(resumed_runs[0], resumed_runs[i], "resumed sweep diverged");
    }
}
