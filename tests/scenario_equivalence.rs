//! Scenario-sweep equivalence: a sweep is a deterministic function of
//! (planner, network, mode) — byte-identical at any worker count and
//! across any budget-cut/resume boundary — and its criticality ranking
//! must agree with graph theory on a hand-checked fixture.

use riskroute::prelude::*;
use riskroute::scenario::{run_sweep_budgeted, scenario_specs, SweepPrior};
use riskroute::{FailElement, NodeRisk, ScenarioSpec, WorkBudget};
use riskroute_geo::GeoPoint;
use riskroute_hazard::HistoricalRisk;
use riskroute_population::{PopShares, PopulationModel};
use riskroute_topology::{Network, NetworkKind, Pop};

/// Sequential first: the later entries are diffed against index 0.
const MATRIX: [Parallelism; 3] = [
    Parallelism::Sequential,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
];

fn corpus_planner(parallelism: Parallelism) -> (Network, Planner) {
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 4_000);
    let hazards = HistoricalRisk::standard(42, Some(800));
    let net = corpus.network("Telepak").unwrap().clone();
    let planner =
        Planner::for_network(&net, &population, &hazards, RiskWeights::historical_only(1e5))
            .with_parallelism(parallelism);
    (net, planner)
}

#[test]
fn n1_sweeps_are_identical_across_thread_counts() {
    let (net, sequential) = corpus_planner(MATRIX[0]);
    let baseline = run_sweep(&sequential, &net, SweepMode::N1).unwrap();
    assert_eq!(
        baseline.records.len(),
        net.pop_count() + net.link_count(),
        "N-1 must cover every node and every link"
    );
    for par in &MATRIX[1..] {
        let (net, planner) = corpus_planner(*par);
        let outcome = run_sweep(&planner, &net, SweepMode::N1).unwrap();
        assert_eq!(baseline, outcome, "N-1 sweep diverged at {par}");
    }
}

#[test]
fn sampled_sweeps_are_identical_across_thread_counts() {
    for mode in [
        SweepMode::N2 {
            samples: 12,
            seed: 7,
        },
        SweepMode::Ensemble {
            samples: 6,
            seed: 7,
        },
    ] {
        let (net, sequential) = corpus_planner(MATRIX[0]);
        let baseline = run_sweep(&sequential, &net, mode).unwrap();
        for par in &MATRIX[1..] {
            let (net, planner) = corpus_planner(*par);
            let outcome = run_sweep(&planner, &net, mode).unwrap();
            assert_eq!(baseline, outcome, "{mode:?} sweep diverged at {par}");
        }
    }
}

#[test]
fn budget_cut_and_resume_matches_the_uninterrupted_sweep() {
    let (net, planner) = corpus_planner(Parallelism::Sequential);
    let uninterrupted = run_sweep(&planner, &net, SweepMode::N1).unwrap();
    for par in MATRIX {
        let (net, planner) = corpus_planner(par);
        let cut = run_sweep_budgeted(
            &planner,
            &net,
            SweepMode::N1,
            None,
            &WorkBudget::unlimited().with_max_work(5),
            |_, _| {},
        )
        .unwrap();
        let Budgeted::Partial {
            completed,
            resume_state,
            stopped,
        } = cut
        else {
            panic!("a 5-scenario budget must cut the sweep at {par}");
        };
        // The cut lands on the same canonical boundary at every worker
        // count: exactly the budgeted number of scenarios, as a prefix.
        assert_eq!(completed.records.len(), 5, "cut moved at {par}");
        assert_eq!(resume_state.next_index, 5, "resume index moved at {par}");
        assert_eq!(stopped, StopReason::WorkExhausted);
        assert_eq!(
            completed.records[..],
            uninterrupted.records[..5],
            "partial prefix diverged at {par}"
        );
        let prior = SweepPrior {
            baseline: completed.baseline,
            records: completed.records,
        };
        let resumed = run_sweep_budgeted(
            &planner,
            &net,
            SweepMode::N1,
            Some(prior),
            &WorkBudget::unlimited(),
            |_, _| {},
        )
        .unwrap();
        let (resumed, still_stopped) = resumed.into_parts();
        assert!(still_stopped.is_none());
        assert_eq!(resumed, uninterrupted, "resumed sweep diverged at {par}");
    }
}

/// Two triangles sharing only vertex 2 — the textbook cut vertex. Failing
/// it strands every cross-triangle pair (plus its own four incident
/// pairs); failing any other node strands only that node's four pairs,
/// and no single link disconnects anything (each sits on a triangle).
fn cut_vertex_fixture() -> (Network, Planner) {
    let pop = |name: &str, lat: f64, lon: f64| Pop {
        name: name.into(),
        location: GeoPoint::new(lat, lon).unwrap(),
    };
    let net = Network::new(
        "bowtie",
        NetworkKind::Regional,
        vec![
            pop("A", 35.0, -100.0),
            pop("B", 36.0, -99.0),
            pop("Cut", 35.5, -98.0),
            pop("D", 35.0, -96.0),
            pop("E", 36.0, -95.0),
        ],
        vec![(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
    )
    .unwrap();
    let risk = NodeRisk::new(vec![1e-3; 5], vec![0.0; 5]);
    let shares = PopShares::from_shares(vec![0.2; 5]);
    let planner = Planner::new(&net, risk, shares, RiskWeights::historical_only(1e5));
    (net, planner)
}

#[test]
fn known_cut_vertex_ranks_first_in_the_n1_report() {
    let (net, planner) = cut_vertex_fixture();
    let outcome = run_sweep(&planner, &net, SweepMode::N1).unwrap();
    // 5 nodes + 6 links.
    assert_eq!(outcome.records.len(), 11);
    let ranked = outcome.ranked();
    let (_, top) = ranked[0];
    assert_eq!(
        top.spec,
        ScenarioSpec::One(FailElement::Node(2)),
        "the cut vertex must rank first, got {:?}",
        top.spec
    );
    // Hand-count: 4 incident pairs + 2x2 cross-triangle pairs.
    assert_eq!(outcome.delta_stranded(top), 8);
    // Every other node failure strands exactly its 4 incident pairs, and
    // no link failure strands anything (every link sits on a triangle).
    for (_, rec) in &ranked[1..] {
        match rec.spec {
            ScenarioSpec::One(FailElement::Node(_)) => {
                assert_eq!(outcome.delta_stranded(rec), 4, "{:?}", rec.spec);
            }
            ScenarioSpec::One(FailElement::Link(..)) => {
                assert_eq!(outcome.delta_stranded(rec), 0, "{:?}", rec.spec);
            }
            ref other => panic!("unexpected N-1 spec {other:?}"),
        }
    }
}

#[test]
fn scenario_specs_order_is_the_canonical_contract() {
    let (net, _) = cut_vertex_fixture();
    let specs = scenario_specs(&net, SweepMode::N1);
    let nodes = net.pop_count();
    for (i, spec) in specs.iter().enumerate().take(nodes) {
        assert_eq!(*spec, ScenarioSpec::One(FailElement::Node(i)));
    }
    for (l, spec) in net.links().iter().zip(&specs[nodes..]) {
        assert_eq!(
            *spec,
            ScenarioSpec::One(FailElement::Link(l.a.min(l.b), l.a.max(l.b)))
        );
    }
}
