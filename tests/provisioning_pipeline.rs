//! Provisioning pipeline across crates: candidate discovery, incremental
//! scoring vs exact rebuilds, and greedy augmentation on corpus networks.

use riskroute::prelude::*;
use riskroute::provisioning::{
    best_additional_link, candidate_links, greedy_links, score_candidates, with_extra_link,
};
use riskroute_population::PopShares;

fn planner_for(net: &riskroute_topology::Network) -> Planner {
    let population = PopulationModel::synthesize(42, 3_000);
    let hazards = riskroute_hazard::HistoricalRisk::standard(42, Some(500));
    Planner::for_network(
        net,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    )
}

#[test]
fn incremental_scoring_matches_exact_rebuild_on_corpus_network() {
    let corpus = Corpus::standard(42);
    let net = corpus.network("Deutsche Telekom").unwrap();
    let planner = planner_for(net);
    let cands = candidate_links(net, &planner);
    if cands.is_empty() {
        return; // nothing to verify on this topology draw
    }
    let scored = score_candidates(net, &planner, &cands);
    // Verify the top three against exact rebuilds.
    for c in scored.iter().take(3) {
        let augmented = with_extra_link(net, c.a, c.b);
        let re = Planner::new(
            &augmented,
            planner.risk().clone(),
            PopShares::from_shares(planner.shares().shares().to_vec()),
            planner.weights(),
        );
        let exact = re.aggregate_bit_risk();
        assert!(
            (c.total_bit_risk - exact).abs() / exact < 1e-9,
            "sweep {} vs exact {}",
            c.total_bit_risk,
            exact
        );
    }
}

#[test]
fn best_link_never_increases_total_bit_risk() {
    let corpus = Corpus::standard(42);
    for name in ["Sprint", "Teliasonera"] {
        let net = corpus.network(name).unwrap();
        let planner = planner_for(net);
        let before = planner.aggregate_bit_risk();
        if let Some(best) = best_additional_link(net, &planner) {
            assert!(
                best.total_bit_risk <= before + 1e-6,
                "{name}: adding a link cannot hurt (monotone objective)"
            );
        }
    }
}

#[test]
fn greedy_augmentation_is_monotone_on_corpus_network() {
    let corpus = Corpus::standard(42);
    let net = corpus.network("NTT").unwrap();
    let planner = planner_for(net);
    let risk = planner.risk().clone();
    let shares = PopShares::from_shares(planner.shares().shares().to_vec());
    let weights = planner.weights();
    let result = greedy_links(net, &planner, 4, move |augmented| {
        Planner::new(augmented, risk.clone(), shares.clone(), weights)
    });
    let series = result.fraction_series();
    for w in series.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-12,
            "greedy series must not increase: {series:?}"
        );
    }
    for v in &series {
        assert!(*v <= 1.0 + 1e-12);
    }
}

#[test]
fn candidates_are_genuine_shortcuts() {
    let corpus = Corpus::standard(42);
    let net = corpus.network("Tinet").unwrap();
    let planner = planner_for(net);
    let g = net.distance_graph();
    for (a, b, direct) in candidate_links(net, &planner) {
        assert!(!net.has_link(a, b), "candidates must be non-edges");
        if let Some(current) = riskroute_graph::dijkstra::shortest_path_cost(&g, a, b) {
            assert!(
                direct < 0.5 * current,
                "({a},{b}): direct {direct} must cut the {current}-mile path by >50%"
            );
        }
    }
}
