//! Serve-vs-batch equivalence: a query answered by the warm daemon must be
//! byte-identical to the same command run one-shot — at any worker count,
//! across repeated requests against the same warm engine, and for budgeted
//! partials. The daemon reuses the CLI's pure command functions over a
//! pooled planner, so these are `assert_eq!` checks on the full output
//! strings, not shape checks.

use riskroute::Parallelism;
use riskroute_cli::commands::ServeHandler;
use riskroute_cli::{parse_args, run, CliContext, CliError};
use riskroute_serve::{ServeConfig, Server, SpawnedServer};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// Run the one-shot CLI in-process (no argv[0]).
fn one_shot(argv: &str) -> Result<String, CliError> {
    let args: Vec<String> = argv.split_whitespace().map(String::from).collect();
    let cli = parse_args(&args).expect("parse");
    run(&cli)
}

/// Spawn an in-process daemon whose handler runs at `workers` threads,
/// default weights, no default deadline.
fn daemon(workers: Parallelism) -> (SpawnedServer, SocketAddr) {
    let mut ctx = CliContext::build(&[]).expect("context");
    ctx.parallelism = workers;
    let cli = parse_args(&["corpus".to_string()]).expect("parse");
    let handler = Arc::new(ServeHandler::new(ctx, cli.weights(), None));
    let server =
        Server::bind_tcp("127.0.0.1:0", handler, ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    (server.spawn(), addr)
}

/// One request line in, one parsed response document out.
fn query(addr: SocketAddr, line: &str) -> riskroute_json::Json {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    reader.read_line(&mut out).expect("read");
    riskroute_json::parse(out.trim_end()).expect("response parses")
}

fn field<'a>(doc: &'a riskroute_json::Json, name: &str) -> &'a str {
    doc.field(name)
        .and_then(|v| v.as_str())
        .unwrap_or_else(|e| panic!("field {name}: {e} in {doc:?}"))
}

/// The serve request for each one-shot command under test.
const CASES: &[(&str, &str)] = &[
    (
        "route Sprint 0 5",
        r#"{"op":"route","network":"Sprint","src":"0","dst":"5"}"#,
    ),
    ("ratio Telepak", r#"{"op":"ratio","network":"Telepak"}"#),
    (
        "provision Telepak -k 2",
        r#"{"op":"provision","network":"Telepak","k":2}"#,
    ),
    (
        "sweep Telepak --mode n1",
        r#"{"op":"sweep","network":"Telepak","mode":"n1"}"#,
    ),
    ("corpus", r#"{"op":"corpus"}"#),
];

#[test]
fn warm_daemon_answers_byte_identical_to_one_shot_at_any_worker_count() {
    let expected: Vec<String> = CASES
        .iter()
        .map(|(cmd, _)| one_shot(cmd).unwrap_or_else(|e| panic!("{cmd}: {e}")))
        .collect();
    for workers in [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(8),
    ] {
        let (server, addr) = daemon(workers);
        for ((cmd, request), want) in CASES.iter().zip(&expected) {
            // Twice per case: the second answer comes from the warm pool
            // (and, for route-bearing ops, the warm route-tree cache).
            for round in 0..2 {
                let doc = query(addr, request);
                assert_eq!(field(&doc, "status"), "ok", "{cmd} @ {workers:?}");
                assert_eq!(
                    field(&doc, "output"),
                    want,
                    "{cmd} @ {workers:?} round {round}"
                );
            }
        }
        let report = server.drain_and_join();
        assert!(!report.forced, "{workers:?}");
    }
}

#[test]
fn budgeted_partials_match_the_one_shot_cli() {
    // --max-work cuts at a deterministic stage boundary, so the partial
    // report is byte-identical; --deadline-ms 0 exhausts at the first
    // boundary check, which is equally deterministic.
    let (server, addr) = daemon(Parallelism::Sequential);
    for (cmd, request) in [
        (
            "sweep Telepak --mode n1 --max-work 3",
            r#"{"op":"sweep","network":"Telepak","mode":"n1","max_work":3}"#,
        ),
        (
            "provision Telepak -k 2 --max-work 0",
            r#"{"op":"provision","network":"Telepak","k":2,"max_work":0}"#,
        ),
        (
            "replay Telepak katrina --stride 20 --deadline-ms 0",
            r#"{"op":"replay","network":"Telepak","storm":"katrina","stride":20,"deadline_ms":0}"#,
        ),
    ] {
        let args: Vec<String> = cmd.split_whitespace().map(String::from).collect();
        let err = run(&parse_args(&args).expect("parse")).expect_err(cmd);
        let CliError::Budget { report, stopped } = &err else {
            panic!("{cmd}: expected budget exhaustion, got {err:?}");
        };
        let doc = query(addr, request);
        assert_eq!(field(&doc, "status"), "partial", "{cmd}");
        assert_eq!(field(&doc, "stopped"), stopped.to_string(), "{cmd}");
        assert_eq!(field(&doc, "output"), report, "{cmd}");
    }
    // A nonzero deadline is wall-clock dependent, so only the response
    // shape is asserted: it must come back typed (partial or ok) in
    // bounded time, never hang.
    let doc = query(
        addr,
        r#"{"op":"sweep","network":"Telepak","mode":"n1","deadline_ms":1}"#,
    );
    let status = field(&doc, "status");
    assert!(
        status == "partial" || status == "ok",
        "tight deadline must answer typed, got {doc:?}"
    );
    if status == "partial" {
        assert_eq!(field(&doc, "stopped"), "wall-clock deadline exceeded");
        assert!(field(&doc, "output").contains("budget exhausted"));
    }
    let report = server.drain_and_join();
    assert!(!report.forced);
}

#[test]
fn per_request_lambda_overrides_match_weight_flags() {
    let want = one_shot("--lambda-h 1e6 --lambda-f 1e2 route Sprint 0 5").expect("one-shot");
    let (server, addr) = daemon(Parallelism::Sequential);
    let doc = query(
        addr,
        r#"{"op":"route","network":"Sprint","src":"0","dst":"5","lambda_h":1e6,"lambda_f":1e2}"#,
    );
    assert_eq!(field(&doc, "status"), "ok");
    assert_eq!(field(&doc, "output"), want);
    // Typed failures carry the CLI exit-code taxonomy.
    let doc = query(addr, r#"{"op":"route","network":"Nope","src":"0","dst":"5"}"#);
    assert_eq!(field(&doc, "status"), "error");
    assert_eq!(field(&doc, "kind"), "unknown-name");
    assert_eq!(
        doc.field("exit_code")
            .and_then(|v| v.as_usize())
            .unwrap_or_else(|e| panic!("{e}")),
        3
    );
    let report = server.drain_and_join();
    assert!(!report.forced);
}
