//! `/metrics` exposition correctness under fire: after the seeded
//! connection-fault suite runs against a live daemon, the scrape must lint
//! clean (metric-name charset, label syntax, cumulative `le` buckets with
//! `+Inf` and a matching `_count`) and carry a nonzero counter for every
//! connection-fault kind that just fired.
//!
//! One `#[test]` on purpose: the obs collector is process-global, and the
//! counter assertions here need exclusive ownership of it.

use riskroute::chaos::{ConnFault, ConnFaultPlan, CHAOS_FRAME_CAP, CHAOS_WIRE_DEPTH};
use riskroute_cli::commands::ServeHandler;
use riskroute_cli::{parse_args, CliContext};
use riskroute_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const READ_TIMEOUT_MS: u64 = 150;

fn counter(name: &str) -> u64 {
    riskroute_obs::counter_value(name)
}

/// Poll until `name` exceeds `before` (fault counters fire from detached
/// connection threads).
fn wait_counter_above(name: &str, before: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if counter(name) > before {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Wait until every admitted request has been answered so a later plan's
/// well-formed request is never shed by admission (masking its counter).
fn wait_settled() {
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        let total = counter("serve_requests_total");
        let done = counter("serve_requests_ok")
            + counter("serve_requests_partial")
            + counter("serve_requests_error")
            + counter("serve_requests_panicked");
        if done >= total {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("in-flight requests never settled");
}

/// Replay one adversarial client script against the daemon.
fn drive(addr: SocketAddr, plan: &ConnFaultPlan) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&plan.payload).expect("write payload");
    let _ = stream.flush();
    if plan.fault == ConnFault::StalledWriter {
        std::thread::sleep(Duration::from_millis(READ_TIMEOUT_MS * 3));
    } else if plan.reads_response {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let mut line = String::new();
        let _ = BufReader::new(&stream).read_line(&mut line);
    }
}

fn roundtrip(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    reader.read_line(&mut out).expect("read");
    out.trim_end().to_string()
}

/// Scrape `path` over HTTP and return the body after the header block.
fn scrape(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("write scrape");
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .expect("read scrape");
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .expect("header/body split")
}

#[test]
fn metrics_exposition_stays_well_formed_after_the_fault_suite() {
    riskroute_obs::reset();
    riskroute_obs::enable();

    let ctx = CliContext::build(&[]).expect("context");
    let cli = parse_args(&["corpus".to_string()]).expect("parse");
    let handler = Arc::new(ServeHandler::new(ctx, cli.weights(), None));
    let config = ServeConfig {
        frame_cap_bytes: CHAOS_FRAME_CAP,
        max_depth: CHAOS_WIRE_DEPTH,
        read_timeout_ms: READ_TIMEOUT_MS,
        write_timeout_ms: 500,
        drain_ms: 1_000,
        ..ServeConfig::default()
    };
    let server = Server::bind_tcp("127.0.0.1:0", handler, config).expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let server = server.spawn();

    // Fire the whole fault suite so every fault-kind counter is nonzero.
    let plans = ConnFaultPlan::suite(5, 17);
    let kinds: Vec<ConnFault> = plans.iter().map(|p| p.fault).collect();
    for fault in riskroute::chaos::ALL_CONN_FAULTS {
        assert!(kinds.contains(fault), "suite must cover {}", fault.name());
    }
    for plan in &plans {
        let name = plan.fault.expected_counter();
        let before = counter(name);
        drive(addr, plan);
        assert!(
            wait_counter_above(name, before),
            "fault did not drive {name}: {}",
            plan.summary_line()
        );
        wait_settled();
    }
    // One clean request so the per-op latency histograms have observations.
    assert!(roundtrip(addr, r#"{"op":"ping"}"#).contains("pong"));

    let body = scrape(addr, "/metrics");

    // The whole exposition parses under the in-tree lint: names, labels,
    // values, and histogram bucket invariants (cumulative, +Inf, _count).
    let samples = riskroute_obs::export::lint_prometheus(&body)
        .unwrap_or_else(|e| panic!("exposition lint failed: {e}\n{body}"));
    assert!(samples > 20, "suspiciously small scrape: {samples} samples");

    // Every sample series carries the sanitized riskroute_ prefix.
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        assert!(line.starts_with("riskroute_"), "unprefixed series: {line}");
    }

    // The request-latency histogram exports cumulative le buckets ending
    // in +Inf, and its _count matches the +Inf bucket.
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("riskroute_serve_request_us_bucket{le=\"") {
            let (le, value) = rest.split_once("\"} ").expect("bucket shape");
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>().expect("le parses")
            };
            buckets.push((le, value.trim().parse::<u64>().expect("count parses")));
        }
    }
    assert!(buckets.len() > 2, "missing request histogram:\n{body}");
    assert!(
        buckets.last().is_some_and(|(le, _)| le.is_infinite()),
        "+Inf bucket must close the series"
    );
    assert!(
        buckets.windows(2).all(|w| w[0].1 <= w[1].1),
        "buckets must be cumulative: {buckets:?}"
    );
    let inf_count = buckets.last().map(|(_, c)| *c).expect("inf bucket");
    let count_line = body
        .lines()
        .find_map(|l| l.strip_prefix("riskroute_serve_request_us_count "))
        .expect("histogram _count line");
    assert_eq!(count_line.trim().parse::<u64>().expect("count"), inf_count);

    // Every connection-fault kind fired and is visible in the scrape with
    // a nonzero counter.
    for fault in riskroute::chaos::ALL_CONN_FAULTS {
        let series = format!("riskroute_{} ", fault.expected_counter());
        let value = body
            .lines()
            .find_map(|l| l.strip_prefix(series.as_str()))
            .and_then(|v| v.trim().parse::<f64>().ok())
            .unwrap_or(0.0);
        assert!(
            value > 0.0,
            "no nonzero counter for {} ({series}):\n{body}",
            fault.name()
        );
    }

    let report = server.drain_and_join();
    assert!(!report.forced, "{report:?}");
    riskroute_obs::disable();
}
