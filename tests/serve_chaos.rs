//! Connection-level chaos against a live `riskroute serve` daemon: seeded
//! adversarial clients (garbage bytes, truncated frames, mid-request
//! disconnects, stalled writers, over-deep and oversized frames) plus an
//! induced worker panic. The daemon must stay up through all of it — every
//! fault degrades one connection or one request, drives its obs counter,
//! and the process drains cleanly afterwards.
//!
//! One `#[test]` on purpose: the obs collector is process-global, and the
//! counter assertions here need exclusive ownership of it.

use riskroute::chaos::{ConnFault, ConnFaultPlan, CHAOS_FRAME_CAP, CHAOS_WIRE_DEPTH};
use riskroute_cli::commands::ServeHandler;
use riskroute_cli::{parse_args, CliContext};
use riskroute_serve::{QueryCx, QueryHandler, Reply, Request, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const READ_TIMEOUT_MS: u64 = 150;

/// The real CLI handler, with one extra op for the panic-isolation probe.
struct PanicOnBoom(ServeHandler);

impl QueryHandler for PanicOnBoom {
    fn handle(&self, request: &Request, cx: &QueryCx) -> Reply {
        if request.op == "boom" {
            panic!("induced worker panic (chaos suite)");
        }
        self.0.handle(request, cx)
    }
}

fn counter(name: &str) -> u64 {
    riskroute_obs::counter_value(name)
}

/// Poll until `name` exceeds `before` (the counters fire from detached
/// connection threads).
fn wait_counter_above(name: &str, before: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if counter(name) > before {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Wait until every admitted request has been answered (ok, partial,
/// error, or panic) so shutdown never races in-flight work.
fn wait_settled() {
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        let total = counter("serve_requests_total");
        let done = counter("serve_requests_ok")
            + counter("serve_requests_partial")
            + counter("serve_requests_error")
            + counter("serve_requests_panicked");
        if done >= total {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("in-flight requests never settled");
}

/// Replay one adversarial client script against the daemon.
fn drive(addr: SocketAddr, plan: &ConnFaultPlan) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&plan.payload).expect("write payload");
    let _ = stream.flush();
    if plan.fault == ConnFault::StalledWriter {
        // Hold the half-written frame open past the server's stall window.
        std::thread::sleep(Duration::from_millis(READ_TIMEOUT_MS * 3));
    } else if plan.reads_response {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let mut line = String::new();
        let _ = BufReader::new(&stream).read_line(&mut line);
    }
    // Else: vanish without reading (truncation / mid-request disconnect).
}

fn roundtrip(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    reader.read_line(&mut out).expect("read");
    out.trim_end().to_string()
}

#[test]
fn daemon_survives_the_connection_fault_suite() {
    riskroute_obs::reset();
    riskroute_obs::enable();

    let ctx = CliContext::build(&[]).expect("context");
    let cli = parse_args(&["corpus".to_string()]).expect("parse");
    let handler = Arc::new(PanicOnBoom(ServeHandler::new(ctx, cli.weights(), None)));
    let config = ServeConfig {
        frame_cap_bytes: CHAOS_FRAME_CAP,
        max_depth: CHAOS_WIRE_DEPTH,
        read_timeout_ms: READ_TIMEOUT_MS,
        write_timeout_ms: 500,
        drain_ms: 1_000,
        ..ServeConfig::default()
    };
    let server = Server::bind_tcp("127.0.0.1:0", handler, config).expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let server = server.spawn();

    let plans = ConnFaultPlan::suite(7, 6);
    let kinds: Vec<ConnFault> = plans.iter().map(|p| p.fault).collect();
    for fault in riskroute::chaos::ALL_CONN_FAULTS {
        assert!(kinds.contains(fault), "suite must cover {}", fault.name());
    }
    for plan in &plans {
        let name = plan.fault.expected_counter();
        let before = counter(name);
        drive(addr, plan);
        assert!(
            wait_counter_above(name, before),
            "fault did not drive {name}: {}",
            plan.summary_line()
        );
        // Serialize the heavy mid-request work so admission never sheds a
        // later plan's well-formed request (that would mask its counter).
        wait_settled();
        // The daemon is still answering after every single fault.
        assert!(
            roundtrip(addr, r#"{"op":"ping"}"#).contains("pong"),
            "daemon unresponsive after {}",
            plan.summary_line()
        );
    }

    // Induced worker panic: fails that request alone, typed on the wire.
    let before = counter("serve_requests_panicked");
    let line = roundtrip(addr, r#"{"id":99,"op":"boom"}"#);
    let doc = riskroute_json::parse(&line).expect("panic reply parses");
    assert_eq!(
        doc.field("kind").and_then(|v| v.as_str()).expect("kind"),
        "panic"
    );
    assert!(wait_counter_above("serve_requests_panicked", before));
    assert!(roundtrip(addr, r#"{"op":"ping"}"#).contains("pong"));

    // The scrape endpoint reports the fault counters that just fired.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("write scrape");
    let mut body = String::new();
    BufReader::new(stream)
        .read_to_string(&mut body)
        .expect("read scrape");
    assert!(body.starts_with("HTTP/1.0 200 OK"), "{body}");
    for name in [
        "riskroute_serve_frames_malformed",
        "riskroute_serve_frames_truncated",
        "riskroute_serve_frames_oversized",
        "riskroute_serve_clients_stalled",
        "riskroute_serve_requests_panicked",
    ] {
        assert!(body.contains(name), "scrape missing {name}");
    }

    // Protocol shutdown: acknowledged, then a clean (never forced) drain.
    wait_settled();
    assert!(roundtrip(addr, r#"{"op":"shutdown"}"#).contains("draining"));
    let report = server.join();
    assert!(!report.forced, "{report:?}");
    assert!(report.connections_total >= plans.len() as u64);
    riskroute_obs::disable();
}
