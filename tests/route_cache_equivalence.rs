//! Cache-on/cache-off equivalence: the route-tree cache is exact, so
//! disabling it (`--no-route-cache`) must change nothing but wall time —
//! at any worker count, including budget-cut-and-resume runs. Like the
//! `--threads` equivalence suite these are `assert_eq!` checks on full
//! result structs (f64s included), not tolerance comparisons.

use riskroute::prelude::*;
use riskroute::provisioning::{greedy_links, greedy_links_budgeted, greedy_links_resume};
use riskroute::replay::replay_storm;
use riskroute_hazard::HistoricalRisk;
use riskroute_population::PopShares;
use riskroute_topology::Network;

/// Worker counts the cache knob is crossed with.
const MATRIX: [Parallelism; 3] = [
    Parallelism::Sequential,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
];

fn substrate() -> (Corpus, PopulationModel, HistoricalRisk) {
    (
        Corpus::standard(42),
        PopulationModel::synthesize(42, 4_000),
        HistoricalRisk::standard(42, Some(800)),
    )
}

fn planner_at(
    net: &Network,
    population: &PopulationModel,
    hazards: &HistoricalRisk,
    parallelism: Parallelism,
    cache: bool,
) -> Planner {
    Planner::for_network(net, population, hazards, RiskWeights::historical_only(1e5))
        .with_parallelism(parallelism)
        .with_route_cache(cache)
}

#[test]
fn ratio_reports_are_identical_with_and_without_cache() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let reference = planner_at(net, &population, &hazards, MATRIX[0], false).ratio_report();
    for par in MATRIX {
        let cached = planner_at(net, &population, &hazards, par, true);
        assert_eq!(
            reference,
            cached.ratio_report(),
            "cached ratio report diverged at {par}"
        );
        // A warm repeat on the same planner serves everything from cache
        // and must still be byte-identical.
        assert_eq!(
            reference,
            cached.ratio_report(),
            "warm cached ratio report diverged at {par}"
        );
    }
}

#[test]
fn greedy_pick_sequence_is_identical_with_and_without_cache() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let mut runs = Vec::new();
    for cache in [false, true] {
        for par in MATRIX {
            let planner = planner_at(net, &population, &hazards, par, cache);
            let risk = planner.risk().clone();
            let shares = PopShares::from_shares(planner.shares().shares().to_vec());
            let weights = RiskWeights::historical_only(1e5);
            let rebuild =
                move |aug: &Network| Planner::new(aug, risk.clone(), shares.clone(), weights);
            runs.push(greedy_links(net, &planner, 3, rebuild));
        }
    }
    assert!(!runs[0].added.is_empty(), "fixture must actually choose links");
    for run in &runs[1..] {
        assert_eq!(&runs[0], run, "greedy pick sequence diverged");
    }
}

#[test]
fn budgeted_provisioning_resume_is_identical_with_and_without_cache() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let weights = RiskWeights::historical_only(1e5);
    let mut partials = Vec::new();
    let mut resumed_runs = Vec::new();
    for cache in [false, true] {
        for par in [MATRIX[0], MATRIX[2]] {
            let planner = planner_at(net, &population, &hazards, par, cache);
            let risk = planner.risk().clone();
            let shares = PopShares::from_shares(planner.shares().shares().to_vec());
            let make_rebuild = || {
                let risk = risk.clone();
                let shares = shares.clone();
                move |aug: &Network| Planner::new(aug, risk.clone(), shares.clone(), weights)
            };
            let budget = WorkBudget::unlimited().with_max_work(1);
            let run = greedy_links_budgeted(net, &planner, 3, make_rebuild(), &budget, |_| {});
            let Budgeted::Partial {
                completed,
                resume_state,
                stopped,
            } = run
            else {
                panic!("a 1-unit budget must stop a 3-link search (cache={cache}, {par})");
            };
            assert_eq!(stopped, StopReason::WorkExhausted);
            partials.push((completed.clone(), resume_state));
            let resume = greedy_links_resume(
                net,
                &planner,
                3,
                make_rebuild(),
                completed,
                &WorkBudget::unlimited(),
                |_| {},
            );
            let (full, stopped) = resume.into_parts();
            assert!(stopped.is_none(), "unlimited resume never stops");
            resumed_runs.push(full);
        }
    }
    for i in 1..partials.len() {
        assert_eq!(partials[0], partials[i], "partial prefix diverged");
        assert_eq!(resumed_runs[0], resumed_runs[i], "resumed result diverged");
    }
}

#[test]
fn replay_tick_series_is_identical_with_and_without_cache() {
    let (corpus, population, hazards) = substrate();
    let net = corpus.network("Telepak").unwrap();
    let reference = replay_storm(
        &planner_at(net, &population, &hazards, MATRIX[0], false),
        net,
        Storm::Katrina,
        4,
    )
    .unwrap();
    assert!(reference.ticks.len() >= 3, "fixture needs a real tick series");
    for par in MATRIX {
        let replay = replay_storm(
            &planner_at(net, &population, &hazards, par, true),
            net,
            Storm::Katrina,
            4,
        )
        .unwrap();
        assert_eq!(reference, replay, "cached replay diverged at {par}");
    }
}
