//! The disaster-replay pipeline end to end: best tracks → advisory prose →
//! NLP parse → forecast risk → routing reaction.

use riskroute::prelude::*;
use riskroute::replay::{fraction_in_storm_scope, replay_storm};
use riskroute_forecast::advisory::parse_advisory_text;
use riskroute_forecast::storms::ALL_STORMS;
use riskroute_forecast::ForecastRisk;
use riskroute_geo::GeoPoint;

#[test]
fn every_generated_advisory_parses_back_losslessly() {
    for &storm in ALL_STORMS {
        for adv in advisories_for(storm) {
            let parsed = parse_advisory_text(&adv.to_text())
                .unwrap_or_else(|e| panic!("{} #{}: {e}", storm.name(), adv.number));
            // Text rounds coordinates to 0.1° and radii to whole miles.
            assert!((parsed.center.lat() - adv.center.lat()).abs() <= 0.051);
            assert!((parsed.center.lon() - adv.center.lon()).abs() <= 0.051);
            assert!((parsed.hurricane_radius_mi - adv.hurricane_radius_mi).abs() <= 0.5);
            assert!((parsed.tropical_radius_mi - adv.tropical_radius_mi).abs() <= 0.5);
        }
    }
}

#[test]
fn storm_scope_separates_gulf_from_northeast_networks() {
    let corpus = Corpus::standard(42);
    let locs = |name: &str| -> Vec<GeoPoint> {
        corpus
            .network(name)
            .unwrap()
            .pops()
            .iter()
            .map(|p| p.location)
            .collect()
    };
    // Telepak (Mississippi) is in Katrina's scope, CoStreet (New England)
    // is not; Sandy reverses the picture.
    assert!(fraction_in_storm_scope(&locs("Telepak"), Storm::Katrina) > 0.2);
    assert_eq!(
        fraction_in_storm_scope(&locs("CoStreet"), Storm::Katrina),
        0.0
    );
    assert!(fraction_in_storm_scope(&locs("CoStreet"), Storm::Sandy) > 0.0);
    assert_eq!(fraction_in_storm_scope(&locs("Goodnet"), Storm::Sandy), 0.0);
}

#[test]
fn replay_reacts_only_while_the_storm_overlaps_the_network() {
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 4_000);
    let hazards = riskroute_hazard::HistoricalRisk::standard(42, Some(800));
    let telia = corpus.network("Teliasonera").unwrap();
    // Historical risk zeroed via weights: isolate the forecast reaction.
    let planner = Planner::for_network(telia, &population, &hazards, RiskWeights::new(0.0, 1e3));
    let replay = replay_storm(&planner, telia, Storm::Sandy, 6).expect("valid replay args");
    for tick in &replay.ticks {
        if tick.pops_in_scope == 0 {
            assert!(
                tick.report.risk_reduction_ratio.abs() < 1e-9,
                "{}: no overlap must mean no reaction",
                tick.label
            );
        }
        assert!(tick.pops_in_hurricane_winds <= tick.pops_in_scope);
    }
}

#[test]
fn replay_tick_counts_and_ordering() {
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 4_000);
    let hazards = riskroute_hazard::HistoricalRisk::standard(42, Some(800));
    let net = corpus.network("NTT").unwrap();
    let planner = Planner::for_network(net, &population, &hazards, RiskWeights::PAPER);
    for (&storm, expected) in ALL_STORMS.iter().zip([70usize, 61, 60]) {
        let full = replay_storm(&planner, net, storm, 1).expect("valid replay args");
        assert_eq!(full.ticks.len(), expected, "{}", storm.name());
        for (i, t) in full.ticks.iter().enumerate() {
            assert_eq!(t.advisory, i + 1);
        }
    }
}

#[test]
fn forecast_risk_values_match_paper_constants() {
    let adv = &advisories_for(Storm::Katrina)[44]; // around landfall
    let field = ForecastRisk::from_advisory_text(&adv.to_text()).unwrap();
    assert_eq!(
        field.risk(field.center),
        100.0,
        "rho_h = 100 inside the eye"
    );
    // A point between the radii gets rho_t = 50.
    if field.tropical_radius_mi > field.hurricane_radius_mi + 2.0 {
        let mid = riskroute_geo::distance::destination(
            field.center,
            0.0,
            (field.hurricane_radius_mi + field.tropical_radius_mi) / 2.0,
        );
        assert_eq!(field.risk(mid), 50.0);
    }
}
