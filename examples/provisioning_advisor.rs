//! Provisioning advisor: where should a provider add links, and with whom
//! should a regional network peer, to best reduce bit-risk miles? (§6.3 of
//! the paper — Figures 9, 10, and 11 as a runnable tool.)
//!
//! ```text
//! cargo run --release --example provisioning_advisor            # Sprint
//! cargo run --release --example provisioning_advisor Telepak
//! ```

use riskroute::interdomain::InterdomainAnalysis;
use riskroute::peering::score_peerings;
use riskroute::prelude::*;
use riskroute::provisioning::greedy_links;
use riskroute_population::PopShares;
use riskroute_topology::colocation::DEFAULT_COLOCATION_MILES;
use riskroute_topology::Network;

fn main() {
    let target = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Sprint".to_string());
    println!("Synthesizing corpus and risk substrate…");
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 50_000);
    let hazards = HistoricalRisk::standard(42, Some(4_000));
    let Some(net) = corpus.network(&target) else {
        eprintln!(
            "unknown network {target:?}; corpus members: {:?}",
            corpus.all_networks().map(Network::name).collect::<Vec<_>>()
        );
        std::process::exit(2);
    };

    // ── New links (Eq. 4, greedy) ───────────────────────────────────────
    println!(
        "\nBest additional links for {} ({} PoPs, {} links):",
        net.name(),
        net.pop_count(),
        net.link_count()
    );
    let planner = Planner::for_network(
        net,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    );
    let risk = planner.risk().clone();
    let shares = PopShares::from_shares(planner.shares().shares().to_vec());
    let weights = planner.weights();
    let result = greedy_links(net, &planner, 5, move |augmented| {
        Planner::new(augmented, risk.clone(), shares.clone(), weights)
    });
    if result.added.is_empty() {
        println!("  no candidate link passes the >50% bit-mile shortcut filter");
    }
    for (i, link) in result.added.iter().enumerate() {
        println!(
            "  {}. {} <-> {} ({:.0} mi) -> total bit-risk falls to {:.2}% of original",
            i + 1,
            net.pops()[link.a].name,
            net.pops()[link.b].name,
            link.miles,
            100.0 * link.total_bit_risk / result.original_bit_risk
        );
    }

    // ── New peerings (§6.3, Figure 11) ──────────────────────────────────
    println!("\nBest new peering relationships for {}:", net.name());
    let networks: Vec<&Network> = corpus.all_networks().collect();
    let analysis = InterdomainAnalysis::new(
        &networks,
        &corpus.peering,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    );
    let sources = analysis
        .topology()
        .pops_of(net.name())
        .expect("network is in the merged topology");
    let mut dests = Vec::new();
    for r in &corpus.regional {
        dests.extend(
            analysis
                .topology()
                .pops_of(r.name())
                .expect("merged member"),
        );
    }
    let scored = score_peerings(
        &analysis,
        net,
        &networks,
        &corpus.peering,
        DEFAULT_COLOCATION_MILES,
        &sources,
        &dests,
    );
    if scored.is_empty() {
        println!("  no co-located, un-peered candidate networks");
    }
    for (i, s) in scored.iter().take(5).enumerate() {
        println!(
            "  {}. peer with {} ({} co-located hand-off sites) -> lower-bound total bit-risk {:.3e}",
            i + 1,
            s.peer,
            s.handoff_count,
            s.total_bit_risk
        );
    }
    println!("\nCurrent peers: {:?}", corpus.peering.peers_of(net.name()));
}
