//! Quickstart: compute a risk-aware route and compare it to the shortest
//! path on a small Gulf-coast network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use riskroute::prelude::*;
use riskroute_geo::GeoPoint;
use riskroute_topology::{Network, NetworkKind, Pop};

fn pop(name: &str, lat: f64, lon: f64) -> Pop {
    Pop {
        name: name.to_string(),
        location: GeoPoint::new(lat, lon).expect("valid coordinates"),
    }
}

fn main() {
    // 1. Describe the physical infrastructure: PoPs and line-of-sight links.
    //    Houston and Atlanta are joined both through New Orleans (short,
    //    hurricane country) and through Little Rock (longer, safer).
    let network = Network::new(
        "gulf-demo",
        NetworkKind::Regional,
        vec![
            pop("Houston TX", 29.76, -95.37),
            pop("New Orleans LA", 29.95, -90.07),
            pop("Atlanta GA", 33.75, -84.39),
            pop("Little Rock AR", 34.75, -92.29),
            pop("Nashville TN", 36.16, -86.78),
        ],
        vec![(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)],
    )
    .expect("valid topology");

    // 2. Build the risk substrate: synthetic census population (for outage
    //    impact) and the five-corpus historical hazard model (for outage
    //    likelihood). Both are deterministic under the seed.
    let population = PopulationModel::synthesize(7, 10_000);
    let hazards = HistoricalRisk::standard(7, Some(2_000));

    // 3. Plan routes under the paper's λ_h = 1e5 (historical risk only).
    let planner = Planner::for_network(
        &network,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    );

    let names: Vec<&str> = network.pops().iter().map(|p| p.name.as_str()).collect();
    let show = |label: &str, r: &riskroute::RoutedPath| {
        let path: Vec<&str> = r.nodes.iter().map(|&n| names[n]).collect();
        println!(
            "{label}: {} \n    {:7.1} bit-miles + {:7.1} risk-miles = {:7.1} bit-risk miles",
            path.join(" -> "),
            r.bit_miles,
            r.risk_miles,
            r.bit_risk_miles
        );
    };

    println!("Routing Houston TX -> Atlanta GA\n");
    let shortest = planner.shortest_route(0, 2).expect("connected");
    let safe = planner.risk_route(0, 2).expect("connected");
    show("shortest path  ", &shortest);
    show("RiskRoute      ", &safe);

    assert!(safe.bit_risk_miles <= shortest.bit_risk_miles);
    println!(
        "\nRiskRoute saves {:.1} bit-risk miles ({:.1}%) by paying {:.1} extra bit-miles.",
        shortest.bit_risk_miles - safe.bit_risk_miles,
        100.0 * (1.0 - safe.bit_risk_miles / shortest.bit_risk_miles),
        safe.bit_miles - shortest.bit_miles
    );

    // 4. The aggregate trade-off over every PoP pair (Eqs. 5-6).
    let report = planner.ratio_report();
    println!(
        "\nNetwork-wide: risk reduction ratio {:.3}, distance increase ratio {:.3} ({} pairs)",
        report.risk_reduction_ratio, report.distance_increase_ratio, report.pairs
    );
}
