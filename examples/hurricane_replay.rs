//! Replay Hurricane Sandy against the synthesized Tier-1 networks,
//! advisory by advisory, and watch risk-aware routing react — the paper's
//! §7.3 case study (Figure 12) as a runnable program.
//!
//! ```text
//! cargo run --release --example hurricane_replay            # Sandy
//! cargo run --release --example hurricane_replay katrina    # or irene
//! ```

use riskroute::prelude::*;
use riskroute::replay::replay_storm;

fn main() {
    let storm = match std::env::args().nth(1).as_deref() {
        None | Some("sandy") => Storm::Sandy,
        Some("katrina") => Storm::Katrina,
        Some("irene") => Storm::Irene,
        Some(other) => {
            eprintln!("unknown storm {other:?}; expected sandy, katrina, or irene");
            std::process::exit(2);
        }
    };

    println!("Synthesizing corpus and risk substrate…");
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 50_000);
    let hazards = HistoricalRisk::standard(42, Some(4_000));

    println!(
        "Replaying Hurricane {} ({} advisories, every 8th evaluated)\n",
        storm.name(),
        advisories_for(storm).len()
    );
    for net in &corpus.tier1 {
        let planner = Planner::for_network(net, &population, &hazards, RiskWeights::PAPER);
        let replay = replay_storm(&planner, net, storm, 8).expect("valid replay args");
        println!(
            "{:<18} ({:>3} PoPs, max {:>3} under hurricane winds)",
            net.name(),
            net.pop_count(),
            replay.max_pops_in_hurricane_winds()
        );
        for tick in &replay.ticks {
            let bar_len = (tick.report.risk_reduction_ratio * 200.0).round() as usize;
            println!(
                "  {:<22} rr {:>6.3}  in-scope {:>3}  {}",
                tick.label,
                tick.report.risk_reduction_ratio,
                tick.pops_in_scope,
                "#".repeat(bar_len.min(60))
            );
        }
        if let Some(peak) = replay.peak() {
            println!(
                "  peak: rr {:.3} at {}\n",
                peak.report.risk_reduction_ratio, peak.label
            );
        }
    }
}
