//! Proactive vs reactive risk routing: reroute *before* the hurricane
//! arrives, the way NTT/Level3/Verizon did by hand before Sandy (§1 of the
//! paper), using forecast projection with an uncertainty cone.
//!
//! ```text
//! cargo run --release --example proactive_routing
//! ```

use riskroute::prelude::*;
use riskroute::replay::{replay_storm, replay_storm_proactive};
use riskroute_forecast::{advisories_for, earliest_warning};

fn main() {
    println!("Synthesizing corpus and risk substrate…");
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 30_000);
    let hazards = HistoricalRisk::standard(42, Some(3_000));

    // Telepak sits squarely in Katrina's path.
    let net = corpus.network("Telepak").expect("corpus member");
    let planner = Planner::for_network(net, &population, &hazards, RiskWeights::PAPER);

    println!(
        "\nReplaying Hurricane Katrina over {} ({} PoPs) — reactive vs proactive:\n",
        net.name(),
        net.pop_count()
    );
    let reactive = replay_storm(&planner, net, Storm::Katrina, 1).expect("valid replay args");
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        "Advisory", "reactive rr", "+24h rr", "+48h rr"
    );
    let pro24 =
        replay_storm_proactive(&planner, net, Storm::Katrina, 1, 24.0).expect("valid replay args");
    let pro48 =
        replay_storm_proactive(&planner, net, Storm::Katrina, 1, 48.0).expect("valid replay args");
    for tick in reactive.ticks.iter().step_by(4) {
        let find = |r: &riskroute::replay::DisasterReplay| {
            r.ticks
                .iter()
                .find(|t| t.advisory == tick.advisory)
                .map(|t| t.report.risk_reduction_ratio)
        };
        println!(
            "{:<26} {:>14.3} {:>14} {:>14}",
            tick.label,
            tick.report.risk_reduction_ratio,
            find(&pro24).map_or("-".into(), |v| format!("{v:.3}")),
            find(&pro48).map_or("-".into(), |v| format!("{v:.3}")),
        );
    }

    let first = |r: &riskroute::replay::DisasterReplay| {
        r.ticks
            .iter()
            .find(|t| t.report.risk_reduction_ratio > planner_baseline(&reactive) + 0.005)
            .map(|t| (t.advisory, t.label.clone()))
    };
    println!();
    for (label, replay) in [
        ("reactive", &reactive),
        ("proactive +24h", &pro24),
        ("proactive +48h", &pro48),
    ] {
        match first(replay) {
            Some((n, at)) => println!("{label:<16} first storm reaction at advisory {n} ({at})"),
            None => println!("{label:<16} never reacts"),
        }
    }

    // How early could each Gulf PoP have been warned?
    println!("\nEarliest projected warning per PoP (lead ladder 12/24/48 h):");
    let advisories = advisories_for(Storm::Katrina);
    let mut warned: Vec<(String, usize, f64)> = net
        .pops()
        .iter()
        .filter_map(|p| {
            earliest_warning(&advisories, p.location, &[12.0, 24.0, 48.0])
                .map(|(adv, lead)| (p.name.clone(), adv, lead))
        })
        .collect();
    warned.sort_by_key(|w| w.1);
    for (name, adv, lead) in warned.iter().take(10) {
        println!("  {name:<28} advisory {adv:>2}, {lead:.0} h of lead time");
    }
    println!(
        "  ({} of {} PoPs ever warned)",
        warned.len(),
        net.pop_count()
    );
}

/// The pre-storm baseline ratio (historical risk only, first tick).
fn planner_baseline(replay: &riskroute::replay::DisasterReplay) -> f64 {
    replay
        .ticks
        .first()
        .map(|t| t.report.risk_reduction_ratio)
        .unwrap_or(0.0)
}
