//! Risk atlas: render the five disaster-likelihood surfaces and the
//! aggregate historical outage risk of every corpus network as ASCII maps
//! (the paper's Figure 4 plus the per-provider ranking its §7 analysis
//! implies).
//!
//! ```text
//! cargo run --release --example risk_atlas
//! ```

use riskroute::prelude::*;
use riskroute::NodeRisk;
use riskroute_geo::bbox::CONUS;
use riskroute_geo::GeoGrid;
use riskroute_hazard::events::sample_events;
use riskroute_hazard::{RiskSurface, ALL_EVENT_KINDS};

fn main() {
    println!("Fitting the five kernel density risk surfaces…\n");
    for &kind in ALL_EVENT_KINDS {
        let n = kind.paper_count().min(4_000);
        let events = sample_events(kind, n, 42);
        let surface = RiskSurface::fit(kind, &events, kind.paper_bandwidth_miles());
        let grid = surface.likelihood_grid(GeoGrid::new(CONUS, 14, 44).expect("valid grid"));
        println!(
            "{} — {} events, kernel bandwidth {:.2} mi",
            kind.label(),
            kind.paper_count(),
            surface.bandwidth_miles()
        );
        println!("{}", grid.ascii_heatmap());
    }

    println!("Aggregate historical outage risk per network (mean PoP risk):\n");
    let corpus = Corpus::standard(42);
    let hazards = HistoricalRisk::standard(42, Some(4_000));
    let mut rows: Vec<(String, &str, f64)> = corpus
        .all_networks()
        .map(|net| {
            let risk = NodeRisk::from_historical(net, &hazards);
            let kind = match net.kind() {
                NetworkKind::Tier1 => "tier-1",
                NetworkKind::Regional => "regional",
            };
            (net.name().to_string(), kind, risk.mean_historical())
        })
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
    println!("{:<20} {:<10} {:>12}", "Network", "Kind", "Mean PoP risk");
    println!("{}", "-".repeat(45));
    for (name, kind, risk) in &rows {
        println!("{name:<20} {kind:<10} {risk:>12.5}");
    }
    println!(
        "\nHighest-risk provider: {} — the paper's analysis singles out exactly \
         this kind of Gulf-/tornado-belt-concentrated footprint.",
        rows[0].0
    );
}
