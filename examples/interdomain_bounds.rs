//! Interdomain bit-risk bounds (§6.2): route a regional network's traffic
//! across Tier-1 peers and compare the shortest-path upper bound with the
//! RiskRoute lower bound.
//!
//! ```text
//! cargo run --release --example interdomain_bounds
//! ```

use riskroute::interdomain::InterdomainAnalysis;
use riskroute::prelude::*;
use riskroute_topology::Network;

fn main() {
    println!("Synthesizing corpus and risk substrate…");
    let corpus = Corpus::standard(42);
    let population = PopulationModel::synthesize(42, 50_000);
    let hazards = HistoricalRisk::standard(42, Some(4_000));

    let networks: Vec<&Network> = corpus.all_networks().collect();
    let analysis = InterdomainAnalysis::new(
        &networks,
        &corpus.peering,
        &population,
        &hazards,
        RiskWeights::historical_only(1e5),
    );
    let topo = analysis.topology();
    println!(
        "Merged topology: {} PoPs, {} links ({} inter-network hand-offs)\n",
        topo.merged().pop_count(),
        topo.merged().link_count(),
        topo.handoff_links()
    );

    // A concrete cross-country, cross-provider pair: Telepak's Jackson MS
    // PoP to a CoStreet PoP in New England.
    let telepak = corpus.network("Telepak").expect("corpus member");
    let costreet = corpus.network("CoStreet").expect("corpus member");
    let src = topo.merged_id("Telepak", 0).expect("valid pop");
    let dst = topo.merged_id("CoStreet", 0).expect("valid pop");
    println!(
        "Routing {}:{} -> {}:{}",
        telepak.name(),
        telepak.pops()[0].name,
        costreet.name(),
        costreet.pops()[0].name
    );
    let (upper, lower) = analysis.bounds(src, dst).expect("reachable via peering");
    let describe = |label: &str, p: &riskroute::RoutedPath| {
        let nets: Vec<String> = p
            .nodes
            .iter()
            .map(|&n| topo.provenance(n).0.to_string())
            .collect();
        let mut transit = vec![nets[0].clone()];
        for n in &nets {
            if transit.last() != Some(n) {
                transit.push(n.clone());
            }
        }
        println!(
            "  {label}: {} hops, {:.0} bit-miles, {:.0} bit-risk miles, via {}",
            p.nodes.len() - 1,
            p.bit_miles,
            p.bit_risk_miles,
            transit.join(" -> ")
        );
    };
    describe("upper bound (shortest path) ", &upper);
    describe("lower bound (full RiskRoute)", &lower);
    println!(
        "  bound gap: {:.1}% of the upper bound\n",
        100.0 * (1.0 - lower.bit_risk_miles / upper.bit_risk_miles)
    );

    // Aggregate per-regional reports (the Figure-8 measurement).
    println!(
        "Per-regional interdomain ratios (sources: own PoPs; destinations: all regional PoPs):"
    );
    let regional_names: Vec<&str> = corpus.regional.iter().map(|n| n.name()).collect();
    println!(
        "{:<18} {:>12} {:>12} {:>8}",
        "Network", "Risk ratio", "Dist ratio", "Pairs"
    );
    println!("{}", "-".repeat(54));
    for name in &regional_names {
        if let Some(r) = analysis.regional_report(name, &regional_names) {
            println!(
                "{:<18} {:>12.3} {:>12.3} {:>8}",
                name, r.risk_reduction_ratio, r.distance_increase_ratio, r.pairs
            );
        }
    }
}
