//! Umbrella crate for the RiskRoute reproduction workspace.
//!
//! This package exists to host the workspace-spanning integration tests under
//! `tests/` and the runnable examples under `examples/`. The actual library
//! surface lives in the member crates; the most convenient entry point for
//! downstream users is the [`riskroute`] crate, which re-exports the pieces of
//! the substrate crates needed to drive the framework end to end.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use riskroute;
pub use riskroute_forecast as forecast;
pub use riskroute_geo as geo;
pub use riskroute_graph as graph;
pub use riskroute_hazard as hazard;
pub use riskroute_population as population;
pub use riskroute_stats as stats;
pub use riskroute_topology as topology;
