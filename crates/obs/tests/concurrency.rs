//! Concurrency smoke test: the global collector under `std::thread`
//! fan-out must neither lose updates nor corrupt state.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::thread;

#[test]
fn collector_is_safe_under_thread_fan_out() {
    riskroute_obs::reset();
    riskroute_obs::enable();

    const THREADS: usize = 8;
    const ITERS: u64 = 500;

    thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..ITERS {
                    let mut span = riskroute_obs::span!("fanout_work", thread = t);
                    span.field("iter", i);
                    riskroute_obs::counter_add("fanout_ops", 1);
                    riskroute_obs::gauge_max("fanout_peak", i as f64);
                    riskroute_obs::histogram_observe("fanout_lat", 1e-6 * (i + 1) as f64);
                }
            });
        }
    });

    let snap = riskroute_obs::snapshot();
    let expected = THREADS as u64 * ITERS;
    assert_eq!(snap.counters["fanout_ops"], expected);
    assert_eq!(snap.gauges["fanout_peak"], (ITERS - 1) as f64);
    assert_eq!(snap.histograms["fanout_lat"].count(), expected);
    let stat = snap.span_stats["fanout_work"];
    assert_eq!(stat.count, expected);
    // Events either buffered or counted as dropped — none vanish.
    assert_eq!(snap.spans.len() as u64 + snap.dropped_events, expected);
    // Depth bookkeeping is per-thread: every recorded span is top-level.
    assert!(snap.spans.iter().all(|s| s.depth == 0));

    // Exports of a busy snapshot stay parseable.
    let lines = riskroute_obs::export::parse_jsonl(&riskroute_obs::export::to_jsonl(&snap)).unwrap();
    assert!(lines.len() as u64 > snap.spans.len() as u64);
    let prom = riskroute_obs::export::to_prometheus(&snap);
    assert!(prom.contains(&format!("riskroute_fanout_ops {expected}")));

    riskroute_obs::disable();
    riskroute_obs::reset();
}
