//! Per-span latency summaries over recorded trace events.

use crate::export::ObsLine;
use std::collections::BTreeMap;

/// Aggregated latency statistics for one span name, with exact
/// nearest-rank percentiles computed from the raw event durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Number of recorded events.
    pub count: u64,
    /// Summed duration in microseconds.
    pub total_us: u64,
    /// Median duration (nearest-rank) in microseconds.
    pub p50_us: u64,
    /// 99th-percentile duration (nearest-rank) in microseconds.
    pub p99_us: u64,
}

/// Nearest-rank percentile of an ascending-sorted sample: the value at
/// rank `ceil(q·n)` (1-based), clamped into the sample.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summarize `(name, duration_us)` samples into per-name statistics,
/// sorted by total time descending (name ascending on ties).
pub fn summarize(samples: impl IntoIterator<Item = (String, u64)>) -> Vec<SpanSummary> {
    let mut by_name: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for (name, dur) in samples {
        by_name.entry(name).or_default().push(dur);
    }
    let mut out: Vec<SpanSummary> = by_name
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            SpanSummary {
                name,
                count: durs.len() as u64,
                total_us: durs.iter().sum(),
                p50_us: nearest_rank(&durs, 0.50),
                p99_us: nearest_rank(&durs, 0.99),
            }
        })
        .collect();
    out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    out
}

/// Summarize the span events of a parsed JSONL trace.
pub fn summarize_lines(lines: &[ObsLine]) -> Vec<SpanSummary> {
    summarize(lines.iter().filter_map(|l| match l {
        ObsLine::Span(s) => Some((s.name.clone(), s.duration_us)),
        _ => None,
    }))
}

/// Render summaries as an aligned plain-text table:
/// span · count · total ms · p50 µs · p99 µs.
pub fn render_table(rows: &[SpanSummary]) -> String {
    let header = ["span", "count", "total_ms", "p50_us", "p99_us"];
    let mut cells: Vec<[String; 5]> = vec![header.map(String::from)];
    for r in rows {
        cells.push([
            r.name.clone(),
            r.count.to_string(),
            format!("{:.3}", r.total_us as f64 / 1e3),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
        ]);
    }
    let mut widths = [0usize; 5];
    for row in &cells {
        for (w, c) in widths.iter_mut().zip(row) {
            *w = (*w).max(c.len());
        }
    }
    let mut out = String::new();
    for row in &cells {
        let mut line = String::new();
        for (i, (c, w)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{c:<w$}"));
            } else {
                line.push_str(&format!("{c:>w$}"));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let durs: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&durs, 0.50), 50);
        assert_eq!(nearest_rank(&durs, 0.99), 99);
        assert_eq!(nearest_rank(&[7], 0.50), 7);
        assert_eq!(nearest_rank(&[7], 0.99), 7);
        assert_eq!(nearest_rank(&[], 0.5), 0);
    }

    #[test]
    fn summarize_groups_and_sorts_by_total() {
        let rows = summarize([
            ("fast".to_string(), 1),
            ("fast".to_string(), 3),
            ("slow".to_string(), 1000),
        ]);
        assert_eq!(rows[0].name, "slow");
        assert_eq!(rows[1].name, "fast");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_us, 4);
        assert_eq!(rows[1].p50_us, 1);
        assert_eq!(rows[1].p99_us, 3);
    }

    #[test]
    fn table_renders_aligned_columns() {
        let rows = summarize([("work".to_string(), 1500), ("work".to_string(), 2500)]);
        let table = render_table(&rows);
        let mut lines = table.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("span"));
        assert!(header.contains("p99_us"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("work"));
        assert!(row.contains("4.000"), "total 4000 µs renders as 4.000 ms: {row}");
    }
}
