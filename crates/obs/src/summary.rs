//! Per-span latency summaries and per-trace attribution tables over
//! recorded trace events.

use crate::export::ObsLine;
use std::collections::BTreeMap;

/// Aggregated latency statistics for one span name, with exact
/// nearest-rank percentiles computed from the raw event durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Number of recorded events.
    pub count: u64,
    /// Summed duration in microseconds.
    pub total_us: u64,
    /// Median duration (nearest-rank) in microseconds.
    pub p50_us: u64,
    /// 99th-percentile duration (nearest-rank) in microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile duration (nearest-rank) in microseconds.
    pub p999_us: u64,
}

/// Work attributed to one trace: its label, the span events recorded
/// under it, and the counter deltas from its attribution table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Trace ID.
    pub id: u64,
    /// Label given to [`crate::ObsScope::begin`].
    pub label: String,
    /// Span events attributed to this trace.
    pub spans: u64,
    /// Summed span duration in microseconds (nested spans double-count,
    /// as in [`SpanSummary`]).
    pub span_us: u64,
    /// Counter deltas attributed to this trace.
    pub counters: BTreeMap<String, u64>,
}

/// Nearest-rank percentile of an ascending-sorted sample: the value at
/// rank `ceil(q·n)` (1-based), clamped into the sample.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summarize `(name, duration_us)` samples into per-name statistics,
/// sorted by total time descending (name ascending on ties).
pub fn summarize(samples: impl IntoIterator<Item = (String, u64)>) -> Vec<SpanSummary> {
    let mut by_name: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for (name, dur) in samples {
        by_name.entry(name).or_default().push(dur);
    }
    let mut out: Vec<SpanSummary> = by_name
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            SpanSummary {
                name,
                count: durs.len() as u64,
                total_us: durs.iter().sum(),
                p50_us: nearest_rank(&durs, 0.50),
                p99_us: nearest_rank(&durs, 0.99),
                p999_us: nearest_rank(&durs, 0.999),
            }
        })
        .collect();
    out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    out
}

/// Summarize the span events of a parsed JSONL trace.
pub fn summarize_lines(lines: &[ObsLine]) -> Vec<SpanSummary> {
    summarize(lines.iter().filter_map(|l| match l {
        ObsLine::Span(s) => Some((s.name.clone(), s.duration_us)),
        _ => None,
    }))
}

/// Build per-trace attribution summaries from a parsed JSONL export:
/// one row per `trace` line (label + counters), with span counts/time
/// folded in from the span events carrying that trace ID. Sorted by ID.
pub fn summarize_traces(lines: &[ObsLine]) -> Vec<TraceSummary> {
    let mut by_id: BTreeMap<u64, TraceSummary> = BTreeMap::new();
    for line in lines {
        if let ObsLine::Trace { id, label, counters } = line {
            by_id.insert(
                *id,
                TraceSummary {
                    id: *id,
                    label: label.clone(),
                    spans: 0,
                    span_us: 0,
                    counters: counters.clone(),
                },
            );
        }
    }
    for line in lines {
        let ObsLine::Span(s) = line else { continue };
        if s.trace == 0 {
            continue;
        }
        let entry = by_id.entry(s.trace).or_insert_with(|| TraceSummary {
            id: s.trace,
            label: "?".to_string(),
            spans: 0,
            span_us: 0,
            counters: BTreeMap::new(),
        });
        entry.spans += 1;
        entry.span_us += s.duration_us;
    }
    by_id.into_values().collect()
}

/// Align `cells` (first row = header) into a plain-text table: first
/// column left-aligned, the rest right-aligned, two-space gutters.
fn render_aligned(cells: &[Vec<String>]) -> String {
    let columns = cells.first().map(Vec::len).unwrap_or(0);
    let mut widths = vec![0usize; columns];
    for row in cells {
        for (w, c) in widths.iter_mut().zip(row) {
            *w = (*w).max(c.len());
        }
    }
    let mut out = String::new();
    for row in cells {
        let mut line = String::new();
        for (i, (c, w)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{c:<w$}"));
            } else {
                line.push_str(&format!("{c:>w$}"));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Render summaries as an aligned plain-text table:
/// span · count · total ms · p50 µs · p99 µs · p999 µs.
pub fn render_table(rows: &[SpanSummary]) -> String {
    let header = ["span", "count", "total_ms", "p50_us", "p99_us", "p999_us"];
    let mut cells: Vec<Vec<String>> = vec![header.map(String::from).to_vec()];
    for r in rows {
        cells.push(vec![
            r.name.clone(),
            r.count.to_string(),
            format!("{:.3}", r.total_us as f64 / 1e3),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            r.p999_us.to_string(),
        ]);
    }
    render_aligned(&cells)
}

/// How many counter columns [`render_trace_table`] keeps (the biggest
/// totals win; the rest are dropped from the table, not the data).
pub const TRACE_TABLE_COUNTERS: usize = 6;

/// Render per-trace attribution as an aligned table: trace · label ·
/// spans · span_ms, then up to [`TRACE_TABLE_COUNTERS`] counter columns
/// chosen by total value across traces (descending, name-ascending ties).
pub fn render_trace_table(rows: &[TraceSummary]) -> String {
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for r in rows {
        for (name, &v) in &r.counters {
            *totals.entry(name.as_str()).or_default() += v;
        }
    }
    let mut picked: Vec<(&str, u64)> = totals.into_iter().collect();
    picked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    picked.truncate(TRACE_TABLE_COUNTERS);
    let counter_names: Vec<&str> = picked.into_iter().map(|(n, _)| n).collect();

    let mut header = vec![
        "trace".to_string(),
        "label".to_string(),
        "spans".to_string(),
        "span_ms".to_string(),
    ];
    header.extend(counter_names.iter().map(|n| n.to_string()));
    let mut cells = vec![header];
    for r in rows {
        let mut row = vec![
            r.id.to_string(),
            r.label.clone(),
            r.spans.to_string(),
            format!("{:.3}", r.span_us as f64 / 1e3),
        ];
        row.extend(
            counter_names
                .iter()
                .map(|n| r.counters.get(*n).copied().unwrap_or(0).to_string()),
        );
        cells.push(row);
    }
    render_aligned(&cells)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::SpanRecord;

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let durs: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&durs, 0.50), 50);
        assert_eq!(nearest_rank(&durs, 0.99), 99);
        assert_eq!(nearest_rank(&[7], 0.50), 7);
        assert_eq!(nearest_rank(&[7], 0.99), 7);
        assert_eq!(nearest_rank(&[], 0.5), 0);
    }

    #[test]
    fn nearest_rank_p999_and_single_sample() {
        // 1000 samples: p999 is the 999th value; only the max sits above.
        let durs: Vec<u64> = (1..=1000).collect();
        assert_eq!(nearest_rank(&durs, 0.999), 999);
        assert_eq!(nearest_rank(&durs, 1.0), 1000);
        // 100 samples: ceil(99.9) = 100 — p999 is the max, not clamped out.
        let durs: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&durs, 0.999), 100);
        // Single sample: every quantile is that sample.
        assert_eq!(nearest_rank(&[42], 0.999), 42);
        assert_eq!(nearest_rank(&[42], 0.001), 42);
        let rows = summarize([("once".to_string(), 42)]);
        assert_eq!((rows[0].p50_us, rows[0].p99_us, rows[0].p999_us), (42, 42, 42));
    }

    #[test]
    fn summarize_groups_and_sorts_by_total() {
        let rows = summarize([
            ("fast".to_string(), 1),
            ("fast".to_string(), 3),
            ("slow".to_string(), 1000),
        ]);
        assert_eq!(rows[0].name, "slow");
        assert_eq!(rows[1].name, "fast");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_us, 4);
        assert_eq!(rows[1].p50_us, 1);
        assert_eq!(rows[1].p99_us, 3);
    }

    #[test]
    fn table_renders_aligned_columns() {
        let rows = summarize([("work".to_string(), 1500), ("work".to_string(), 2500)]);
        let table = render_table(&rows);
        let mut lines = table.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("span"));
        assert!(header.contains("p99_us"));
        assert!(header.contains("p999_us"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("work"));
        assert!(row.contains("4.000"), "total 4000 µs renders as 4.000 ms: {row}");
    }

    fn span(name: &str, trace: u64, dur: u64) -> ObsLine {
        ObsLine::Span(SpanRecord {
            name: name.into(),
            id: 0,
            parent: 0,
            trace,
            thread: 1,
            depth: 0,
            start_us: 0,
            duration_us: dur,
            fields: Vec::new(),
        })
    }

    #[test]
    fn trace_summaries_fold_spans_into_attribution_rows() {
        let lines = vec![
            ObsLine::Trace {
                id: 1,
                label: "route".into(),
                counters: [("risk_sssp_runs".to_string(), 3)].into_iter().collect(),
            },
            ObsLine::Trace {
                id: 2,
                label: "ratio".into(),
                counters: [("risk_sssp_runs".to_string(), 10)].into_iter().collect(),
            },
            span("risk_route", 1, 500),
            span("risk_route", 1, 700),
            span("pair_sweep", 2, 9000),
            span("untraced", 0, 123),
        ];
        let rows = summarize_traces(&lines);
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].id, rows[0].spans, rows[0].span_us), (1, 2, 1200));
        assert_eq!(rows[0].counters["risk_sssp_runs"], 3);
        assert_eq!((rows[1].id, rows[1].spans, rows[1].span_us), (2, 1, 9000));
        let table = render_trace_table(&rows);
        let header = table.lines().next().unwrap();
        assert!(header.starts_with("trace"));
        assert!(header.contains("risk_sssp_runs"));
        assert!(table.contains("route"));
        assert!(table.contains("9.000"));
    }
}
