//! Request-scoped attribution: trace IDs and a thread-inheritable scope
//! context that routes counter deltas and span trees to the active
//! request.
//!
//! # Model
//!
//! An [`ObsScope`] is a tiny `Copy` token naming one *trace* — one unit of
//! externally-attributable work, e.g. one `riskroute serve` request or one
//! one-shot CLI command. [`ObsScope::begin`] allocates a fresh trace ID
//! and registers it in a bounded per-trace counter table;
//! [`ObsScope::enter`] installs the scope on the current thread (RAII
//! guard restores the previous scope), and [`ObsScope::current`] captures
//! whatever is installed so worker pools can re-install it on their
//! threads. While a scope is installed, every [`crate::counter_add`]
//! lands twice: once in the process-global counter map (unchanged
//! behaviour) and once in the per-trace table, and every span records the
//! trace ID plus its parent span, forming a cross-thread span tree.
//!
//! # Overhead contract
//!
//! When collection is disabled, [`ObsScope::begin`] / [`current`] /
//! [`enter`] all reduce to the same one relaxed atomic load and branch as
//! every other collector entry point: `begin` returns [`ObsScope::NONE`]
//! and `enter` on it installs nothing. Trace IDs never influence computed
//! outputs — they exist only inside the collector — so results stay
//! byte-identical with tracing on or off.
//!
//! [`current`]: ObsScope::current
//! [`enter`]: ObsScope::enter

use crate::{is_enabled, lock};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cap on retained traces; when full, the oldest (smallest-ID) trace is
/// evicted so a long-running daemon's attribution table stays bounded.
pub const MAX_TRACES: usize = 4096;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(1);
static TRACES: Mutex<BTreeMap<u64, TraceStats>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// (active trace ID, innermost open span ID) for this thread.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    /// Small stable per-thread ordinal for trace-event `tid` columns.
    static THREAD_ORD: Cell<u64> = const { Cell::new(0) };
}

/// Per-trace attribution: the label given to [`ObsScope::begin`] and every
/// counter delta recorded while the trace's scope was installed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Human-readable label (e.g. the request op or CLI command).
    pub label: String,
    /// Counter deltas attributed to this trace.
    pub counters: BTreeMap<String, u64>,
}

/// A request-scoped attribution token: trace ID plus the span context to
/// inherit. `Copy`, thread-safe to pass around, and inert when collection
/// is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsScope {
    trace: u64,
    parent: u64,
}

impl ObsScope {
    /// The inert scope: no trace, attributes nothing.
    pub const NONE: ObsScope = ObsScope { trace: 0, parent: 0 };

    /// Allocate a fresh trace and register it under `label`. Returns
    /// [`ObsScope::NONE`] when collection is disabled (one load + branch).
    /// The scope is not installed — call [`ObsScope::enter`].
    pub fn begin(label: &str) -> ObsScope {
        if !is_enabled() {
            return ObsScope::NONE;
        }
        let trace = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
        let mut traces = lock(&TRACES);
        while traces.len() >= MAX_TRACES {
            traces.pop_first();
        }
        traces.insert(
            trace,
            TraceStats {
                label: label.to_string(),
                counters: BTreeMap::new(),
            },
        );
        ObsScope { trace, parent: 0 }
    }

    /// Capture the scope installed on the current thread (trace plus the
    /// innermost open span), for re-installation on worker threads.
    /// Returns [`ObsScope::NONE`] when collection is disabled.
    pub fn current() -> ObsScope {
        if !is_enabled() {
            return ObsScope::NONE;
        }
        let (trace, parent) = CURRENT.with(Cell::get);
        ObsScope { trace, parent }
    }

    /// The trace ID (0 for [`ObsScope::NONE`]).
    pub fn trace_id(self) -> u64 {
        self.trace
    }

    /// Whether this is the inert scope.
    pub fn is_none(self) -> bool {
        self.trace == 0
    }

    /// Install this scope on the current thread until the returned guard
    /// drops (which restores whatever was installed before). A no-op
    /// (one load + branch) when collection is disabled.
    pub fn enter(self) -> ScopeGuard {
        if !is_enabled() {
            return ScopeGuard {
                prev: None,
                _single_thread: PhantomData,
            };
        }
        let prev = CURRENT.with(|c| c.replace((self.trace, self.parent)));
        ScopeGuard {
            prev: Some(prev),
            _single_thread: PhantomData,
        }
    }
}

/// RAII guard from [`ObsScope::enter`]; restores the previously installed
/// scope on drop. Not `Send`: it must drop on the thread that entered.
#[must_use = "the scope is uninstalled when the guard drops"]
pub struct ScopeGuard {
    prev: Option<(u64, u64)>,
    _single_thread: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| c.set(prev));
        }
    }
}

/// Counter deltas attributed to `trace` so far (empty when the trace is
/// unknown or evicted).
pub fn trace_counters(trace: u64) -> BTreeMap<String, u64> {
    lock(&TRACES)
        .get(&trace)
        .map(|t| t.counters.clone())
        .unwrap_or_default()
}

/// Allocate a process-unique span ID.
pub(crate) fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Record `span_id` as the innermost open span on this thread; returns
/// `(trace, previous parent)` for the span to restore on drop.
pub(crate) fn push_span(span_id: u64) -> (u64, u64) {
    CURRENT.with(|c| {
        let (trace, parent) = c.get();
        c.set((trace, span_id));
        (trace, parent)
    })
}

/// Restore the span context captured by [`push_span`].
pub(crate) fn pop_span(trace: u64, parent: u64) {
    CURRENT.with(|c| c.set((trace, parent)));
}

/// Small stable ordinal for this thread (assigned on first use; 1-based).
pub(crate) fn thread_ordinal() -> u64 {
    THREAD_ORD.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Add `n` to `name` in the table of the trace installed on this thread
/// (no-op without an installed trace; the caller already checked
/// [`is_enabled`]).
pub(crate) fn attribute_counter(name: &str, n: u64) {
    let trace = CURRENT.with(|c| c.get().0);
    if trace == 0 {
        return;
    }
    let mut traces = lock(&TRACES);
    if let Some(t) = traces.get_mut(&trace) {
        if let Some(v) = t.counters.get_mut(name) {
            *v += n;
        } else {
            t.counters.insert(name.to_string(), n);
        }
    }
}

/// Copy of the whole per-trace table for snapshots.
pub(crate) fn traces_snapshot() -> BTreeMap<u64, TraceStats> {
    lock(&TRACES).clone()
}

/// Clear the per-trace table and restart trace/span ID allocation (called
/// from [`crate::reset`]). Installed thread contexts are left alone —
/// attribution to a cleared trace simply lands nowhere.
pub(crate) fn reset_traces() {
    lock(&TRACES).clear();
    NEXT_TRACE_ID.store(1, Ordering::Relaxed);
    NEXT_SPAN_ID.store(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::tests::with_collector;
    use crate::{counter_add, counter_value, snapshot};

    #[test]
    fn disabled_scope_is_inert() {
        let _g = crate::tests::TEST_GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::disable();
        crate::reset();
        let scope = ObsScope::begin("quiet");
        assert!(scope.is_none());
        assert_eq!(scope, ObsScope::NONE);
        let _guard = scope.enter();
        assert!(ObsScope::current().is_none());
        counter_add("quiet_work", 3);
        assert!(snapshot().traces.is_empty());
    }

    #[test]
    fn counters_attribute_to_the_installed_trace() {
        with_collector(|| {
            let a = ObsScope::begin("req-a");
            let b = ObsScope::begin("req-b");
            {
                let _g = a.enter();
                counter_add("work", 3);
                {
                    let _g = b.enter();
                    counter_add("work", 10);
                }
                // Guard restored scope `a`.
                counter_add("work", 4);
            }
            counter_add("work", 100); // unscoped: global only
            assert_eq!(counter_value("work"), 117);
            assert_eq!(trace_counters(a.trace_id())["work"], 7);
            assert_eq!(trace_counters(b.trace_id())["work"], 10);
            let snap = snapshot();
            assert_eq!(snap.traces[&a.trace_id()].label, "req-a");
            assert_eq!(snap.traces[&b.trace_id()].counters["work"], 10);
        });
    }

    #[test]
    fn scope_crosses_threads_via_current() {
        with_collector(|| {
            let scope = ObsScope::begin("cross");
            let _g = scope.enter();
            let captured = ObsScope::current();
            assert_eq!(captured.trace_id(), scope.trace_id());
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _g = captured.enter();
                    counter_add("thread_work", 5);
                });
            });
            assert_eq!(trace_counters(scope.trace_id())["thread_work"], 5);
        });
    }

    #[test]
    fn spans_record_trace_parent_and_ids() {
        with_collector(|| {
            let scope = ObsScope::begin("spans");
            let _g = scope.enter();
            {
                let _outer = crate::span!("outer");
                let _inner = crate::span!("inner");
            }
            let _orphan = crate::span!("orphan_check");
            drop(_orphan);
            let snap = snapshot();
            let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
            let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
            assert_eq!(inner.trace, scope.trace_id());
            assert_eq!(outer.trace, scope.trace_id());
            assert_eq!(inner.parent, outer.id);
            assert_eq!(outer.parent, 0);
            assert_ne!(inner.id, outer.id);
            assert_ne!(inner.thread, 0);
            // After both guards dropped, new spans are roots again.
            let orphan = snap
                .spans
                .iter()
                .find(|s| s.name == "orphan_check")
                .unwrap();
            assert_eq!(orphan.parent, 0);
        });
    }

    #[test]
    fn trace_table_is_bounded_with_oldest_evicted() {
        with_collector(|| {
            let first = ObsScope::begin("first");
            for i in 0..MAX_TRACES {
                let _ = ObsScope::begin(&format!("filler-{i}"));
            }
            let snap = snapshot();
            assert_eq!(snap.traces.len(), MAX_TRACES);
            assert!(!snap.traces.contains_key(&first.trace_id()));
            // Attribution to the evicted trace lands nowhere, silently.
            let _g = first.enter();
            counter_add("late", 1);
            assert!(trace_counters(first.trace_id()).is_empty());
        });
    }

    #[test]
    fn reset_clears_traces_and_restarts_ids() {
        with_collector(|| {
            let a = ObsScope::begin("a");
            assert!(a.trace_id() >= 1);
            crate::reset();
            assert!(snapshot().traces.is_empty());
            let b = ObsScope::begin("b");
            assert_eq!(b.trace_id(), 1);
        });
    }
}
