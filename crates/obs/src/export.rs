//! Snapshot exporters: JSON Lines (via `riskroute-json`), the Prometheus
//! text-exposition format, and a Chrome trace-event JSON for
//! `chrome://tracing` / Perfetto — plus atomic file writes and an
//! exposition-format lint.
//!
//! # JSONL layout
//!
//! One self-describing object per line, discriminated by `"type"`:
//!
//! ```text
//! {"type":"meta","dropped_events":0}
//! {"type":"span","name":"pair_sweep","id":7,"parent":3,"trace":1,
//!  "thread":2,"depth":0,"start_us":12,"dur_us":340,
//!  "fields":[["pairs",12],["net","Level3"]]}
//! {"type":"counter","name":"dijkstra_pops","value":8123}
//! {"type":"gauge","name":"dijkstra_heap_peak","value":41}
//! {"type":"histogram","name":"checkpoint_write_seconds","sum":0.01,"count":3,
//!  "bounds":[...],"counts":[...]}
//! {"type":"trace","id":1,"label":"route","counters":[["risk_sssp_runs",3]]}
//! ```
//!
//! Numbers travel as JSON doubles, so integer values above 2^53 lose
//! precision; nothing in this pipeline approaches that.

use crate::{FieldValue, Histogram, MetricsSnapshot, SpanRecord, SpanStat, TraceStats};
use riskroute_json::{Json, JsonError};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One parsed line of a JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsLine {
    /// Export header: events discarded by the buffer cap.
    Meta {
        /// Count of discarded span events.
        dropped_events: u64,
    },
    /// A span event.
    Span(SpanRecord),
    /// A counter reading.
    Counter {
        /// Counter name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// A gauge reading.
    Gauge {
        /// Gauge name.
        name: String,
        /// Final value.
        value: f64,
    },
    /// A histogram reading.
    Histogram {
        /// Histogram name.
        name: String,
        /// The exported histogram.
        histogram: Histogram,
    },
    /// One trace's attribution table (label + per-trace counter deltas).
    Trace {
        /// Trace ID.
        id: u64,
        /// Label given to [`crate::ObsScope::begin`].
        label: String,
        /// Counter deltas attributed to this trace.
        counters: BTreeMap<String, u64>,
    },
}

fn field_value_to_json(v: &FieldValue) -> Json {
    match v {
        FieldValue::U64(n) => Json::Num(*n as f64),
        FieldValue::F64(x) => Json::Num(*x),
        FieldValue::Str(s) => Json::Str(s.clone()),
    }
}

fn field_value_from_json(v: &Json) -> Result<FieldValue, JsonError> {
    match v {
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
            Ok(FieldValue::U64(*n as u64))
        }
        Json::Num(n) => Ok(FieldValue::F64(*n)),
        Json::Str(s) => Ok(FieldValue::Str(s.clone())),
        other => Err(JsonError::Shape(format!(
            "expected number or string field value, got {other:?}"
        ))),
    }
}

fn span_to_json(s: &SpanRecord) -> Json {
    // Fields travel as [key, value] pairs (not an object) so insertion
    // order survives the round trip.
    let fields: Vec<Json> = s
        .fields
        .iter()
        .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), field_value_to_json(v)]))
        .collect();
    Json::obj([
        ("type", Json::Str("span".into())),
        ("name", Json::Str(s.name.clone())),
        ("id", Json::Num(s.id as f64)),
        ("parent", Json::Num(s.parent as f64)),
        ("trace", Json::Num(s.trace as f64)),
        ("thread", Json::Num(s.thread as f64)),
        ("depth", Json::Num(f64::from(s.depth))),
        ("start_us", Json::Num(s.start_us as f64)),
        ("dur_us", Json::Num(s.duration_us as f64)),
        ("fields", Json::Arr(fields)),
    ])
}

fn num_arr<T: Copy + Into<f64>>(xs: &[T]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x.into())).collect())
}

/// Render a snapshot as JSON Lines.
pub fn to_jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let meta = Json::obj([
        ("type", Json::Str("meta".into())),
        ("dropped_events", Json::Num(snap.dropped_events as f64)),
    ]);
    let _ = writeln!(out, "{}", meta.to_string_compact());
    for s in &snap.spans {
        let _ = writeln!(out, "{}", span_to_json(s).to_string_compact());
    }
    for (name, &value) in &snap.counters {
        let line = Json::obj([
            ("type", Json::Str("counter".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(value as f64)),
        ]);
        let _ = writeln!(out, "{}", line.to_string_compact());
    }
    for (name, &value) in &snap.gauges {
        let line = Json::obj([
            ("type", Json::Str("gauge".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(value)),
        ]);
        let _ = writeln!(out, "{}", line.to_string_compact());
    }
    for (name, h) in &snap.histograms {
        let counts: Vec<f64> = h.counts().iter().map(|&c| c as f64).collect();
        let line = Json::obj([
            ("type", Json::Str("histogram".into())),
            ("name", Json::Str(name.clone())),
            ("sum", Json::Num(h.sum())),
            ("count", Json::Num(h.count() as f64)),
            ("bounds", num_arr(h.bounds())),
            ("counts", num_arr(&counts)),
        ]);
        let _ = writeln!(out, "{}", line.to_string_compact());
    }
    for (id, t) in &snap.traces {
        let counters: Vec<Json> = t
            .counters
            .iter()
            .map(|(k, &v)| Json::Arr(vec![Json::Str(k.clone()), Json::Num(v as f64)]))
            .collect();
        let line = Json::obj([
            ("type", Json::Str("trace".into())),
            ("id", Json::Num(*id as f64)),
            ("label", Json::Str(t.label.clone())),
            ("counters", Json::Arr(counters)),
        ]);
        let _ = writeln!(out, "{}", line.to_string_compact());
    }
    out
}

/// Read an optional non-negative integer field (absent → 0), tolerating
/// exports written before spans carried IDs.
fn opt_u64(v: &Json, name: &str) -> Result<u64, JsonError> {
    match v.field(name) {
        Ok(f) => Ok(f.as_usize()? as u64),
        Err(_) => Ok(0),
    }
}

fn parse_span(v: &Json) -> Result<SpanRecord, JsonError> {
    let mut fields = Vec::new();
    for pair in v.field("fields")?.as_arr()? {
        let [k, fv] = pair.as_arr()? else {
            return Err(JsonError::Shape("span field is not a [key, value] pair".into()));
        };
        fields.push((k.as_str()?.to_string(), field_value_from_json(fv)?));
    }
    Ok(SpanRecord {
        name: v.field("name")?.as_str()?.to_string(),
        id: opt_u64(v, "id")?,
        parent: opt_u64(v, "parent")?,
        trace: opt_u64(v, "trace")?,
        thread: opt_u64(v, "thread")?,
        depth: v.field("depth")?.as_usize()? as u32,
        start_us: v.field("start_us")?.as_usize()? as u64,
        duration_us: v.field("dur_us")?.as_usize()? as u64,
        fields,
    })
}

fn parse_trace(v: &Json) -> Result<(u64, TraceStats), JsonError> {
    let mut counters = BTreeMap::new();
    for pair in v.field("counters")?.as_arr()? {
        let [k, cv] = pair.as_arr()? else {
            return Err(JsonError::Shape(
                "trace counter is not a [name, value] pair".into(),
            ));
        };
        counters.insert(k.as_str()?.to_string(), cv.as_usize()? as u64);
    }
    Ok((
        v.field("id")?.as_usize()? as u64,
        TraceStats {
            label: v.field("label")?.as_str()?.to_string(),
            counters,
        },
    ))
}

fn parse_histogram(v: &Json) -> Result<(String, Histogram), JsonError> {
    let name = v.field("name")?.as_str()?.to_string();
    let bounds = v
        .field("bounds")?
        .as_arr()?
        .iter()
        .map(Json::as_f64)
        .collect::<Result<Vec<f64>, _>>()?;
    let counts = v
        .field("counts")?
        .as_arr()?
        .iter()
        .map(|c| c.as_usize().map(|n| n as u64))
        .collect::<Result<Vec<u64>, _>>()?;
    let sum = v.field("sum")?.as_f64()?;
    let histogram = Histogram::from_parts(bounds, counts, sum).ok_or_else(|| {
        JsonError::Shape(format!("histogram {name:?}: counts do not match bounds"))
    })?;
    Ok((name, histogram))
}

/// Parse a JSONL export back into typed lines. Blank lines are skipped;
/// any malformed line fails the whole parse (exports are machine-written).
pub fn parse_jsonl(text: &str) -> Result<Vec<ObsLine>, JsonError> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let v = riskroute_json::parse(line)?;
        let kind = v.field("type")?.as_str()?.to_string();
        out.push(match kind.as_str() {
            "meta" => ObsLine::Meta {
                dropped_events: v.field("dropped_events")?.as_usize()? as u64,
            },
            "span" => ObsLine::Span(parse_span(&v)?),
            "counter" => ObsLine::Counter {
                name: v.field("name")?.as_str()?.to_string(),
                value: v.field("value")?.as_usize()? as u64,
            },
            "gauge" => ObsLine::Gauge {
                name: v.field("name")?.as_str()?.to_string(),
                value: v.field("value")?.as_f64()?,
            },
            "histogram" => {
                let (name, histogram) = parse_histogram(&v)?;
                ObsLine::Histogram { name, histogram }
            }
            "trace" => {
                let (id, stats) = parse_trace(&v)?;
                ObsLine::Trace {
                    id,
                    label: stats.label,
                    counters: stats.counters,
                }
            }
            other => {
                return Err(JsonError::Shape(format!("unknown line type {other:?}")));
            }
        });
    }
    Ok(out)
}

/// Reassemble a [`MetricsSnapshot`] from parsed JSONL lines (span_stats
/// are rebuilt from the span events, so they reflect only buffered spans).
pub fn snapshot_from_lines(lines: &[ObsLine]) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for line in lines {
        match line {
            ObsLine::Meta { dropped_events } => snap.dropped_events = *dropped_events,
            ObsLine::Span(s) => {
                let stat = snap.span_stats.entry(s.name.clone()).or_insert(SpanStat {
                    count: 0,
                    total_us: 0,
                });
                stat.count += 1;
                stat.total_us += s.duration_us;
                snap.spans.push(s.clone());
            }
            ObsLine::Counter { name, value } => {
                snap.counters.insert(name.clone(), *value);
            }
            ObsLine::Gauge { name, value } => {
                snap.gauges.insert(name.clone(), *value);
            }
            ObsLine::Histogram { name, histogram } => {
                snap.histograms.insert(name.clone(), histogram.clone());
            }
            ObsLine::Trace { id, label, counters } => {
                snap.traces.insert(
                    *id,
                    TraceStats {
                        label: label.clone(),
                        counters: counters.clone(),
                    },
                );
            }
        }
    }
    snap
}

/// Restrict a metric name to the Prometheus charset `[a-zA-Z0-9_:]`,
/// mapping anything else to `_` (and prefixing `_` if it starts with a
/// digit).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok || c.is_ascii_digit() { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render a snapshot in the Prometheus text-exposition format. All series
/// carry the `riskroute_` prefix; per-span latency totals become a
/// `riskroute_span_seconds` summary with a `span` label. The span-buffer
/// drop count is always exported as `riskroute_obs_spans_dropped` (even at
/// zero) so truncated traces are detectable from a scrape alone. Per-trace
/// tables are deliberately *not* exported here — trace IDs are unbounded
/// label cardinality; they travel via JSONL and [`to_chrome_trace`].
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE riskroute_obs_spans_dropped counter");
    let _ = writeln!(out, "riskroute_obs_spans_dropped {}", snap.dropped_events);
    for (name, &value) in &snap.counters {
        let n = format!("riskroute_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, &value) in &snap.gauges {
        let n = format!("riskroute_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, h) in &snap.histograms {
        let n = format!("riskroute_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {n} histogram");
        let cumulative = h.cumulative();
        for (bound, cum) in h.bounds().iter().zip(&cumulative) {
            let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cum}");
        }
        let total = cumulative.last().copied().unwrap_or(0);
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {total}");
        let _ = writeln!(out, "{n}_sum {}", h.sum());
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    if !snap.span_stats.is_empty() {
        let _ = writeln!(out, "# TYPE riskroute_span_seconds summary");
        for (name, stat) in &snap.span_stats {
            let label = escape_label_value(name);
            let _ = writeln!(
                out,
                "riskroute_span_seconds_sum{{span=\"{label}\"}} {}",
                stat.total_us as f64 / 1e6
            );
            let _ = writeln!(
                out,
                "riskroute_span_seconds_count{{span=\"{label}\"}} {}",
                stat.count
            );
        }
    }
    out
}

/// Render the snapshot's span events as Chrome trace-event JSON (the
/// `chrome://tracing` / Perfetto format): one `"ph":"X"` complete event
/// per span with `ts`/`dur` in microseconds, `pid` = trace ID, `tid` = the
/// recording thread's stable ordinal, and span/parent IDs plus user fields
/// in `args`. Traces additionally get a `process_name` metadata event
/// carrying their label, so the viewer groups one request per "process".
pub fn to_chrome_trace(snap: &MetricsSnapshot) -> String {
    let mut events: Vec<Json> = Vec::new();
    for (id, t) in &snap.traces {
        events.push(Json::obj([
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(*id as f64)),
            ("tid", Json::Num(0.0)),
            (
                "args",
                Json::obj([("name", Json::Str(format!("trace {id}: {}", t.label)))]),
            ),
        ]));
    }
    for s in &snap.spans {
        let mut args = BTreeMap::new();
        for (k, v) in &s.fields {
            args.insert(k.clone(), field_value_to_json(v));
        }
        args.insert("span_id".into(), Json::Num(s.id as f64));
        args.insert("parent_id".into(), Json::Num(s.parent as f64));
        events.push(Json::obj([
            ("name", Json::Str(s.name.clone())),
            ("cat", Json::Str("riskroute".into())),
            ("ph", Json::Str("X".into())),
            ("ts", Json::Num(s.start_us as f64)),
            ("dur", Json::Num(s.duration_us as f64)),
            ("pid", Json::Num(s.trace as f64)),
            ("tid", Json::Num(s.thread as f64)),
            ("args", Json::Obj(args)),
        ]));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
    .to_string_compact()
}

fn lint_name(name: &str, what: &str, lineno: usize) -> Result<(), String> {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !head_ok || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("line {lineno}: invalid {what} name {name:?}"));
    }
    Ok(())
}

fn lint_value(raw: &str, lineno: usize) -> Result<f64, String> {
    match raw {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => raw
            .parse::<f64>()
            .map_err(|_| format!("line {lineno}: unparseable sample value {raw:?}")),
    }
}

/// Parsed `key="value"` label pairs from one sample line.
type Labels = Vec<(String, String)>;

/// Parse one `{label="value",...}` block; returns the labels and the rest
/// of the line after the closing `}`.
fn lint_labels(body: &str, lineno: usize) -> Result<(Labels, &str), String> {
    let mut labels = Vec::new();
    let mut rest = body;
    loop {
        rest = rest.trim_start_matches(' ');
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without '='"))?;
        let key = &rest[..eq];
        lint_name(key, "label", lineno)?;
        if key.contains(':') {
            return Err(format!("line {lineno}: ':' not allowed in label {key:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {lineno}: label value must be quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let after_quote = loop {
            let Some((i, c)) = chars.next() else {
                return Err(format!("line {lineno}: unterminated label value"));
            };
            match c {
                '"' => break &rest[i + 1..],
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e @ ('\\' | '"'))) => value.push(e),
                    other => {
                        return Err(format!(
                            "line {lineno}: bad escape {:?} in label value",
                            other.map(|(_, c)| c)
                        ))
                    }
                },
                '\n' => return Err(format!("line {lineno}: raw newline in label value")),
                c => value.push(c),
            }
        };
        labels.push((key.to_string(), value));
        rest = after_quote;
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        } else if !rest.starts_with('}') {
            return Err(format!(
                "line {lineno}: expected ',' or '}}' after label, got {rest:?}"
            ));
        }
    }
}

/// Strictly lint a Prometheus text-exposition document: every line must be
/// a comment (`# HELP` / `# TYPE` / free comment) or a well-formed sample
/// `name[{labels}] value`; `_bucket` series must carry a parseable `le`,
/// include `+Inf`, be cumulative (non-decreasing in `le` order), and agree
/// with their `_count`. Returns the number of sample lines checked.
///
/// # Errors
/// A message naming the first offending line (1-based) and what is wrong
/// with it.
pub fn lint_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    // _bucket groups keyed by series name + non-le labels; value: (le,
    // count, raw le text) in file order.
    let mut buckets: BTreeMap<String, Vec<(f64, f64, String)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment
                .strip_prefix("TYPE ")
                .or_else(|| comment.strip_prefix("HELP "))
            {
                let mut parts = decl.split(' ');
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: empty TYPE/HELP"))?;
                lint_name(name, "metric", lineno)?;
                if comment.starts_with("TYPE") {
                    let kind = parts.next().unwrap_or("");
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {lineno}: unknown TYPE kind {kind:?}"));
                    }
                    if parts.next().is_some() {
                        return Err(format!("line {lineno}: trailing text after TYPE"));
                    }
                }
            }
            continue;
        }
        // Sample line.
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {lineno}: sample has no value"))?;
        let name = &line[..name_end];
        lint_name(name, "metric", lineno)?;
        let (labels, rest) = if line[name_end..].starts_with('{') {
            lint_labels(&line[name_end + 1..], lineno)?
        } else {
            (Vec::new(), &line[name_end..])
        };
        let rest = rest
            .strip_prefix(' ')
            .ok_or_else(|| format!("line {lineno}: expected space before value"))?;
        let mut tokens = rest.split(' ');
        let value = lint_value(
            tokens
                .next()
                .ok_or_else(|| format!("line {lineno}: sample has no value"))?,
            lineno,
        )?;
        if let Some(ts) = tokens.next() {
            // Optional millisecond timestamp.
            ts.parse::<i64>()
                .map_err(|_| format!("line {lineno}: bad timestamp {ts:?}"))?;
        }
        if tokens.next().is_some() {
            return Err(format!("line {lineno}: trailing text after sample"));
        }
        samples += 1;
        let group_key = |base: &str, skip: Option<&str>| {
            let mut key = base.to_string();
            let mut rest: Vec<String> = labels
                .iter()
                .filter(|(k, _)| Some(k.as_str()) != skip)
                .map(|(k, v)| format!("{k}={v:?}"))
                .collect();
            rest.sort();
            for l in rest {
                key.push('\u{1}');
                key.push_str(&l);
            }
            key
        };
        if let Some(base) = name.strip_suffix("_bucket") {
            let le_raw = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("line {lineno}: _bucket sample without le label"))?;
            let le = lint_value(&le_raw, lineno)
                .map_err(|_| format!("line {lineno}: unparseable le {le_raw:?}"))?;
            buckets
                .entry(group_key(base, Some("le")))
                .or_default()
                .push((le, value, le_raw));
        } else if let Some(base) = name.strip_suffix("_count") {
            counts.insert(group_key(base, None), value);
        }
    }
    for (key, series) in &buckets {
        let base = key.split('\u{1}').next().unwrap_or(key);
        let mut sorted = series.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        if sorted.last().is_none_or(|(le, _, _)| !le.is_infinite()) {
            return Err(format!("histogram {base}: missing le=\"+Inf\" bucket"));
        }
        let mut last = f64::NEG_INFINITY;
        for (le, cum, le_raw) in &sorted {
            if *cum < last {
                return Err(format!(
                    "histogram {base}: bucket le=\"{le_raw}\" count {cum} below previous {last} (not cumulative)"
                ));
            }
            last = *cum;
            let _ = le;
        }
        if let Some(&total) = counts.get(key) {
            let inf = sorted.last().map(|(_, c, _)| *c).unwrap_or(0.0);
            if total != inf {
                return Err(format!(
                    "histogram {base}: _count {total} disagrees with +Inf bucket {inf}"
                ));
            }
        }
    }
    Ok(samples)
}

/// Write `contents` atomically: to a `.tmp.<pid>` sibling first, then
/// rename over `path` (the checkpoint pattern — readers never observe a
/// partial file).
///
/// # Errors
/// Any I/O error from the write or the rename; the temp file is removed
/// if the rename fails.
pub fn write_atomic(path: impl AsRef<Path>, contents: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            dropped_events: 2,
            ..MetricsSnapshot::default()
        };
        snap.spans.push(SpanRecord {
            name: "pair_sweep".into(),
            id: 7,
            parent: 3,
            trace: 1,
            thread: 2,
            depth: 0,
            start_us: 10,
            duration_us: 340,
            fields: vec![
                ("pairs".into(), FieldValue::U64(12)),
                ("ratio".into(), FieldValue::F64(2.5)),
                ("net".into(), FieldValue::Str("Level3".into())),
            ],
        });
        snap.traces.insert(
            1,
            TraceStats {
                label: "route".into(),
                counters: [("risk_sssp_runs".to_string(), 3u64)].into_iter().collect(),
            },
        );
        snap.counters.insert("dijkstra_pops".into(), 8123);
        snap.gauges.insert("heap_peak".into(), 41.0);
        let mut h = Histogram::new(vec![0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.5);
        snap.histograms.insert("write_seconds".into(), h);
        snap.span_stats.insert(
            "pair_sweep".into(),
            SpanStat {
                count: 1,
                total_us: 340,
            },
        );
        snap
    }

    #[test]
    fn jsonl_round_trips_through_riskroute_json() {
        let snap = sample_snapshot();
        let text = to_jsonl(&snap);
        let lines = parse_jsonl(&text).unwrap();
        let back = snapshot_from_lines(&lines);
        assert_eq!(back.dropped_events, 2);
        assert_eq!(back.spans, snap.spans);
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
        assert_eq!(back.span_stats, snap.span_stats);
        assert_eq!(back.traces, snap.traces);
    }

    #[test]
    fn parse_accepts_spans_without_ids() {
        // Exports written before spans carried id/parent/trace/thread.
        let lines = parse_jsonl(
            r#"{"type":"span","name":"old","depth":0,"start_us":1,"dur_us":2,"fields":[]}"#,
        )
        .unwrap();
        let ObsLine::Span(s) = &lines[0] else {
            panic!("not a span: {lines:?}");
        };
        assert_eq!((s.id, s.parent, s.trace, s.thread), (0, 0, 0, 0));
    }

    #[test]
    fn parse_rejects_garbage_and_unknown_types() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"type\":\"mystery\"}").is_err());
        assert!(parse_jsonl("{\"no_type\":1}").is_err());
        // Blank lines are fine.
        assert_eq!(parse_jsonl("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn prometheus_escaping_and_sanitizing() {
        assert_eq!(sanitize_metric_name("a.b-c d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(
            escape_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd"
        );
    }

    #[test]
    fn prometheus_renders_all_families() {
        let mut snap = sample_snapshot();
        snap.span_stats.insert(
            "odd \"name\"\\path".into(),
            SpanStat {
                count: 3,
                total_us: 3_000_000,
            },
        );
        let text = to_prometheus(&snap);
        assert!(text.contains("# TYPE riskroute_dijkstra_pops counter"));
        assert!(text.contains("riskroute_dijkstra_pops 8123"));
        assert!(text.contains("# TYPE riskroute_heap_peak gauge"));
        assert!(text.contains("riskroute_write_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("riskroute_write_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("riskroute_write_seconds_count 2"));
        assert!(text.contains("riskroute_span_seconds_sum{span=\"pair_sweep\"} 0.00034"));
        assert!(text.contains("riskroute_span_seconds_count{span=\"odd \\\"name\\\"\\\\path\"} 3"));
    }

    #[test]
    fn prometheus_always_exports_the_drop_count() {
        let empty = MetricsSnapshot::default();
        assert!(to_prometheus(&empty).contains("riskroute_obs_spans_dropped 0"));
        assert!(to_prometheus(&sample_snapshot()).contains("riskroute_obs_spans_dropped 2"));
    }

    #[test]
    fn prometheus_exports_zero_observation_histograms_completely() {
        let mut snap = MetricsSnapshot::default();
        snap.histograms
            .insert("idle_seconds".into(), Histogram::new(vec![0.001, 0.01]));
        let text = to_prometheus(&snap);
        assert!(text.contains("riskroute_idle_seconds_bucket{le=\"0.001\"} 0"));
        assert!(text.contains("riskroute_idle_seconds_bucket{le=\"0.01\"} 0"));
        assert!(text.contains("riskroute_idle_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("riskroute_idle_seconds_sum 0"));
        assert!(text.contains("riskroute_idle_seconds_count 0"));
        // 5 histogram lines + the always-present drop counter.
        assert_eq!(lint_prometheus(&text).unwrap(), 6);
    }

    #[test]
    fn chrome_trace_exports_complete_events_and_process_names() {
        let text = to_chrome_trace(&sample_snapshot());
        let doc = riskroute_json::parse(&text).unwrap();
        let events = doc.field("traceEvents").unwrap().as_arr().unwrap();
        let meta = &events[0];
        assert_eq!(meta.field("ph").unwrap().as_str().unwrap(), "M");
        assert_eq!(
            meta.field("args")
                .unwrap()
                .field("name")
                .unwrap()
                .as_str()
                .unwrap(),
            "trace 1: route"
        );
        let span = &events[1];
        assert_eq!(span.field("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(span.field("name").unwrap().as_str().unwrap(), "pair_sweep");
        assert_eq!(span.field("ts").unwrap().as_usize().unwrap(), 10);
        assert_eq!(span.field("dur").unwrap().as_usize().unwrap(), 340);
        assert_eq!(span.field("pid").unwrap().as_usize().unwrap(), 1);
        assert_eq!(span.field("tid").unwrap().as_usize().unwrap(), 2);
        let args = span.field("args").unwrap();
        assert_eq!(args.field("span_id").unwrap().as_usize().unwrap(), 7);
        assert_eq!(args.field("parent_id").unwrap().as_usize().unwrap(), 3);
        assert_eq!(args.field("net").unwrap().as_str().unwrap(), "Level3");
    }

    #[test]
    fn lint_accepts_everything_this_exporter_writes() {
        let mut snap = sample_snapshot();
        snap.span_stats.insert(
            "odd \"name\"\\path".into(),
            SpanStat {
                count: 3,
                total_us: 3_000_000,
            },
        );
        let text = to_prometheus(&snap);
        let samples = lint_prometheus(&text).unwrap();
        assert!(samples >= 10, "{samples}");
    }

    #[test]
    fn lint_rejects_malformed_lines() {
        for (doc, why) in [
            ("9bad_name 1\n", "digit-prefixed name"),
            ("ok{le=0.1} 1\n", "unquoted label value"),
            ("ok{le=\"0.1} 1\n", "unterminated label value"),
            ("ok{le=\"0.1\"} nope\n", "unparseable value"),
            ("ok 1 2 3\n", "trailing text"),
            ("ok{bad-key=\"1\"} 1\n", "bad label key"),
            ("# TYPE ok sideways\n", "unknown TYPE kind"),
            (
                "h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 3\n",
                "non-cumulative buckets",
            ),
            ("h_bucket{le=\"0.1\"} 5\n", "missing +Inf"),
            ("h_bucket{x=\"1\"} 5\n", "bucket without le"),
            (
                "h_bucket{le=\"+Inf\"} 3\nh_count 4\n",
                "_count disagrees with +Inf",
            ),
        ] {
            assert!(lint_prometheus(doc).is_err(), "lint accepted {why}: {doc:?}");
        }
        // A well-formed document with comments and timestamps passes.
        let ok = "# free comment\n# HELP h help text here\n# TYPE h histogram\n\
                  h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2 1700000000000\n\
                  h_sum 0.5\nh_count 2\n";
        assert_eq!(lint_prometheus(ok).unwrap(), 4);
    }

    #[test]
    fn cumulative_bucket_counts_are_monotone() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let mut last = 0;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("riskroute-obs-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        write_atomic(&path, "one\n").unwrap();
        write_atomic(&path, "two\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two\n");
        // No stray temp files.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty());
    }
}
