//! Snapshot exporters: JSON Lines (via `riskroute-json`) and the
//! Prometheus text-exposition format, plus atomic file writes.
//!
//! # JSONL layout
//!
//! One self-describing object per line, discriminated by `"type"`:
//!
//! ```text
//! {"type":"meta","dropped_events":0}
//! {"type":"span","name":"pair_sweep","depth":0,"start_us":12,"dur_us":340,
//!  "fields":[["pairs",12],["net","Level3"]]}
//! {"type":"counter","name":"dijkstra_pops","value":8123}
//! {"type":"gauge","name":"dijkstra_heap_peak","value":41}
//! {"type":"histogram","name":"checkpoint_write_seconds","sum":0.01,"count":3,
//!  "bounds":[...],"counts":[...]}
//! ```
//!
//! Numbers travel as JSON doubles, so integer values above 2^53 lose
//! precision; nothing in this pipeline approaches that.

use crate::{FieldValue, Histogram, MetricsSnapshot, SpanRecord, SpanStat};
use riskroute_json::{Json, JsonError};
use std::fmt::Write as _;
use std::path::Path;

/// One parsed line of a JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsLine {
    /// Export header: events discarded by the buffer cap.
    Meta {
        /// Count of discarded span events.
        dropped_events: u64,
    },
    /// A span event.
    Span(SpanRecord),
    /// A counter reading.
    Counter {
        /// Counter name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// A gauge reading.
    Gauge {
        /// Gauge name.
        name: String,
        /// Final value.
        value: f64,
    },
    /// A histogram reading.
    Histogram {
        /// Histogram name.
        name: String,
        /// The exported histogram.
        histogram: Histogram,
    },
}

fn field_value_to_json(v: &FieldValue) -> Json {
    match v {
        FieldValue::U64(n) => Json::Num(*n as f64),
        FieldValue::F64(x) => Json::Num(*x),
        FieldValue::Str(s) => Json::Str(s.clone()),
    }
}

fn field_value_from_json(v: &Json) -> Result<FieldValue, JsonError> {
    match v {
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
            Ok(FieldValue::U64(*n as u64))
        }
        Json::Num(n) => Ok(FieldValue::F64(*n)),
        Json::Str(s) => Ok(FieldValue::Str(s.clone())),
        other => Err(JsonError::Shape(format!(
            "expected number or string field value, got {other:?}"
        ))),
    }
}

fn span_to_json(s: &SpanRecord) -> Json {
    // Fields travel as [key, value] pairs (not an object) so insertion
    // order survives the round trip.
    let fields: Vec<Json> = s
        .fields
        .iter()
        .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), field_value_to_json(v)]))
        .collect();
    Json::obj([
        ("type", Json::Str("span".into())),
        ("name", Json::Str(s.name.clone())),
        ("depth", Json::Num(f64::from(s.depth))),
        ("start_us", Json::Num(s.start_us as f64)),
        ("dur_us", Json::Num(s.duration_us as f64)),
        ("fields", Json::Arr(fields)),
    ])
}

fn num_arr<T: Copy + Into<f64>>(xs: &[T]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x.into())).collect())
}

/// Render a snapshot as JSON Lines.
pub fn to_jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let meta = Json::obj([
        ("type", Json::Str("meta".into())),
        ("dropped_events", Json::Num(snap.dropped_events as f64)),
    ]);
    let _ = writeln!(out, "{}", meta.to_string_compact());
    for s in &snap.spans {
        let _ = writeln!(out, "{}", span_to_json(s).to_string_compact());
    }
    for (name, &value) in &snap.counters {
        let line = Json::obj([
            ("type", Json::Str("counter".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(value as f64)),
        ]);
        let _ = writeln!(out, "{}", line.to_string_compact());
    }
    for (name, &value) in &snap.gauges {
        let line = Json::obj([
            ("type", Json::Str("gauge".into())),
            ("name", Json::Str(name.clone())),
            ("value", Json::Num(value)),
        ]);
        let _ = writeln!(out, "{}", line.to_string_compact());
    }
    for (name, h) in &snap.histograms {
        let counts: Vec<f64> = h.counts().iter().map(|&c| c as f64).collect();
        let line = Json::obj([
            ("type", Json::Str("histogram".into())),
            ("name", Json::Str(name.clone())),
            ("sum", Json::Num(h.sum())),
            ("count", Json::Num(h.count() as f64)),
            ("bounds", num_arr(h.bounds())),
            ("counts", num_arr(&counts)),
        ]);
        let _ = writeln!(out, "{}", line.to_string_compact());
    }
    out
}

fn parse_span(v: &Json) -> Result<SpanRecord, JsonError> {
    let mut fields = Vec::new();
    for pair in v.field("fields")?.as_arr()? {
        let [k, fv] = pair.as_arr()? else {
            return Err(JsonError::Shape("span field is not a [key, value] pair".into()));
        };
        fields.push((k.as_str()?.to_string(), field_value_from_json(fv)?));
    }
    Ok(SpanRecord {
        name: v.field("name")?.as_str()?.to_string(),
        depth: v.field("depth")?.as_usize()? as u32,
        start_us: v.field("start_us")?.as_usize()? as u64,
        duration_us: v.field("dur_us")?.as_usize()? as u64,
        fields,
    })
}

fn parse_histogram(v: &Json) -> Result<(String, Histogram), JsonError> {
    let name = v.field("name")?.as_str()?.to_string();
    let bounds = v
        .field("bounds")?
        .as_arr()?
        .iter()
        .map(Json::as_f64)
        .collect::<Result<Vec<f64>, _>>()?;
    let counts = v
        .field("counts")?
        .as_arr()?
        .iter()
        .map(|c| c.as_usize().map(|n| n as u64))
        .collect::<Result<Vec<u64>, _>>()?;
    let sum = v.field("sum")?.as_f64()?;
    let histogram = Histogram::from_parts(bounds, counts, sum).ok_or_else(|| {
        JsonError::Shape(format!("histogram {name:?}: counts do not match bounds"))
    })?;
    Ok((name, histogram))
}

/// Parse a JSONL export back into typed lines. Blank lines are skipped;
/// any malformed line fails the whole parse (exports are machine-written).
pub fn parse_jsonl(text: &str) -> Result<Vec<ObsLine>, JsonError> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let v = riskroute_json::parse(line)?;
        let kind = v.field("type")?.as_str()?.to_string();
        out.push(match kind.as_str() {
            "meta" => ObsLine::Meta {
                dropped_events: v.field("dropped_events")?.as_usize()? as u64,
            },
            "span" => ObsLine::Span(parse_span(&v)?),
            "counter" => ObsLine::Counter {
                name: v.field("name")?.as_str()?.to_string(),
                value: v.field("value")?.as_usize()? as u64,
            },
            "gauge" => ObsLine::Gauge {
                name: v.field("name")?.as_str()?.to_string(),
                value: v.field("value")?.as_f64()?,
            },
            "histogram" => {
                let (name, histogram) = parse_histogram(&v)?;
                ObsLine::Histogram { name, histogram }
            }
            other => {
                return Err(JsonError::Shape(format!("unknown line type {other:?}")));
            }
        });
    }
    Ok(out)
}

/// Reassemble a [`MetricsSnapshot`] from parsed JSONL lines (span_stats
/// are rebuilt from the span events, so they reflect only buffered spans).
pub fn snapshot_from_lines(lines: &[ObsLine]) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for line in lines {
        match line {
            ObsLine::Meta { dropped_events } => snap.dropped_events = *dropped_events,
            ObsLine::Span(s) => {
                let stat = snap.span_stats.entry(s.name.clone()).or_insert(SpanStat {
                    count: 0,
                    total_us: 0,
                });
                stat.count += 1;
                stat.total_us += s.duration_us;
                snap.spans.push(s.clone());
            }
            ObsLine::Counter { name, value } => {
                snap.counters.insert(name.clone(), *value);
            }
            ObsLine::Gauge { name, value } => {
                snap.gauges.insert(name.clone(), *value);
            }
            ObsLine::Histogram { name, histogram } => {
                snap.histograms.insert(name.clone(), histogram.clone());
            }
        }
    }
    snap
}

/// Restrict a metric name to the Prometheus charset `[a-zA-Z0-9_:]`,
/// mapping anything else to `_` (and prefixing `_` if it starts with a
/// digit).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok || c.is_ascii_digit() { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render a snapshot in the Prometheus text-exposition format. All series
/// carry the `riskroute_` prefix; per-span latency totals become a
/// `riskroute_span_seconds` summary with a `span` label.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, &value) in &snap.counters {
        let n = format!("riskroute_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, &value) in &snap.gauges {
        let n = format!("riskroute_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, h) in &snap.histograms {
        let n = format!("riskroute_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {n} histogram");
        let cumulative = h.cumulative();
        for (bound, cum) in h.bounds().iter().zip(&cumulative) {
            let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cum}");
        }
        let total = cumulative.last().copied().unwrap_or(0);
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {total}");
        let _ = writeln!(out, "{n}_sum {}", h.sum());
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    if !snap.span_stats.is_empty() {
        let _ = writeln!(out, "# TYPE riskroute_span_seconds summary");
        for (name, stat) in &snap.span_stats {
            let label = escape_label_value(name);
            let _ = writeln!(
                out,
                "riskroute_span_seconds_sum{{span=\"{label}\"}} {}",
                stat.total_us as f64 / 1e6
            );
            let _ = writeln!(
                out,
                "riskroute_span_seconds_count{{span=\"{label}\"}} {}",
                stat.count
            );
        }
    }
    out
}

/// Write `contents` atomically: to a `.tmp.<pid>` sibling first, then
/// rename over `path` (the checkpoint pattern — readers never observe a
/// partial file).
///
/// # Errors
/// Any I/O error from the write or the rename; the temp file is removed
/// if the rename fails.
pub fn write_atomic(path: impl AsRef<Path>, contents: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            dropped_events: 2,
            ..MetricsSnapshot::default()
        };
        snap.spans.push(SpanRecord {
            name: "pair_sweep".into(),
            depth: 0,
            start_us: 10,
            duration_us: 340,
            fields: vec![
                ("pairs".into(), FieldValue::U64(12)),
                ("ratio".into(), FieldValue::F64(2.5)),
                ("net".into(), FieldValue::Str("Level3".into())),
            ],
        });
        snap.counters.insert("dijkstra_pops".into(), 8123);
        snap.gauges.insert("heap_peak".into(), 41.0);
        let mut h = Histogram::new(vec![0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.5);
        snap.histograms.insert("write_seconds".into(), h);
        snap.span_stats.insert(
            "pair_sweep".into(),
            SpanStat {
                count: 1,
                total_us: 340,
            },
        );
        snap
    }

    #[test]
    fn jsonl_round_trips_through_riskroute_json() {
        let snap = sample_snapshot();
        let text = to_jsonl(&snap);
        let lines = parse_jsonl(&text).unwrap();
        let back = snapshot_from_lines(&lines);
        assert_eq!(back.dropped_events, 2);
        assert_eq!(back.spans, snap.spans);
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
        assert_eq!(back.span_stats, snap.span_stats);
    }

    #[test]
    fn parse_rejects_garbage_and_unknown_types() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"type\":\"mystery\"}").is_err());
        assert!(parse_jsonl("{\"no_type\":1}").is_err());
        // Blank lines are fine.
        assert_eq!(parse_jsonl("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn prometheus_escaping_and_sanitizing() {
        assert_eq!(sanitize_metric_name("a.b-c d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(
            escape_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd"
        );
    }

    #[test]
    fn prometheus_renders_all_families() {
        let mut snap = sample_snapshot();
        snap.span_stats.insert(
            "odd \"name\"\\path".into(),
            SpanStat {
                count: 3,
                total_us: 3_000_000,
            },
        );
        let text = to_prometheus(&snap);
        assert!(text.contains("# TYPE riskroute_dijkstra_pops counter"));
        assert!(text.contains("riskroute_dijkstra_pops 8123"));
        assert!(text.contains("# TYPE riskroute_heap_peak gauge"));
        assert!(text.contains("riskroute_write_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("riskroute_write_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("riskroute_write_seconds_count 2"));
        assert!(text.contains("riskroute_span_seconds_sum{span=\"pair_sweep\"} 0.00034"));
        assert!(text.contains("riskroute_span_seconds_count{span=\"odd \\\"name\\\"\\\\path\"} 3"));
    }

    #[test]
    fn cumulative_bucket_counts_are_monotone() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let mut last = 0;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("riskroute-obs-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        write_atomic(&path, "one\n").unwrap();
        write_atomic(&path, "two\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two\n");
        // No stray temp files.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty());
    }
}
