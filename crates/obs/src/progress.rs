//! Stderr progress heartbeats with fraction-based ETA.

use std::time::{Duration, Instant};

/// A rate-limited stderr progress reporter. Feed it `done` / `total`
/// figures as work advances (the CLI passes stage counts and
/// `WorkBudget::work_done`); at most one line per interval is printed,
/// with elapsed time and an ETA extrapolated from the completed fraction.
#[derive(Debug)]
pub struct Heartbeat {
    label: String,
    started: Instant,
    last_emit: Option<Instant>,
    interval: Duration,
}

impl Heartbeat {
    /// A heartbeat with the default 1 s emission interval.
    pub fn new(label: impl Into<String>) -> Heartbeat {
        Heartbeat::with_interval(label, Duration::from_secs(1))
    }

    /// A heartbeat emitting at most once per `interval` (zero = every
    /// tick).
    pub fn with_interval(label: impl Into<String>, interval: Duration) -> Heartbeat {
        Heartbeat {
            label: label.into(),
            started: Instant::now(),
            last_emit: None,
            interval,
        }
    }

    /// Render one progress line for the given elapsed time (separated
    /// from the clock for testability).
    pub fn render_at(&self, elapsed: Duration, done: u64, total: Option<u64>, extra: &str) -> String {
        let mut line = format!("[{}] {done}", self.label);
        if let Some(total) = total.filter(|&t| t > 0) {
            let frac = done as f64 / total as f64;
            line.push_str(&format!("/{total} ({:.1}%)", 100.0 * frac));
            if done > 0 && done < total {
                let eta = elapsed.as_secs_f64() * (1.0 - frac) / frac;
                line.push_str(&format!(" eta {eta:.1}s"));
            }
        }
        line.push_str(&format!(" elapsed {:.1}s", elapsed.as_secs_f64()));
        if !extra.is_empty() {
            line.push(' ');
            line.push_str(extra);
        }
        line
    }

    /// Report progress; prints to stderr when the interval has elapsed
    /// since the last emission. Returns the line when it printed.
    pub fn tick(&mut self, done: u64, total: Option<u64>, extra: &str) -> Option<String> {
        let now = Instant::now();
        if self
            .last_emit
            .is_some_and(|last| now.duration_since(last) < self.interval)
        {
            return None;
        }
        self.last_emit = Some(now);
        let line = self.render_at(now.duration_since(self.started), done, total, extra);
        eprintln!("{line}");
        Some(line)
    }

    /// Print a final unconditional line.
    pub fn finish(&mut self, done: u64, total: Option<u64>, extra: &str) -> String {
        self.last_emit = Some(Instant::now());
        let line = self.render_at(self.started.elapsed(), done, total, extra);
        eprintln!("{line}");
        line
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn render_includes_fraction_and_eta() {
        let hb = Heartbeat::new("provision");
        let line = hb.render_at(Duration::from_secs(10), 2, Some(10), "work 200");
        assert!(line.starts_with("[provision] 2/10 (20.0%)"));
        // 10 s for 20% → 40 s remaining.
        assert!(line.contains("eta 40.0s"), "{line}");
        assert!(line.contains("elapsed 10.0s"));
        assert!(line.ends_with("work 200"));
    }

    #[test]
    fn render_without_total_or_at_completion_omits_eta() {
        let hb = Heartbeat::new("replay");
        let open_ended = hb.render_at(Duration::from_secs(1), 5, None, "");
        assert!(!open_ended.contains("eta"));
        assert_eq!(open_ended, "[replay] 5 elapsed 1.0s");
        let finished = hb.render_at(Duration::from_secs(1), 10, Some(10), "");
        assert!(!finished.contains("eta"));
        assert!(finished.contains("(100.0%)"));
    }

    #[test]
    fn tick_rate_limits_and_finish_always_prints() {
        let mut hb = Heartbeat::with_interval("x", Duration::from_secs(3600));
        assert!(hb.tick(1, Some(2), "").is_some());
        assert!(hb.tick(2, Some(2), "").is_none(), "inside the interval");
        assert!(!hb.finish(2, Some(2), "done").is_empty());
    }

    #[test]
    fn zero_interval_emits_every_tick() {
        let mut hb = Heartbeat::with_interval("y", Duration::ZERO);
        assert!(hb.tick(1, None, "").is_some());
        assert!(hb.tick(2, None, "").is_some());
    }
}
