//! Fixed-bucket histograms with log-spaced bounds.

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper limits
/// (`le` semantics, as in Prometheus); one extra overflow bucket catches
/// everything above the last bound. Observation cost is a binary search
/// over a small, fixed bound set — cheap enough for hot loops.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Build from explicit bucket upper bounds. Non-finite bounds are
    /// discarded; the rest are sorted and deduplicated.
    pub fn new(mut bounds: Vec<f64>) -> Histogram {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            sum: 0.0,
            count: 0,
        }
    }

    /// `buckets` log-spaced upper bounds: `first, first·ratio,
    /// first·ratio², …`.
    pub fn log_spaced(first: f64, ratio: f64, buckets: usize) -> Histogram {
        let mut bounds = Vec::with_capacity(buckets);
        let mut b = first;
        for _ in 0..buckets {
            bounds.push(b);
            b *= ratio;
        }
        Histogram::new(bounds)
    }

    /// The default latency buckets: powers of two from 1 µs to ~2 s
    /// (seconds).
    pub fn latency_default() -> Histogram {
        Histogram::log_spaced(1e-6, 2.0, 22)
    }

    /// Default byte-size buckets: powers of four from 256 B to ~1 GiB.
    pub fn bytes_default() -> Histogram {
        Histogram::log_spaced(256.0, 4.0, 12)
    }

    /// Latency buckets for values recorded in **microseconds** rather than
    /// seconds: powers of two from 1 µs to ~8 s.
    pub fn micros_default() -> Histogram {
        Histogram::log_spaced(1.0, 2.0, 24)
    }

    /// The bucket `v` falls into: the first bound with `v <= bound`, or
    /// the overflow index `bounds.len()`.
    pub fn bucket_index(&self, v: f64) -> usize {
        self.bounds.partition_point(|&b| b < v)
    }

    /// Record one observation. NaN is ignored (it belongs to no bucket).
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.bucket_index(v);
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Cumulative per-bucket counts (Prometheus `_bucket` semantics,
    /// including the final `+Inf` entry).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut running = 0;
        self.counts
            .iter()
            .map(|&c| {
                running += c;
                running
            })
            .collect()
    }

    /// Rebuild from exported parts (JSONL import). `None` when the counts
    /// length does not match the bounds.
    pub fn from_parts(bounds: Vec<f64>, counts: Vec<u64>, sum: f64) -> Option<Histogram> {
        if counts.len() != bounds.len() + 1 {
            return None;
        }
        let count = counts.iter().sum();
        Some(Histogram {
            bounds,
            counts,
            sum,
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn log_spaced_bounds_are_geometric() {
        let h = Histogram::log_spaced(1e-6, 2.0, 4);
        assert_eq!(h.bounds(), &[1e-6, 2e-6, 4e-6, 8e-6]);
        assert_eq!(h.counts().len(), 5);
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(vec![1.0, 10.0, 100.0]);
        assert_eq!(h.bucket_index(0.5), 0);
        assert_eq!(h.bucket_index(1.0), 0, "le: exactly on a bound stays in it");
        assert_eq!(h.bucket_index(1.0000001), 1);
        assert_eq!(h.bucket_index(10.0), 1);
        assert_eq!(h.bucket_index(100.0), 2);
        assert_eq!(h.bucket_index(100.1), 3, "overflow bucket");
        assert_eq!(h.bucket_index(f64::INFINITY), 3);
    }

    #[test]
    fn observe_accumulates_and_skips_nan() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(1.5);
        h.observe(9.0);
        h.observe(f64::NAN);
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 12.5).abs() < 1e-12);
        assert_eq!(h.cumulative(), vec![1, 3, 4]);
    }

    #[test]
    fn unsorted_and_nonfinite_bounds_are_sanitized() {
        let h = Histogram::new(vec![10.0, f64::NAN, 1.0, f64::INFINITY, 10.0]);
        assert_eq!(h.bounds(), &[1.0, 10.0]);
    }

    #[test]
    fn from_parts_validates_lengths() {
        assert!(Histogram::from_parts(vec![1.0], vec![1, 2], 3.0).is_some());
        assert!(Histogram::from_parts(vec![1.0], vec![1], 3.0).is_none());
        let h = Histogram::from_parts(vec![1.0, 2.0], vec![1, 2, 3], 9.0).unwrap();
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn defaults_cover_realistic_ranges() {
        let lat = Histogram::latency_default();
        assert!(lat.bounds().first().copied().unwrap() <= 1e-6);
        assert!(lat.bounds().last().copied().unwrap() >= 1.0);
        let bytes = Histogram::bytes_default();
        assert!(bytes.bounds().last().copied().unwrap() >= 1e9);
        let micros = Histogram::micros_default();
        assert!(micros.bounds().first().copied().unwrap() <= 1.0);
        assert!(micros.bounds().last().copied().unwrap() >= 1e6);
    }
}
