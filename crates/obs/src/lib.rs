//! Process-global observability for the RiskRoute pipeline: structured
//! span events, a metrics registry, and text exporters — with **zero
//! external dependencies**, consistent with `riskroute-rng` /
//! `riskroute-json`.
//!
//! # Model
//!
//! A single process-global [`Collector`]-style registry holds everything:
//!
//! - **Spans** ([`Span`], [`span!`]): scoped timers with a monotonic-clock
//!   duration, key/value fields, and a per-thread nesting depth. Dropping
//!   the guard records the event.
//! - **Counters / gauges / histograms** ([`counter_add`], [`gauge_set`],
//!   [`gauge_max`], [`histogram_observe`]): named metrics cheap enough for
//!   hot loops. Histograms use fixed log-spaced buckets
//!   ([`Histogram::log_spaced`]).
//!
//! # Overhead contract
//!
//! When collection is disabled (the default), every entry point reduces to
//! **one relaxed atomic load and a branch** — no locks, no allocation, no
//! clock reads. Hot loops that record per-iteration counts should
//! accumulate plain locals and publish once at the end behind
//! [`is_enabled`], which is stronger than the contract requires.
//!
//! # Exporters
//!
//! [`export::to_jsonl`] writes the full snapshot as JSON Lines (via
//! `riskroute-json`) and [`export::to_prometheus`] renders the Prometheus
//! text-exposition format; both are written atomically by
//! [`export::write_atomic`] (temp + rename, the checkpoint pattern).
//!
//! ```
//! riskroute_obs::enable();
//! {
//!     let mut s = riskroute_obs::span!("demo_work", items = 3u64);
//!     s.field("phase", "warm");
//!     riskroute_obs::counter_add("demo_items", 3);
//! }
//! let snap = riskroute_obs::snapshot();
//! assert_eq!(snap.counters["demo_items"], 3);
//! assert_eq!(snap.span_stats["demo_work"].count, 1);
//! riskroute_obs::disable();
//! riskroute_obs::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod export;
mod histogram;
pub mod progress;
pub mod scope;
pub mod summary;

pub use histogram::Histogram;
pub use progress::Heartbeat;
pub use scope::{trace_counters, ObsScope, ScopeGuard, TraceStats};
pub use summary::SpanSummary;

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Cap on buffered span events; beyond it events are counted as dropped
/// (see [`MetricsSnapshot::dropped_events`]) rather than grown without
/// bound.
pub const MAX_EVENTS: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

static EVENTS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());
static HISTOGRAMS: Mutex<BTreeMap<String, Histogram>> = Mutex::new(BTreeMap::new());
static SPAN_STATS: Mutex<BTreeMap<String, SpanStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// A recorded metric or span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, ids). Values above 2^53 lose precision
    /// through the JSONL round-trip.
    U64(u64),
    /// A float (costs, ratios).
    F64(f64),
    /// A label.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One completed span event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Process-unique span ID (for parent/child links; 0 never assigned).
    pub id: u64,
    /// ID of the enclosing span when this span opened (0 = root). Parents
    /// link across threads: a worker inherits the dispatching span via
    /// [`ObsScope`].
    pub parent: u64,
    /// Trace this span is attributed to (0 = no active trace).
    pub trace: u64,
    /// Stable small ordinal of the recording thread (1-based).
    pub thread: u64,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: u32,
    /// Start time in microseconds since the collector epoch.
    pub start_us: u64,
    /// Monotonic-clock duration in microseconds.
    pub duration_us: u64,
    /// Key/value fields attached via [`Span::field`] / [`span!`].
    pub fields: Vec<(String, FieldValue)>,
}

/// Aggregate per-span-name latency totals (maintained even when the event
/// buffer overflows, so exports stay accurate on long runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Completed spans under this name.
    pub count: u64,
    /// Summed duration in microseconds.
    pub total_us: u64,
}

/// A point-in-time copy of everything the collector holds.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Named monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Named gauges (last or max value, per the call site).
    pub gauges: BTreeMap<String, f64>,
    /// Named fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-span-name aggregate latency totals.
    pub span_stats: BTreeMap<String, SpanStat>,
    /// Buffered span events (capped at [`MAX_EVENTS`]).
    pub spans: Vec<SpanRecord>,
    /// Per-trace attribution tables keyed by trace ID (capped at
    /// [`scope::MAX_TRACES`], oldest evicted).
    pub traces: BTreeMap<u64, TraceStats>,
    /// Span events discarded because the buffer was full.
    pub dropped_events: u64,
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Metric state stays usable even if a panicking thread poisoned it:
    // everything here is a plain value update with no invariants to break.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Turn collection on. Idempotent; fixes the epoch for [`now_us`] on first
/// call.
pub fn enable() {
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn collection off. Already-buffered data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether collection is on — the one branch hot paths pay when disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Discard all buffered events and metrics (collection state is
/// unchanged).
pub fn reset() {
    lock(&EVENTS).clear();
    lock(&COUNTERS).clear();
    lock(&GAUGES).clear();
    lock(&HISTOGRAMS).clear();
    lock(&SPAN_STATS).clear();
    scope::reset_traces();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Microseconds since the collector epoch (first [`enable`] call).
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Add `n` to the named counter. While an [`ObsScope`] is installed on
/// this thread, the delta is also attributed to its trace.
pub fn counter_add(name: &str, n: u64) {
    if !is_enabled() {
        return;
    }
    {
        let mut map = lock(&COUNTERS);
        if let Some(v) = map.get_mut(name) {
            *v += n;
        } else {
            map.insert(name.to_string(), n);
        }
    }
    scope::attribute_counter(name, n);
}

/// Current value of the named counter (0 when never touched).
pub fn counter_value(name: &str) -> u64 {
    lock(&COUNTERS).get(name).copied().unwrap_or(0)
}

/// Set the named gauge.
pub fn gauge_set(name: &str, v: f64) {
    if !is_enabled() {
        return;
    }
    lock(&GAUGES).insert(name.to_string(), v);
}

/// Raise the named gauge to `v` if `v` exceeds its current value
/// (high-water marks like heap peaks).
pub fn gauge_max(name: &str, v: f64) {
    if !is_enabled() {
        return;
    }
    let mut map = lock(&GAUGES);
    match map.get_mut(name) {
        Some(cur) if *cur >= v => {}
        Some(cur) => *cur = v,
        None => {
            map.insert(name.to_string(), v);
        }
    }
}

/// Current value of the named gauge.
pub fn gauge_value(name: &str) -> Option<f64> {
    lock(&GAUGES).get(name).copied()
}

/// Record `v` into the named histogram, creating it with
/// [`Histogram::latency_default`] buckets on first use. NaN observations
/// are ignored.
pub fn histogram_observe(name: &str, v: f64) {
    if !is_enabled() {
        return;
    }
    let mut map = lock(&HISTOGRAMS);
    if let Some(h) = map.get_mut(name) {
        h.observe(v);
    } else {
        let mut h = Histogram::latency_default();
        h.observe(v);
        map.insert(name.to_string(), h);
    }
}

/// Pre-register the named histogram with custom buckets (e.g. byte sizes
/// instead of latencies). Overwrites any existing histogram of that name.
pub fn histogram_register(name: &str, histogram: Histogram) {
    if !is_enabled() {
        return;
    }
    lock(&HISTOGRAMS).insert(name.to_string(), histogram);
}

/// Copy out everything the collector currently holds.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: lock(&COUNTERS).clone(),
        gauges: lock(&GAUGES).clone(),
        histograms: lock(&HISTOGRAMS).clone(),
        span_stats: lock(&SPAN_STATS).clone(),
        spans: lock(&EVENTS).clone(),
        traces: scope::traces_snapshot(),
        dropped_events: DROPPED.load(Ordering::Relaxed),
    }
}

struct ActiveSpan {
    name: Cow<'static, str>,
    id: u64,
    parent: u64,
    trace: u64,
    start: Instant,
    start_us: u64,
    depth: u32,
    fields: Vec<(String, FieldValue)>,
}

/// A scoped timer; records a [`SpanRecord`] when dropped. Inert (a single
/// branch) when collection is disabled at entry.
pub struct Span {
    inner: Option<ActiveSpan>,
}

impl Span {
    /// Start a span. Prefer the [`span!`] macro for literal names.
    pub fn enter(name: impl Into<Cow<'static, str>>) -> Span {
        if !is_enabled() {
            return Span { inner: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        let id = scope::next_span_id();
        let (trace, parent) = scope::push_span(id);
        Span {
            inner: Some(ActiveSpan {
                name: name.into(),
                id,
                parent,
                trace,
                start: Instant::now(),
                start_us: now_us(),
                depth,
                fields: Vec::new(),
            }),
        }
    }

    /// Attach a key/value field (no-op on an inert span).
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key.to_string(), value.into()));
        }
    }

    /// Whether this span is recording.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let duration_us = inner.start.elapsed().as_micros() as u64;
        DEPTH.with(|d| d.set(inner.depth));
        scope::pop_span(inner.trace, inner.parent);
        {
            let mut stats = lock(&SPAN_STATS);
            if let Some(s) = stats.get_mut(inner.name.as_ref()) {
                s.count += 1;
                s.total_us += duration_us;
            } else {
                stats.insert(
                    inner.name.to_string(),
                    SpanStat {
                        count: 1,
                        total_us: duration_us,
                    },
                );
            }
        }
        let thread = scope::thread_ordinal();
        let mut events = lock(&EVENTS);
        if events.len() < MAX_EVENTS {
            events.push(SpanRecord {
                name: inner.name.into_owned(),
                id: inner.id,
                parent: inner.parent,
                trace: inner.trace,
                thread,
                depth: inner.depth,
                start_us: inner.start_us,
                duration_us,
                fields: inner.fields,
            });
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Open a scoped timer: `span!("name")` or
/// `span!("name", items = n, label = "x")`. Field expressions are
/// evaluated eagerly — keep them cheap, or guard the whole call with
/// [`is_enabled`] in hot paths.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::Span::enter($name)
    };
    ($name:literal, $($k:ident = $v:expr),+ $(,)?) => {{
        let mut __span = $crate::Span::enter($name);
        $( __span.field(stringify!($k), $v); )+
        __span
    }};
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    /// The global collector is shared across the whole test binary, so
    /// every test that touches it runs under this lock.
    pub(crate) static TEST_GUARD: Mutex<()> = Mutex::new(());

    pub(crate) fn with_collector<R>(f: impl FnOnce() -> R) -> R {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        enable();
        let out = f();
        disable();
        reset();
        out
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        disable();
        reset();
        counter_add("c", 5);
        gauge_set("g", 1.0);
        histogram_observe("h", 0.5);
        let s = span!("quiet", k = 1u64);
        assert!(!s.is_active());
        drop(s);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn counters_gauges_and_histograms_accumulate() {
        with_collector(|| {
            counter_add("pops", 3);
            counter_add("pops", 2);
            assert_eq!(counter_value("pops"), 5);
            gauge_set("last", 1.5);
            gauge_set("last", 2.5);
            gauge_max("peak", 10.0);
            gauge_max("peak", 4.0);
            gauge_max("peak", 12.0);
            histogram_observe("lat", 1e-4);
            histogram_observe("lat", f64::NAN);
            let snap = snapshot();
            assert_eq!(snap.gauges["last"], 2.5);
            assert_eq!(snap.gauges["peak"], 12.0);
            assert_eq!(snap.histograms["lat"].count(), 1);
        });
    }

    #[test]
    fn spans_record_depth_fields_and_stats() {
        with_collector(|| {
            {
                let mut outer = span!("outer", stage = "one");
                outer.field("n", 7usize);
                let inner = span!("inner");
                assert!(inner.is_active());
                drop(inner);
            }
            let snap = snapshot();
            assert_eq!(snap.spans.len(), 2);
            // Inner drops first.
            assert_eq!(snap.spans[0].name, "inner");
            assert_eq!(snap.spans[0].depth, 1);
            assert_eq!(snap.spans[1].name, "outer");
            assert_eq!(snap.spans[1].depth, 0);
            assert_eq!(
                snap.spans[1].fields,
                vec![
                    ("stage".to_string(), FieldValue::Str("one".into())),
                    ("n".to_string(), FieldValue::U64(7)),
                ]
            );
            assert_eq!(snap.span_stats["outer"].count, 1);
            assert_eq!(snap.span_stats["inner"].count, 1);
        });
    }

    #[test]
    fn depth_restores_after_drop() {
        with_collector(|| {
            drop(span!("a"));
            drop(span!("b"));
            let snap = snapshot();
            assert!(snap.spans.iter().all(|s| s.depth == 0));
        });
    }

    #[test]
    fn event_buffer_caps_and_counts_drops() {
        with_collector(|| {
            lock(&EVENTS).extend((0..MAX_EVENTS).map(|_| SpanRecord {
                name: "filler".into(),
                id: 0,
                parent: 0,
                trace: 0,
                thread: 0,
                depth: 0,
                start_us: 0,
                duration_us: 0,
                fields: Vec::new(),
            }));
            drop(span!("overflow"));
            let snap = snapshot();
            assert_eq!(snap.spans.len(), MAX_EVENTS);
            assert_eq!(snap.dropped_events, 1);
            // Aggregate stats still saw the dropped span.
            assert_eq!(snap.span_stats["overflow"].count, 1);
        });
    }
}
