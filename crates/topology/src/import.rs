//! Topology Zoo GraphML import.
//!
//! The paper's ground-truth maps come from the Internet Topology Zoo, which
//! publishes GraphML files with per-node `Latitude`/`Longitude`/`label`
//! attributes. This module parses that dialect — with a small, dependency-
//! free XML reader covering exactly the subset GraphML uses — so users with
//! access to the Zoo archive can run RiskRoute on the *real* maps instead
//! of the synthesized corpus.
//!
//! Faithfulness to the Zoo's quirks:
//! - Nodes without coordinates (satellite PoPs, unplaced nodes) are dropped,
//!   along with their edges.
//! - Duplicate edges and self-loops (both present in some Zoo files) are
//!   skipped silently.
//! - `key` declarations are resolved by `attr.name`, so the per-file key
//!   ids (`d29`, `d32`, …) don't matter.

use crate::model::{Network, NetworkKind, Pop, PopId};
use riskroute_geo::GeoPoint;
use std::collections::HashMap;
use std::fmt;

/// Errors from GraphML import.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportError {
    /// The XML was structurally malformed.
    MalformedXml(String),
    /// No `<graph>` element found.
    NoGraph,
    /// An edge referenced an undeclared node id.
    UnknownNode(String),
    /// No node carried usable coordinates.
    NoUsableNodes,
    /// A coordinate failed to parse or was out of range.
    BadCoordinate {
        /// The node whose coordinate failed.
        node: String,
        /// The offending value.
        value: String,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::MalformedXml(m) => write!(f, "malformed XML: {m}"),
            ImportError::NoGraph => write!(f, "no <graph> element in document"),
            ImportError::UnknownNode(id) => write!(f, "edge references unknown node {id:?}"),
            ImportError::NoUsableNodes => {
                write!(f, "no node carries Latitude/Longitude coordinates")
            }
            ImportError::BadCoordinate { node, value } => {
                write!(f, "node {node:?} has unusable coordinate {value:?}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

// ───────────────────────── minimal XML reader ──────────────────────────

/// One XML event.
#[derive(Debug, Clone, PartialEq)]
enum XmlEvent {
    /// `<name attr="v" …>` (also emitted for self-closing tags, followed by
    /// the matching `End`).
    Start {
        name: String,
        attrs: HashMap<String, String>,
    },
    /// `</name>` (or the synthetic end of a self-closing tag).
    End { name: String },
    /// Text between tags (entity-decoded, possibly whitespace).
    Text(String),
}

/// Tokenize an XML document into events. Supports the GraphML subset:
/// elements, attributes (single/double quoted), self-closing tags, comments,
/// processing instructions/declarations, CDATA, and the five predefined
/// entities.
fn parse_xml(input: &str) -> Result<Vec<XmlEvent>, ImportError> {
    let bytes = input.as_bytes();
    let mut events = Vec::new();
    let mut i = 0usize;
    let err = |m: &str| ImportError::MalformedXml(m.to_string());
    while i < bytes.len() {
        if bytes[i] == b'<' {
            if input[i..].starts_with("<!--") {
                let end = input[i..]
                    .find("-->")
                    .ok_or_else(|| err("unterminated comment"))?;
                i += end + 3;
            } else if input[i..].starts_with("<![CDATA[") {
                let end = input[i..]
                    .find("]]>")
                    .ok_or_else(|| err("unterminated CDATA"))?;
                events.push(XmlEvent::Text(input[i + 9..i + end].to_string()));
                i += end + 3;
            } else if input[i..].starts_with("<?") || input[i..].starts_with("<!") {
                let end = input[i..]
                    .find('>')
                    .ok_or_else(|| err("unterminated declaration"))?;
                i += end + 1;
            } else {
                let end = input[i..]
                    .find('>')
                    .ok_or_else(|| err("unterminated tag"))?;
                let inner = &input[i + 1..i + end];
                i += end + 1;
                if let Some(name) = inner.strip_prefix('/') {
                    events.push(XmlEvent::End {
                        name: name.trim().to_string(),
                    });
                } else {
                    let self_closing = inner.ends_with('/');
                    let inner = inner.strip_suffix('/').unwrap_or(inner).trim();
                    let (name, attrs) = parse_tag(inner)?;
                    events.push(XmlEvent::Start {
                        name: name.clone(),
                        attrs,
                    });
                    if self_closing {
                        events.push(XmlEvent::End { name });
                    }
                }
            }
        } else {
            let end = input[i..].find('<').unwrap_or(input.len() - i);
            let text = &input[i..i + end];
            if !text.trim().is_empty() {
                events.push(XmlEvent::Text(decode_entities(text)));
            }
            i += end;
        }
    }
    Ok(events)
}

/// Parse `name attr="v" attr2='w'` into name + attribute map.
fn parse_tag(inner: &str) -> Result<(String, HashMap<String, String>), ImportError> {
    let err = |m: &str| ImportError::MalformedXml(m.to_string());
    let mut chars = inner.char_indices().peekable();
    let name_end = inner
        .find(|c: char| c.is_whitespace())
        .unwrap_or(inner.len());
    let name = inner[..name_end].to_string();
    if name.is_empty() {
        return Err(err("empty tag name"));
    }
    let mut attrs = HashMap::new();
    // Skip past the name.
    while let Some(&(idx, _)) = chars.peek() {
        if idx >= name_end {
            break;
        }
        chars.next();
    }
    let rest = &inner[name_end..];
    let mut j = 0usize;
    let rb = rest.as_bytes();
    while j < rb.len() {
        while j < rb.len() && rb[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= rb.len() {
            break;
        }
        let eq = rest[j..]
            .find('=')
            .ok_or_else(|| err("attribute without value"))?;
        let key = rest[j..j + eq].trim().to_string();
        j += eq + 1;
        while j < rb.len() && rb[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= rb.len() {
            return Err(err("attribute value missing"));
        }
        let quote = rb[j];
        if quote != b'"' && quote != b'\'' {
            return Err(err("unquoted attribute value"));
        }
        j += 1;
        let close = rest[j..]
            .find(quote as char)
            .ok_or_else(|| err("unterminated attribute value"))?;
        attrs.insert(key, decode_entities(&rest[j..j + close]));
        j += close + 1;
    }
    Ok((name, attrs))
}

fn decode_entities(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

// ──────────────────────── GraphML interpretation ───────────────────────

/// Parse a Topology Zoo GraphML document into a [`Network`].
///
/// `name` and `kind` are supplied by the caller (Zoo files carry a network
/// name attribute, but naming authority stays with the user so corpus
/// integration is explicit).
///
/// # Errors
/// See [`ImportError`]. Nodes without coordinates are dropped (not an
/// error); an edge touching a dropped node is dropped with it.
pub fn network_from_graphml(
    xml: &str,
    name: &str,
    kind: NetworkKind,
) -> Result<Network, ImportError> {
    let events = parse_xml(xml)?;

    // Pass 1: key declarations (attr.name → key id) and graph presence.
    let mut lat_keys = Vec::new();
    let mut lon_keys = Vec::new();
    let mut label_keys = Vec::new();
    let mut has_graph = false;
    for e in &events {
        if let XmlEvent::Start { name, attrs } = e {
            match name.as_str() {
                "key" => {
                    let attr_name = attrs.get("attr.name").map(String::as_str);
                    let id = attrs.get("id").cloned().unwrap_or_default();
                    match attr_name {
                        Some("Latitude") => lat_keys.push(id),
                        Some("Longitude") => lon_keys.push(id),
                        Some("label") => label_keys.push(id),
                        _ => {}
                    }
                }
                "graph" => has_graph = true,
                _ => {}
            }
        }
    }
    if !has_graph {
        return Err(ImportError::NoGraph);
    }

    // Pass 2: nodes and edges.
    struct RawNode {
        id: String,
        lat: Option<f64>,
        lon: Option<f64>,
        label: Option<String>,
        bad_coord: Option<String>,
    }
    let mut nodes: Vec<RawNode> = Vec::new();
    let mut edges: Vec<(String, String)> = Vec::new();
    let mut current_node: Option<RawNode> = None;
    let mut current_data_key: Option<String> = None;
    let mut current_text = String::new();

    for e in &events {
        match e {
            XmlEvent::Start { name, attrs } => match name.as_str() {
                "node" => {
                    current_node = Some(RawNode {
                        id: attrs.get("id").cloned().unwrap_or_default(),
                        lat: None,
                        lon: None,
                        label: None,
                        bad_coord: None,
                    });
                }
                "edge" => {
                    let s = attrs.get("source").cloned().unwrap_or_default();
                    let t = attrs.get("target").cloned().unwrap_or_default();
                    edges.push((s, t));
                }
                "data" => {
                    current_data_key = attrs.get("key").cloned();
                    current_text.clear();
                }
                _ => {}
            },
            XmlEvent::Text(t) => {
                if current_data_key.is_some() {
                    current_text.push_str(t);
                }
            }
            XmlEvent::End { name } => match name.as_str() {
                "data" => {
                    if let (Some(node), Some(key)) = (&mut current_node, &current_data_key) {
                        let value = current_text.trim();
                        if lat_keys.iter().any(|k| k == key) {
                            match value.parse::<f64>() {
                                Ok(v) => node.lat = Some(v),
                                Err(_) => node.bad_coord = Some(value.to_string()),
                            }
                        } else if lon_keys.iter().any(|k| k == key) {
                            match value.parse::<f64>() {
                                Ok(v) => node.lon = Some(v),
                                Err(_) => node.bad_coord = Some(value.to_string()),
                            }
                        } else if label_keys.iter().any(|k| k == key) {
                            node.label = Some(value.to_string());
                        }
                    }
                    current_data_key = None;
                }
                "node" => {
                    if let Some(node) = current_node.take() {
                        nodes.push(node);
                    }
                }
                _ => {}
            },
        }
    }

    // Materialize: drop coordinate-less nodes; error on garbage coordinates.
    let mut id_to_pop: HashMap<String, PopId> = HashMap::new();
    let mut pops: Vec<Pop> = Vec::new();
    let declared: std::collections::HashSet<&str> = nodes.iter().map(|n| n.id.as_str()).collect();
    for node in &nodes {
        if let Some(bad) = &node.bad_coord {
            return Err(ImportError::BadCoordinate {
                node: node.id.clone(),
                value: bad.clone(),
            });
        }
        let (Some(lat), Some(lon)) = (node.lat, node.lon) else {
            continue; // unplaced node: dropped, Zoo-style
        };
        let location = GeoPoint::new(lat, lon).map_err(|_| ImportError::BadCoordinate {
            node: node.id.clone(),
            value: format!("({lat}, {lon})"),
        })?;
        id_to_pop.insert(node.id.clone(), pops.len());
        pops.push(Pop {
            name: node.label.clone().unwrap_or_else(|| node.id.clone()),
            location,
        });
    }
    if pops.is_empty() {
        return Err(ImportError::NoUsableNodes);
    }

    let mut links: Vec<(PopId, PopId)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (s, t) in &edges {
        // An edge to an undeclared node is a document error; an edge to a
        // declared-but-unplaced node is silently dropped with the node.
        let s_declared = declared.contains(s.as_str());
        let t_declared = declared.contains(t.as_str());
        if !s_declared {
            return Err(ImportError::UnknownNode(s.clone()));
        }
        if !t_declared {
            return Err(ImportError::UnknownNode(t.clone()));
        }
        let (Some(&a), Some(&b)) = (id_to_pop.get(s), id_to_pop.get(t)) else {
            continue;
        };
        if a == b {
            continue; // self-loop
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            links.push(key);
        }
    }

    Network::new(name, kind, pops, links)
        .map_err(|e| ImportError::MalformedXml(format!("inconsistent topology: {e}")))
}

/// Serialize a [`Network`] as Topology Zoo-dialect GraphML (the inverse of
/// [`network_from_graphml`]): `Latitude`/`Longitude`/`label` node data keys
/// and undirected edges.
///
/// The output re-imports losslessly (coordinates to full precision, labels
/// entity-escaped), so exported corpora interoperate with any GraphML
/// tooling that reads the Zoo.
pub fn network_to_graphml(network: &Network) -> String {
    let mut out = String::from(
        "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n\
         <graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n\
         \x20 <key attr.name=\"Latitude\" attr.type=\"double\" for=\"node\" id=\"d0\"/>\n\
         \x20 <key attr.name=\"Longitude\" attr.type=\"double\" for=\"node\" id=\"d1\"/>\n\
         \x20 <key attr.name=\"label\" attr.type=\"string\" for=\"node\" id=\"d2\"/>\n",
    );
    out.push_str(&format!(
        "  <graph edgedefault=\"undirected\" id=\"{}\">\n",
        encode_entities(network.name())
    ));
    for (i, p) in network.pops().iter().enumerate() {
        out.push_str(&format!(
            "    <node id=\"{i}\">\n      <data key=\"d2\">{}</data>\n      \
             <data key=\"d0\">{}</data>\n      <data key=\"d1\">{}</data>\n    </node>\n",
            encode_entities(&p.name),
            p.location.lat(),
            p.location.lon()
        ));
    }
    for l in network.links() {
        out.push_str(&format!(
            "    <edge source=\"{}\" target=\"{}\"/>\n",
            l.a, l.b
        ));
    }
    out.push_str("  </graph>\n</graphml>\n");
    out
}

fn encode_entities(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    /// A Zoo-faithful miniature (Abilene-style keys and structure).
    const SAMPLE: &str = r#"<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="Latitude" attr.type="double" for="node" id="d29"/>
  <key attr.name="Longitude" attr.type="double" for="node" id="d32"/>
  <key attr.name="label" attr.type="string" for="node" id="d33"/>
  <graph edgedefault="undirected">
    <node id="0">
      <data key="d33">New York</data>
      <data key="d29">40.71</data>
      <data key="d32">-74.01</data>
    </node>
    <node id="1">
      <data key="d33">Chicago</data>
      <data key="d29">41.88</data>
      <data key="d32">-87.63</data>
    </node>
    <node id="2">
      <data key="d33">Houston</data>
      <data key="d29">29.76</data>
      <data key="d32">-95.37</data>
    </node>
    <!-- an unplaced node, as in many Zoo files -->
    <node id="3">
      <data key="d33">Satellite Uplink</data>
    </node>
    <edge source="0" target="1"/>
    <edge source="1" target="2"/>
    <edge source="1" target="0"/> <!-- duplicate -->
    <edge source="2" target="2"/> <!-- self loop -->
    <edge source="0" target="3"/> <!-- edge to unplaced node -->
  </graph>
</graphml>"#;

    #[test]
    fn imports_the_sample() {
        let net = network_from_graphml(SAMPLE, "mini-zoo", NetworkKind::Regional).unwrap();
        assert_eq!(net.name(), "mini-zoo");
        assert_eq!(net.pop_count(), 3, "unplaced node dropped");
        assert_eq!(
            net.link_count(),
            2,
            "dup, self-loop, and dangling edges dropped"
        );
        assert_eq!(net.pops()[0].name, "New York");
        assert!((net.pops()[2].location.lat() - 29.76).abs() < 1e-9);
        assert!(net.has_link(0, 1));
        assert!(net.has_link(1, 2));
        assert!(!net.has_link(0, 2));
    }

    #[test]
    fn distances_are_recomputed() {
        let net = network_from_graphml(SAMPLE, "mini-zoo", NetworkKind::Regional).unwrap();
        let nyc_chi = net.links()[0].miles;
        assert!((nyc_chi - 712.0).abs() < 20.0, "got {nyc_chi}");
    }

    #[test]
    fn self_closing_and_attribute_quoting_variants() {
        let xml = r#"<graphml><key attr.name='Latitude' id='a'/><key attr.name='Longitude' id='b'/>
            <graph><node id='n0'><data key='a'>30.5</data><data key='b'>-90.5</data></node></graph></graphml>"#;
        let net = network_from_graphml(xml, "x", NetworkKind::Tier1).unwrap();
        assert_eq!(net.pop_count(), 1);
        assert_eq!(net.pops()[0].name, "n0", "node id is the fallback label");
    }

    #[test]
    fn entity_decoding_in_labels() {
        let xml = r#"<graphml><key attr.name="Latitude" id="a"/><key attr.name="Longitude" id="b"/>
            <key attr.name="label" id="c"/>
            <graph><node id="0"><data key="c">AT&amp;T &quot;East&quot;</data>
            <data key="a">33.7</data><data key="b">-84.4</data></node></graph></graphml>"#;
        let net = network_from_graphml(xml, "x", NetworkKind::Tier1).unwrap();
        assert_eq!(net.pops()[0].name, "AT&T \"East\"");
    }

    #[test]
    fn missing_graph_is_an_error() {
        let xml = r#"<graphml><key attr.name="Latitude" id="a"/></graphml>"#;
        assert_eq!(
            network_from_graphml(xml, "x", NetworkKind::Tier1).unwrap_err(),
            ImportError::NoGraph
        );
    }

    #[test]
    fn edge_to_undeclared_node_is_an_error() {
        let xml = r#"<graphml><key attr.name="Latitude" id="a"/><key attr.name="Longitude" id="b"/>
            <graph><node id="0"><data key="a">30</data><data key="b">-90</data></node>
            <edge source="0" target="ghost"/></graph></graphml>"#;
        assert_eq!(
            network_from_graphml(xml, "x", NetworkKind::Tier1).unwrap_err(),
            ImportError::UnknownNode("ghost".to_string())
        );
    }

    #[test]
    fn garbage_coordinates_are_an_error() {
        let xml = r#"<graphml><key attr.name="Latitude" id="a"/><key attr.name="Longitude" id="b"/>
            <graph><node id="0"><data key="a">not-a-number</data><data key="b">-90</data></node></graph></graphml>"#;
        assert!(matches!(
            network_from_graphml(xml, "x", NetworkKind::Tier1).unwrap_err(),
            ImportError::BadCoordinate { .. }
        ));
    }

    #[test]
    fn out_of_range_coordinates_are_an_error() {
        let xml = r#"<graphml><key attr.name="Latitude" id="a"/><key attr.name="Longitude" id="b"/>
            <graph><node id="0"><data key="a">95.0</data><data key="b">-90</data></node></graph></graphml>"#;
        assert!(matches!(
            network_from_graphml(xml, "x", NetworkKind::Tier1).unwrap_err(),
            ImportError::BadCoordinate { .. }
        ));
    }

    #[test]
    fn all_unplaced_nodes_is_an_error() {
        let xml = r#"<graphml><key attr.name="Latitude" id="a"/><key attr.name="Longitude" id="b"/>
            <graph><node id="0"/><node id="1"/></graph></graphml>"#;
        assert_eq!(
            network_from_graphml(xml, "x", NetworkKind::Tier1).unwrap_err(),
            ImportError::NoUsableNodes
        );
    }

    #[test]
    fn unterminated_tag_is_malformed() {
        assert!(matches!(
            network_from_graphml("<graphml><graph", "x", NetworkKind::Tier1).unwrap_err(),
            ImportError::MalformedXml(_)
        ));
    }

    #[test]
    fn cdata_and_comments_are_handled() {
        let xml = r#"<graphml><!-- zoo export --><key attr.name="Latitude" id="a"/>
            <key attr.name="Longitude" id="b"/><key attr.name="label" id="c"/>
            <graph><node id="0"><data key="c"><![CDATA[Name <with> brackets]]></data>
            <data key="a">40</data><data key="b">-80</data></node></graph></graphml>"#;
        let net = network_from_graphml(xml, "x", NetworkKind::Tier1).unwrap();
        assert_eq!(net.pops()[0].name, "Name <with> brackets");
    }

    #[test]
    fn export_round_trips_losslessly() {
        let original = network_from_graphml(SAMPLE, "mini-zoo", NetworkKind::Regional).unwrap();
        let xml = network_to_graphml(&original);
        let back = network_from_graphml(&xml, "mini-zoo", NetworkKind::Regional).unwrap();
        assert_eq!(back.pop_count(), original.pop_count());
        assert_eq!(back.link_count(), original.link_count());
        for (a, b) in original.pops().iter().zip(back.pops()) {
            assert_eq!(a.name, b.name);
            assert!(riskroute_geo::distance::great_circle_miles(a.location, b.location) < 1e-9);
        }
        for l in original.links() {
            assert!(back.has_link(l.a, l.b));
        }
    }

    #[test]
    fn export_escapes_entities() {
        let net = Network::new(
            "amp<>net",
            NetworkKind::Tier1,
            vec![Pop {
                name: "AT&T \"East\"".into(),
                location: GeoPoint::new(33.7, -84.4).unwrap(),
            }],
            vec![],
        )
        .unwrap();
        let xml = network_to_graphml(&net);
        assert!(xml.contains("AT&amp;T &quot;East&quot;"));
        assert!(xml.contains("id=\"amp&lt;&gt;net\""));
        // And the escaped document re-imports with the original label.
        let back = network_from_graphml(&xml, "x", NetworkKind::Tier1).unwrap();
        assert_eq!(back.pops()[0].name, "AT&T \"East\"");
    }

    #[test]
    fn synthesized_corpus_networks_round_trip() {
        let net = crate::tier1::synthesize_tier1(&crate::tier1::TIER1_SPECS[4], 42); // Sprint
        let xml = network_to_graphml(&net);
        let back = network_from_graphml(&xml, net.name(), net.kind()).unwrap();
        assert_eq!(back.pop_count(), net.pop_count());
        assert_eq!(back.link_count(), net.link_count());
    }

    #[test]
    fn imported_network_drives_the_planner() {
        // End-to-end: imported topology → graph → routing.
        let net = network_from_graphml(SAMPLE, "mini-zoo", NetworkKind::Regional).unwrap();
        let g = net.distance_graph();
        let (cost, path) = riskroute_graph::dijkstra::shortest_path(&g, 0, 2).unwrap();
        assert_eq!(path, vec![0, 1, 2]);
        assert!(cost > 1500.0 && cost < 2300.0);
    }
}
