//! Network characteristics (Table 3 of the paper).
//!
//! Table 3 correlates six characteristics of the regional networks with
//! RiskRoute's risk-reduction and distance-increase ratios: geographic
//! footprint, average PoP risk, average outdegree, number of PoPs, number of
//! links, and number of peers. This module computes the five topology-side
//! characteristics; average PoP risk comes from `riskroute-hazard` and is
//! joined by the harness.

use crate::model::Network;
use crate::peering::PeeringGraph;

/// The topology-side characteristics of one network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCharacteristics {
    /// Network name.
    pub name: String,
    /// Largest PoP-to-PoP great-circle distance, miles.
    pub footprint_miles: f64,
    /// Mean PoP outdegree.
    pub mean_outdegree: f64,
    /// Number of PoPs.
    pub pop_count: usize,
    /// Number of links.
    pub link_count: usize,
    /// Number of peering relationships.
    pub peer_count: usize,
}

/// Compute the characteristics of `net` within peering context `peering`.
pub fn characteristics(net: &Network, peering: &PeeringGraph) -> NetworkCharacteristics {
    NetworkCharacteristics {
        name: net.name().to_string(),
        footprint_miles: net.footprint_miles(),
        mean_outdegree: net.mean_outdegree(),
        pop_count: net.pop_count(),
        link_count: net.link_count(),
        peer_count: peering.peer_count(net.name()),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::model::{NetworkKind, Pop};
    use riskroute_geo::GeoPoint;

    fn sample_network() -> Network {
        Network::new(
            "sample",
            NetworkKind::Regional,
            vec![
                Pop {
                    name: "A".into(),
                    location: GeoPoint::new(30.0, -95.0).unwrap(),
                },
                Pop {
                    name: "B".into(),
                    location: GeoPoint::new(32.0, -96.0).unwrap(),
                },
                Pop {
                    name: "C".into(),
                    location: GeoPoint::new(31.0, -97.0).unwrap(),
                },
            ],
            vec![(0, 1), (1, 2)],
        )
        .unwrap()
    }

    #[test]
    fn characteristics_are_computed() {
        let net = sample_network();
        let mut peering = PeeringGraph::new();
        peering.add_peering("sample", "Level3");
        peering.add_peering("sample", "Sprint");
        let c = characteristics(&net, &peering);
        assert_eq!(c.name, "sample");
        assert_eq!(c.pop_count, 3);
        assert_eq!(c.link_count, 2);
        assert_eq!(c.peer_count, 2);
        assert!((c.mean_outdegree - 4.0 / 3.0).abs() < 1e-12);
        assert!(c.footprint_miles > 100.0);
    }

    #[test]
    fn unknown_network_has_zero_peers() {
        let net = sample_network();
        let peering = PeeringGraph::new();
        let c = characteristics(&net, &peering);
        assert_eq!(c.peer_count, 0);
    }
}
