//! The PoP / link / network data model.

use riskroute_geo::distance::great_circle_miles;
use riskroute_geo::{BoundingBox, GeoPoint};
use riskroute_graph::Graph;
use std::fmt;

/// Index of a PoP within its network (dense, `0..pop_count`).
pub type PopId = usize;

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A link referenced a PoP id at or beyond the PoP count.
    PopOutOfRange {
        /// Offending PoP id.
        pop: PopId,
        /// Number of PoPs in the network.
        count: usize,
    },
    /// A link joined a PoP to itself.
    SelfLink(PopId),
    /// Duplicate link between the same PoP pair.
    DuplicateLink(PopId, PopId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::PopOutOfRange { pop, count } => {
                write!(f, "PoP {pop} out of range (network has {count} PoPs)")
            }
            TopologyError::SelfLink(p) => write!(f, "self-link on PoP {p}"),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "duplicate link between PoPs {a} and {b}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Whether a network is a nationwide Tier-1 or a smaller regional provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Nationwide backbone (the paper studies 7 of these, 354 PoPs total).
    Tier1,
    /// Geographically constrained regional provider (16 studied, 455 PoPs).
    Regional,
}

/// A Point of Presence: a named physical infrastructure location.
#[derive(Debug, Clone, PartialEq)]
pub struct Pop {
    /// Human-readable name, usually "City ST".
    pub name: String,
    /// Geographic location.
    pub location: GeoPoint,
}

/// An undirected PoP-to-PoP link with its great-circle length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: PopId,
    /// The other endpoint.
    pub b: PopId,
    /// Line-of-sight length in miles.
    pub miles: f64,
}

/// Result of building a weighted graph in degraded mode: the graph plus the
/// link indices whose weights were invalid and therefore dropped.
#[derive(Debug, Clone)]
pub struct WeightedGraphOutcome {
    /// The graph with all valid-weight links attached.
    pub graph: Graph,
    /// Indices (into [`Network::links`]) of links dropped for invalid weight.
    pub dropped_links: Vec<usize>,
}

/// A single provider's physical infrastructure: PoPs plus line-of-sight
/// links (§4.1 of the paper).
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    kind: NetworkKind,
    pops: Vec<Pop>,
    links: Vec<Link>,
}

impl Network {
    /// Create a network from PoPs and links.
    ///
    /// Link lengths are recomputed from PoP coordinates (callers supply only
    /// endpoints via [`Link`] `a`/`b`; any provided `miles` is ignored), so
    /// the geometry is always self-consistent.
    ///
    /// # Errors
    /// Rejects out-of-range endpoints, self-links, and duplicate links.
    pub fn new(
        name: impl Into<String>,
        kind: NetworkKind,
        pops: Vec<Pop>,
        links: Vec<(PopId, PopId)>,
    ) -> Result<Self, TopologyError> {
        let n = pops.len();
        let mut seen = std::collections::HashSet::new();
        let mut out_links = Vec::with_capacity(links.len());
        for (a, b) in links {
            if a >= n {
                return Err(TopologyError::PopOutOfRange { pop: a, count: n });
            }
            if b >= n {
                return Err(TopologyError::PopOutOfRange { pop: b, count: n });
            }
            if a == b {
                return Err(TopologyError::SelfLink(a));
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                return Err(TopologyError::DuplicateLink(key.0, key.1));
            }
            let miles = great_circle_miles(pops[a].location, pops[b].location);
            out_links.push(Link { a, b, miles });
        }
        Ok(Network {
            name: name.into(),
            kind,
            pops,
            links: out_links,
        })
    }

    /// Network name (e.g. "Level3").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tier-1 or regional.
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// The network's PoPs, indexed by [`PopId`].
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// Number of PoPs.
    pub fn pop_count(&self) -> usize {
        self.pops.len()
    }

    /// The network's links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Location of PoP `p`.
    ///
    /// # Panics
    /// Panics when `p` is out of range.
    pub fn location(&self, p: PopId) -> GeoPoint {
        self.pops[p].location
    }

    /// Whether a link joins `a` and `b`.
    pub fn has_link(&self, a: PopId, b: PopId) -> bool {
        self.links
            .iter()
            .any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
    }

    /// Build the bit-mile graph: nodes are PoPs, edge weights are link
    /// lengths in miles. This is the substrate for shortest-path (baseline)
    /// routing.
    pub fn distance_graph(&self) -> Graph {
        let mut g = Graph::with_nodes(self.pops.len());
        for l in &self.links {
            // Links were validated in `Network::new` and miles come from
            // great-circle distance, so insertion cannot fail.
            if let Err(e) = g.add_edge(l.a, l.b, l.miles) {
                debug_assert!(false, "validated link rejected: {e}");
            }
        }
        g
    }

    /// Build a graph with caller-supplied weights per link, in link order.
    ///
    /// Used by the core crate to attach bit-risk-mile weights to the same
    /// topology without cloning PoP data.
    ///
    /// # Panics
    /// Panics when `weights.len() != link_count()` or any weight is invalid.
    pub fn weighted_graph(&self, weights: &[f64]) -> Graph {
        assert_eq!(
            weights.len(),
            self.links.len(),
            "one weight per link required"
        );
        let outcome = self.weighted_graph_sanitized(weights);
        assert!(
            outcome.dropped_links.is_empty(),
            "invalid weight on link {:?}",
            outcome.dropped_links
        );
        outcome.graph
    }

    /// Build a weighted graph, *dropping* any link whose supplied weight is
    /// non-finite or negative instead of panicking. The dropped link indices
    /// are reported so callers can surface the degradation.
    ///
    /// This is the degraded-mode counterpart of [`Network::weighted_graph`]:
    /// a NaN-tainted risk weight disables the link (as a real outage would)
    /// rather than aborting the pipeline.
    ///
    /// # Panics
    /// Panics when `weights.len() != link_count()` — a structural bug, not a
    /// data fault.
    pub fn weighted_graph_sanitized(&self, weights: &[f64]) -> WeightedGraphOutcome {
        assert_eq!(
            weights.len(),
            self.links.len(),
            "one weight per link required"
        );
        let mut g = Graph::with_nodes(self.pops.len());
        let mut dropped = Vec::new();
        for (i, (l, &w)) in self.links.iter().zip(weights).enumerate() {
            if g.add_edge(l.a, l.b, w).is_err() {
                dropped.push(i);
            }
        }
        WeightedGraphOutcome {
            graph: g,
            dropped_links: dropped,
        }
    }

    /// The PoP nearest to `p`, with its distance in miles. `None` for an
    /// empty network.
    pub fn nearest_pop(&self, p: GeoPoint) -> Option<(PopId, f64)> {
        self.pops
            .iter()
            .enumerate()
            .map(|(i, pop)| (i, great_circle_miles(p, pop.location)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// Geographic footprint: the largest great-circle distance between any
    /// two PoPs, in miles (Table 3's "Geographic Footprint"). Zero for
    /// networks with fewer than two PoPs.
    pub fn footprint_miles(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.pops.len() {
            for j in (i + 1)..self.pops.len() {
                best = best.max(great_circle_miles(
                    self.pops[i].location,
                    self.pops[j].location,
                ));
            }
        }
        best
    }

    /// Bounding box of all PoPs; `None` for an empty network.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        let pts: Vec<GeoPoint> = self.pops.iter().map(|p| p.location).collect();
        BoundingBox::enclosing(&pts)
    }

    /// Total link mileage.
    pub fn total_link_miles(&self) -> f64 {
        self.links.iter().map(|l| l.miles).sum()
    }

    /// Mean PoP outdegree (2·links / PoPs); zero for an empty network.
    pub fn mean_outdegree(&self) -> f64 {
        if self.pops.is_empty() {
            0.0
        } else {
            2.0 * self.links.len() as f64 / self.pops.len() as f64
        }
    }
}

impl riskroute_json::ToJson for Network {
    fn to_json(&self) -> riskroute_json::Json {
        use riskroute_json::Json;
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            (
                "kind",
                Json::Str(
                    match self.kind {
                        NetworkKind::Tier1 => "tier1",
                        NetworkKind::Regional => "regional",
                    }
                    .to_string(),
                ),
            ),
            (
                "pops",
                Json::Arr(
                    self.pops
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("name", Json::Str(p.name.clone())),
                                ("lat", Json::Num(p.location.lat())),
                                ("lon", Json::Num(p.location.lon())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "links",
                Json::Arr(
                    self.links
                        .iter()
                        .map(|l| Json::Arr(vec![Json::Num(l.a as f64), Json::Num(l.b as f64)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl riskroute_json::FromJson for Network {
    fn from_json(v: &riskroute_json::Json) -> Result<Self, riskroute_json::JsonError> {
        use riskroute_json::JsonError;
        let name = v.field("name")?.as_str()?.to_string();
        let kind = match v.field("kind")?.as_str()? {
            "tier1" => NetworkKind::Tier1,
            "regional" => NetworkKind::Regional,
            other => return Err(JsonError::Shape(format!("unknown network kind '{other}'"))),
        };
        let mut pops = Vec::new();
        for p in v.field("pops")?.as_arr()? {
            let lat = p.field("lat")?.as_f64()?;
            let lon = p.field("lon")?.as_f64()?;
            pops.push(Pop {
                name: p.field("name")?.as_str()?.to_string(),
                location: GeoPoint::new(lat, lon)
                    .map_err(|e| JsonError::Shape(e.to_string()))?,
            });
        }
        let mut links = Vec::new();
        for l in v.field("links")?.as_arr()? {
            let parts = l.as_arr()?;
            if parts.len() != 2 {
                return Err(JsonError::Shape("link must be [a, b]".to_string()));
            }
            links.push((parts[0].as_usize()?, parts[1].as_usize()?));
        }
        Network::new(name, kind, pops, links).map_err(|e| JsonError::Shape(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.to_string(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    fn triangle() -> Network {
        Network::new(
            "tri",
            NetworkKind::Regional,
            vec![
                pop("Houston TX", 29.76, -95.37),
                pop("Dallas TX", 32.78, -96.80),
                pop("Austin TX", 30.27, -97.74),
            ],
            vec![(0, 1), (1, 2), (2, 0)],
        )
        .unwrap()
    }

    #[test]
    fn construction_computes_link_miles() {
        let net = triangle();
        assert_eq!(net.pop_count(), 3);
        assert_eq!(net.link_count(), 3);
        let houston_dallas = net.links()[0].miles;
        assert!(
            (houston_dallas - 225.0).abs() < 15.0,
            "got {houston_dallas}"
        );
    }

    #[test]
    fn rejects_out_of_range_link() {
        let err = Network::new(
            "bad",
            NetworkKind::Regional,
            vec![pop("A", 30.0, -95.0)],
            vec![(0, 1)],
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::PopOutOfRange { pop: 1, count: 1 });
    }

    #[test]
    fn rejects_self_link() {
        let err = Network::new(
            "bad",
            NetworkKind::Regional,
            vec![pop("A", 30.0, -95.0), pop("B", 31.0, -95.0)],
            vec![(1, 1)],
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::SelfLink(1));
    }

    #[test]
    fn rejects_duplicate_link_any_orientation() {
        let err = Network::new(
            "bad",
            NetworkKind::Regional,
            vec![pop("A", 30.0, -95.0), pop("B", 31.0, -95.0)],
            vec![(0, 1), (1, 0)],
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::DuplicateLink(0, 1));
    }

    #[test]
    fn distance_graph_mirrors_links() {
        let net = triangle();
        let g = net.distance_graph();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for (i, l) in net.links().iter().enumerate() {
            assert_eq!(g.edge_endpoints(i), (l.a, l.b));
            assert_eq!(g.edge_weight(i), l.miles);
        }
    }

    #[test]
    fn weighted_graph_uses_custom_weights() {
        let net = triangle();
        let g = net.weighted_graph(&[1.0, 2.0, 3.0]);
        assert_eq!(g.edge_weight(0), 1.0);
        assert_eq!(g.edge_weight(2), 3.0);
    }

    #[test]
    #[should_panic(expected = "one weight per link")]
    fn weighted_graph_length_mismatch_panics() {
        let net = triangle();
        let _ = net.weighted_graph(&[1.0]);
    }

    #[test]
    fn nearest_pop_finds_closest() {
        let net = triangle();
        // San Antonio is nearest to Austin (PoP 2).
        let sa = GeoPoint::new(29.42, -98.49).unwrap();
        let (id, d) = net.nearest_pop(sa).unwrap();
        assert_eq!(id, 2);
        assert!(d < 90.0);
    }

    #[test]
    fn footprint_is_max_pairwise() {
        let net = triangle();
        let fp = net.footprint_miles();
        let max_link = net.links().iter().map(|l| l.miles).fold(0.0_f64, f64::max);
        assert!(
            (fp - max_link).abs() < 1e-9,
            "triangle footprint = longest side"
        );
    }

    #[test]
    fn has_link_both_orientations() {
        let net = triangle();
        assert!(net.has_link(0, 1));
        assert!(net.has_link(1, 0));
        let net2 = Network::new(
            "pair",
            NetworkKind::Regional,
            vec![
                pop("A", 30.0, -95.0),
                pop("B", 31.0, -95.0),
                pop("C", 32.0, -95.0),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        assert!(!net2.has_link(0, 2));
    }

    #[test]
    fn mean_outdegree_triangle_is_two() {
        assert!((triangle().mean_outdegree() - 2.0).abs() < 1e-12);
        let empty = Network::new("e", NetworkKind::Regional, vec![], vec![]).unwrap();
        assert_eq!(empty.mean_outdegree(), 0.0);
        assert_eq!(empty.footprint_miles(), 0.0);
        assert!(empty.bounding_box().is_none());
        assert!(empty
            .nearest_pop(GeoPoint::new(30.0, -95.0).unwrap())
            .is_none());
    }

    #[test]
    fn bounding_box_contains_all_pops() {
        let net = triangle();
        let bb = net.bounding_box().unwrap();
        for p in net.pops() {
            assert!(bb.contains(p.location));
        }
    }

    #[test]
    fn json_round_trip() {
        let net = triangle();
        let json = riskroute_json::to_string(&net);
        let back: Network = riskroute_json::from_str(&json).unwrap();
        assert_eq!(back.name(), "tri");
        assert_eq!(back.pop_count(), 3);
        assert_eq!(back.link_count(), 3);
    }

    #[test]
    fn sanitized_weighted_graph_drops_invalid_links() {
        let net = triangle();
        let outcome = net.weighted_graph_sanitized(&[1.0, f64::NAN, f64::INFINITY]);
        assert_eq!(outcome.graph.edge_count(), 1);
        assert_eq!(outcome.dropped_links, vec![1, 2]);
        let clean = net.weighted_graph_sanitized(&[1.0, 2.0, 3.0]);
        assert!(clean.dropped_links.is_empty());
        assert_eq!(clean.graph.edge_count(), 3);
    }
}
