//! Network topology substrate for the RiskRoute reproduction.
//!
//! The paper's evaluation (§4.1) uses ground-truth PoP-level maps of 7 Tier-1
//! networks (354 PoPs) and 16 regional networks (455 PoPs) in the continental
//! US, drawn from the Internet Topology Zoo and Internet Atlas, with
//! line-of-sight links and CAIDA-derived AS peering. Those corpora are not
//! redistributable here, so this crate *synthesizes* all 23 networks with the
//! paper's exact PoP counts over real US geography:
//!
//! - [`gazetteer`] — a built-in list of continental-US cities with true
//!   coordinates and census-scale populations; every synthesized PoP sits in
//!   (or procedurally near) a real city.
//! - [`model`] — the [`Network`]/[`Pop`]/[`Link`] data model and conversion
//!   to the graph substrate.
//! - [`tier1`] / [`regional`] — deterministic synthesizers for the 7 Tier-1
//!   and 16 regional networks (same names and PoP counts as the paper).
//! - [`peering`] — the 23-network AS peering graph of Figure 2.
//! - [`metrics`] — the network characteristics of Table 3 (footprint, PoP
//!   count, links, outdegree, peers).
//! - [`colocation`] — candidate-peer discovery for the Figure 11 experiment.
//! - [`import`] — Topology Zoo GraphML import, for running the framework on
//!   the real published maps.
//! - [`scale`] — continental-scale synthetic topologies (1k–100k PoPs) for
//!   the `riskroute synth` command and the scale benchmarks.
//!
//! Synthesis is fully deterministic: the same seed always regenerates the
//! same 23 networks, so every experiment in the harness is reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod colocation;
pub mod gazetteer;
pub mod import;
pub mod metrics;
pub mod model;
pub mod peering;
pub mod regional;
pub mod scale;
pub mod tier1;

pub use gazetteer::{City, CITIES};
pub use model::{Link, Network, NetworkKind, Pop, PopId, TopologyError};
pub use peering::{Corpus, PeeringGraph};
