//! Candidate-peer discovery (§6.3 of the paper).
//!
//! For the Figure-11 experiment, the paper defines "candidate peers" of a
//! network as "the collection of PoPs in other networks which are co-located
//! with infrastructure from the specified network, but for which there is no
//! previously known peering relationship". Two PoPs are co-located when they
//! fall within a small metro-scale radius of each other.

use crate::model::{Network, PopId};
use crate::peering::PeeringGraph;
use riskroute_geo::distance::great_circle_miles;

/// Metro-scale co-location radius in miles. PoPs of different providers in
/// the same metro (often the same carrier hotel) sit within this distance.
pub const DEFAULT_COLOCATION_MILES: f64 = 30.0;

/// A co-located PoP pair between two networks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Colocation {
    /// PoP id in the subject network.
    pub own_pop: PopId,
    /// PoP id in the other network.
    pub other_pop: PopId,
    /// Separation in miles.
    pub miles: f64,
}

/// All co-located PoP pairs between `own` and `other` within `radius_miles`.
pub fn colocations(own: &Network, other: &Network, radius_miles: f64) -> Vec<Colocation> {
    assert!(
        radius_miles.is_finite() && radius_miles > 0.0,
        "radius must be positive"
    );
    let mut out = Vec::new();
    for (i, p) in own.pops().iter().enumerate() {
        for (j, q) in other.pops().iter().enumerate() {
            let d = great_circle_miles(p.location, q.location);
            if d <= radius_miles {
                out.push(Colocation {
                    own_pop: i,
                    other_pop: j,
                    miles: d,
                });
            }
        }
    }
    out
}

/// A candidate peering: another network that is co-located with `own`
/// somewhere but not currently a peer (§6.3).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePeer {
    /// The other network's name.
    pub network: String,
    /// The co-located PoP pairs through which a new peering could be lit up.
    pub colocations: Vec<Colocation>,
}

/// Find all candidate peers of `own` among `others`, excluding existing
/// peers according to `peering`.
pub fn candidate_peers<'a>(
    own: &Network,
    others: impl IntoIterator<Item = &'a Network>,
    peering: &PeeringGraph,
    radius_miles: f64,
) -> Vec<CandidatePeer> {
    let mut out = Vec::new();
    for other in others {
        if other.name() == own.name() || peering.are_peers(own.name(), other.name()) {
            continue;
        }
        let colos = colocations(own, other, radius_miles);
        if !colos.is_empty() {
            out.push(CandidatePeer {
                network: other.name().to_string(),
                colocations: colos,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::model::{NetworkKind, Pop};
    use riskroute_geo::GeoPoint;

    fn net(name: &str, coords: &[(f64, f64)]) -> Network {
        let pops = coords
            .iter()
            .enumerate()
            .map(|(i, &(lat, lon))| Pop {
                name: format!("{name}-{i}"),
                location: GeoPoint::new(lat, lon).unwrap(),
            })
            .collect();
        let links = (0..coords.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        Network::new(name, NetworkKind::Regional, pops, links).unwrap()
    }

    #[test]
    fn colocation_within_radius_only() {
        let a = net("a", &[(30.0, -95.0), (40.0, -90.0)]);
        let b = net("b", &[(30.1, -95.1), (45.0, -120.0)]);
        let colos = colocations(&a, &b, DEFAULT_COLOCATION_MILES);
        assert_eq!(colos.len(), 1);
        assert_eq!(colos[0].own_pop, 0);
        assert_eq!(colos[0].other_pop, 0);
        assert!(colos[0].miles < 15.0);
    }

    #[test]
    fn no_colocation_when_far() {
        let a = net("a", &[(30.0, -95.0), (31.0, -95.0)]);
        let b = net("b", &[(45.0, -120.0), (46.0, -121.0)]);
        assert!(colocations(&a, &b, DEFAULT_COLOCATION_MILES).is_empty());
    }

    #[test]
    fn candidate_peers_exclude_existing_peers_and_self() {
        let a = net("a", &[(30.0, -95.0)]);
        let b = net("b", &[(30.05, -95.05)]);
        let c = net("c", &[(30.02, -95.02)]);
        let mut peering = PeeringGraph::new();
        peering.add_peering("a", "b");
        let others = [a.clone(), b, c];
        let cands = candidate_peers(&a, others.iter(), &peering, DEFAULT_COLOCATION_MILES);
        assert_eq!(cands.len(), 1, "only c qualifies: {cands:?}");
        assert_eq!(cands[0].network, "c");
        assert_eq!(cands[0].colocations.len(), 1);
    }

    #[test]
    fn tighter_radius_prunes_candidates() {
        let a = net("a", &[(30.0, -95.0)]);
        let b = net("b", &[(30.2, -95.2)]); // ~18 miles away
        let peering = PeeringGraph::new();
        let wide = candidate_peers(&a, [b.clone()].iter(), &peering, 30.0);
        assert_eq!(wide.len(), 1);
        let tight = candidate_peers(&a, [b].iter(), &peering, 5.0);
        assert!(tight.is_empty());
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn invalid_radius_panics() {
        let a = net("a", &[(30.0, -95.0)]);
        let _ = colocations(&a, &a, -1.0);
    }
}
