//! Continental-scale synthetic topologies (`riskroute synth`).
//!
//! The paper's ground-truth maps top out at 233 PoPs (Level3). To exercise
//! the engine at 100–1000× that scale, this module grows the gazetteer
//! procedurally: a nationwide **backbone** over the largest real markets
//! (Gabriel mesh ∪ 2-NN plus a west→east express ring, exactly the Tier-1
//! wiring recipe), surrounded by population-weighted **satellite** PoPs
//! scattered 2–55 miles from real anchor cities — the same infill idiom as
//! the regional synthesizer, but with a spatial hash so placement and
//! wiring stay `O(n)` instead of `O(n²)` and 100k-PoP networks build in
//! seconds.
//!
//! Determinism: the same `(n, seed)` pair always yields the same network.
//! All hash-map usage is keyed lookups in fixed iteration order (cell
//! offsets are enumerated deterministically), so no randomized iteration
//! order can leak into the output.

use crate::gazetteer::{self, City};
use crate::model::{Network, NetworkKind, Pop, TopologyError};
use riskroute_geo::bbox::CONUS;
use riskroute_geo::distance::{destination, great_circle_miles};
use riskroute_geo::GeoPoint;
use riskroute_graph::gabriel::gabriel_graph;
use riskroute_rng::StdRng;
use std::collections::HashMap;

/// Approximate continental-US land area, used only to scale the minimum
/// PoP separation with density.
const CONUS_AREA_SQ_MILES: f64 = 3.0e6;

/// Miles per degree of latitude (and per degree of longitude at the
/// equator); the spatial hash sizes its cells conservatively with the
/// *smallest* miles-per-degree-longitude inside CONUS (at 49.5°N).
const MILES_PER_DEG_LON_MIN: f64 = 44.0;

/// Satellite placement distances from the anchor city, in miles.
const SATELLITE_DIST_MILES: std::ops::Range<f64> = 2.0..55.0;

/// Placement attempts before the min-separation constraint is waived for a
/// satellite (guarantees termination on very dense requests).
const MAX_PLACEMENT_ATTEMPTS: usize = 48;

/// Every `DUAL_HOME_STRIDE`-th satellite gets an extra link to its nearest
/// backbone node, bounding stub-tree depth on big networks.
const DUAL_HOME_STRIDE: usize = 16;

/// Synthesize a deterministic `n`-PoP continental network from `seed`.
///
/// The backbone takes the top `clamp(n/50, 40, 400)` gazetteer markets
/// (all of them when `n` is smaller); the remaining PoPs are satellites.
/// Each satellite links to its nearest already-placed PoP (which keeps the
/// network connected by induction), every third also to its second-nearest,
/// and every sixteenth directly to the backbone.
///
/// # Errors
/// Propagates [`TopologyError`] from model construction; the generator
/// itself never produces invalid links, so in practice this is infallible.
pub fn synth_network(n: usize, seed: u64) -> Result<Network, TopologyError> {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, "synth"));
    let backbone_count = if n <= 40 {
        n
    } else {
        (n / 50).clamp(40, 400).min(gazetteer::CITIES.len())
    };
    let backbone_cities = gazetteer::top_by_population(backbone_count);
    let mut pops: Vec<Pop> = backbone_cities
        .iter()
        .map(|c| Pop {
            name: format!("{} {}", c.name, c.state),
            location: c.location(),
        })
        .collect();

    let mut links: Vec<(usize, usize)> = Vec::new();
    let mut have: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let push = |links: &mut Vec<(usize, usize)>,
                    have: &mut std::collections::HashSet<(usize, usize)>,
                    a: usize,
                    b: usize| {
        let key = (a.min(b), a.max(b));
        if a != b && have.insert(key) {
            links.push(key);
        }
    };
    wire_backbone(&pops, &backbone_cities, &mut |a, b| {
        push(&mut links, &mut have, a, b)
    });

    // Spatial hash over every placed PoP. Cell edge covers at least one
    // minimum separation in both axes, so a 3×3 neighborhood scan decides
    // the min-separation test exactly.
    let min_sep = ((CONUS_AREA_SQ_MILES / n.max(1) as f64).sqrt() * 0.45).clamp(1.0, 8.0);
    let cell_deg = min_sep / MILES_PER_DEG_LON_MIN;
    let mut grid = SpatialHash::new(cell_deg);
    for (i, p) in pops.iter().enumerate() {
        grid.insert(p.location, i);
    }

    let total_pop: f64 = gazetteer::CITIES.iter().map(|c| f64::from(c.population)).sum();
    while pops.len() < n {
        let idx = pops.len();
        let (anchor, loc) = place_satellite(&mut rng, total_pop, &grid, &pops, min_sep);
        pops.push(Pop {
            name: format!("{} {} synth {}", anchor.name, anchor.state, idx),
            location: loc,
        });
        // Nearest two already-placed PoPs: link the first always (keeps the
        // network connected), the second on every third satellite.
        let nn = grid.nearest(loc, 2, &pops);
        if let Some(&first) = nn.first() {
            push(&mut links, &mut have, idx, first);
        }
        if idx % 3 == 2 {
            if let Some(&second) = nn.get(1) {
                push(&mut links, &mut have, idx, second);
            }
        }
        if idx.is_multiple_of(DUAL_HOME_STRIDE) {
            if let Some(bb) = nearest_backbone(loc, &pops, backbone_count) {
                push(&mut links, &mut have, idx, bb);
            }
        }
        grid.insert(loc, idx);
    }

    Network::new(format!("synth-{n}"), NetworkKind::Tier1, pops, links)
}

/// Backbone wiring: Gabriel mesh ∪ 2-NN for corridor redundancy, plus a
/// west→east express ring over the 12 biggest markets — the large-map arm
/// of the Tier-1 recipe.
fn wire_backbone(
    pops: &[Pop],
    cities: &[&'static City],
    push: &mut impl FnMut(usize, usize),
) {
    let b = pops.len();
    if b < 2 {
        return;
    }
    let metric = |i: usize, j: usize| great_circle_miles(pops[i].location, pops[j].location);
    for (_, a, c, _) in gabriel_graph(b, metric).edges() {
        push(a, c);
    }
    for (a, c) in crate::tier1::knn_edges(pops, 2) {
        push(a, c);
    }
    let mut hubs: Vec<usize> = (0..b).collect();
    hubs.sort_by(|&x, &y| cities[y].population.cmp(&cities[x].population));
    hubs.truncate(12.min(b));
    hubs.sort_by(|&x, &y| pops[x].location.lon().total_cmp(&pops[y].location.lon()));
    for w in hubs.windows(2) {
        push(w[0], w[1]);
    }
}

/// Pick a population-weighted anchor city and scatter a satellite 2–55
/// miles from it, inside CONUS and at least `min_sep` miles from every
/// placed PoP. After [`MAX_PLACEMENT_ATTEMPTS`] rejected candidates the
/// separation constraint is waived (the anchor's location itself is the
/// final in-CONUS fallback), so the loop always terminates.
fn place_satellite(
    rng: &mut StdRng,
    total_pop: f64,
    grid: &SpatialHash,
    pops: &[Pop],
    min_sep: f64,
) -> (&'static City, GeoPoint) {
    let mut last: Option<(&'static City, GeoPoint)> = None;
    for attempt in 0..MAX_PLACEMENT_ATTEMPTS {
        let mut ticket = rng.gen_range(0.0..total_pop);
        let mut anchor = &gazetteer::CITIES[0];
        for c in gazetteer::CITIES {
            ticket -= f64::from(c.population);
            if ticket <= 0.0 {
                anchor = c;
                break;
            }
        }
        let bearing = rng.gen_range(0.0..360.0);
        let dist = rng.gen_range(SATELLITE_DIST_MILES);
        let loc = destination(anchor.location(), bearing, dist);
        if !CONUS.contains(loc) {
            continue;
        }
        last = Some((anchor, loc));
        let crowded = grid
            .neighborhood(loc)
            .any(|i| great_circle_miles(pops[i].location, loc) < min_sep);
        if !crowded || attempt + 1 == MAX_PLACEMENT_ATTEMPTS {
            return (anchor, loc);
        }
    }
    match last {
        Some(found) => found,
        // Every attempt left CONUS: fall back to the top market itself,
        // which is inside CONUS by gazetteer invariant.
        None => (&gazetteer::CITIES[0], gazetteer::CITIES[0].location()),
    }
}

/// Nearest backbone PoP (indices `0..backbone_count`) by great-circle
/// distance, ties toward the lower index.
fn nearest_backbone(loc: GeoPoint, pops: &[Pop], backbone_count: usize) -> Option<usize> {
    (0..backbone_count.min(pops.len())).min_by(|&a, &b| {
        great_circle_miles(pops[a].location, loc)
            .total_cmp(&great_circle_miles(pops[b].location, loc))
            .then(a.cmp(&b))
    })
}

/// Uniform-cell spatial hash over (lat, lon) degrees.
///
/// Only ever *queried* in deterministic cell-offset order; map iteration
/// order is never observed, so `HashMap` randomization cannot perturb the
/// synthesized network.
struct SpatialHash {
    cells: HashMap<(i64, i64), Vec<usize>>,
    cell_deg: f64,
}

impl SpatialHash {
    fn new(cell_deg: f64) -> Self {
        SpatialHash {
            cells: HashMap::new(),
            cell_deg: cell_deg.max(1e-6),
        }
    }

    fn cell_of(&self, p: GeoPoint) -> (i64, i64) {
        (
            (p.lat() / self.cell_deg).floor() as i64,
            (p.lon() / self.cell_deg).floor() as i64,
        )
    }

    fn insert(&mut self, p: GeoPoint, idx: usize) {
        self.cells.entry(self.cell_of(p)).or_default().push(idx);
    }

    /// All indices in the 3×3 cell neighborhood of `p`, in deterministic
    /// (cell-offset, insertion) order.
    fn neighborhood(&self, p: GeoPoint) -> impl Iterator<Item = usize> + '_ {
        let (cr, cc) = self.cell_of(p);
        (-1i64..=1).flat_map(move |dr| {
            (-1i64..=1).flat_map(move |dc| {
                self.cells
                    .get(&(cr + dr, cc + dc))
                    .map(|v| v.iter().copied())
                    .into_iter()
                    .flatten()
            })
        })
    }

    /// The `k` nearest placed PoPs to `p` via expanding ring search: scan
    /// cell perimeters of growing Chebyshev radius, and once `k` candidates
    /// are in hand scan one extra ring (a point in ring `r+1` can still
    /// beat one found in ring `r`) before returning the `(distance, index)`
    /// minima.
    fn nearest(&self, p: GeoPoint, k: usize, pops: &[Pop]) -> Vec<usize> {
        let (cr, cc) = self.cell_of(p);
        let mut found: Vec<(f64, usize)> = Vec::new();
        let mut extra_rings = 0usize;
        // CONUS spans < 60° of longitude; beyond that radius in cells the
        // grid is exhausted.
        let max_r = (60.0 / self.cell_deg).ceil() as i64 + 1;
        for r in 0..=max_r {
            let visit = |cell: (i64, i64), found: &mut Vec<(f64, usize)>| {
                if let Some(v) = self.cells.get(&cell) {
                    for &i in v {
                        found.push((great_circle_miles(pops[i].location, p), i));
                    }
                }
            };
            if r == 0 {
                visit((cr, cc), &mut found);
            } else {
                for dc in -r..=r {
                    visit((cr - r, cc + dc), &mut found);
                    visit((cr + r, cc + dc), &mut found);
                }
                for dr in (-r + 1)..r {
                    visit((cr + dr, cc - r), &mut found);
                    visit((cr + dr, cc + r), &mut found);
                }
            }
            if found.len() >= k {
                extra_rings += 1;
                if extra_rings > 1 {
                    break;
                }
            }
        }
        found.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        found.truncate(k);
        found.into_iter().map(|(_, i)| i).collect()
    }
}

/// FNV-1a seed derivation (see the `tier1` module note on why this is
/// duplicated rather than imported from the stats crate).
fn derive_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ master;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_graph::components::is_connected;

    #[test]
    fn synthesis_is_deterministic() {
        let a = synth_network(300, 7).unwrap();
        let b = synth_network(300, 7).unwrap();
        assert_eq!(a.pops(), b.pops());
        assert_eq!(a.links(), b.links());
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_network(300, 7).unwrap();
        let b = synth_network(300, 8).unwrap();
        assert_ne!(a.pops(), b.pops());
    }

    #[test]
    fn pop_counts_are_exact() {
        for n in [1, 25, 40, 41, 300, 1000] {
            let net = synth_network(n, 42).unwrap();
            assert_eq!(net.pop_count(), n, "n = {n}");
        }
    }

    #[test]
    fn network_is_connected() {
        let net = synth_network(600, 42).unwrap();
        assert!(is_connected(&net.distance_graph()));
    }

    #[test]
    fn all_pops_inside_conus_with_unique_names() {
        let net = synth_network(500, 42).unwrap();
        let mut names: Vec<&str> = Vec::new();
        for p in net.pops() {
            assert!(CONUS.contains(p.location), "{} outside CONUS", p.name);
            names.push(&p.name);
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), net.pop_count(), "names must be unique");
    }

    #[test]
    fn mesh_stays_sparse_like_real_isps() {
        for n in [300, 2000] {
            let net = synth_network(n, 42).unwrap();
            let ratio = net.link_count() as f64 / net.pop_count() as f64;
            assert!(
                (0.9..=3.0).contains(&ratio),
                "{n} PoPs wired with {} links",
                net.link_count()
            );
        }
    }

    #[test]
    fn footprint_is_nationwide() {
        let net = synth_network(1000, 42).unwrap();
        assert!(net.footprint_miles() > 1500.0);
    }

    #[test]
    fn small_n_is_all_backbone() {
        // n ≤ 40 networks are pure backbone: every PoP is a real market.
        let net = synth_network(25, 1).unwrap();
        for p in net.pops() {
            assert!(!p.name.contains("synth"), "{} is a satellite", p.name);
        }
    }
}
