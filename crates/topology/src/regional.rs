//! Synthesizers for the sixteen regional networks of the paper.
//!
//! Figure 2 of the paper names the regional providers; §4.1 reports 455
//! regional PoPs in total. Each regional network here is anchored to the US
//! region the real provider served (Telepak in Mississippi, Bluebird in
//! Missouri, Epoch in Texas, …). PoPs are taken from the gazetteer cities of
//! the anchor states, largest first; when a network has more PoPs than the
//! gazetteer has in-region cities, the synthesizer infills procedurally with
//! small-town PoPs placed deterministically around in-region anchors —
//! mirroring how regional access networks reach towns too small for any
//! national gazetteer.

use crate::gazetteer::{self, City};
use crate::model::{Network, NetworkKind, Pop};
use crate::tier1::build_network;
use riskroute_rng::StdRng;
use riskroute_geo::bbox::CONUS;
use riskroute_geo::distance::{destination, great_circle_miles};
use riskroute_graph::gabriel::gabriel_graph;

/// Specification for one regional network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionalSpec {
    /// Network name as it appears in Figures 2/8/11/13 of the paper.
    pub name: &'static str,
    /// Number of PoPs.
    pub pops: usize,
    /// Anchor states (USPS codes) defining the provider's footprint.
    pub states: &'static [&'static str],
}

/// The sixteen regional networks (Figure 2), PoP counts summing to the
/// paper's 455.
pub const REGIONAL_SPECS: &[RegionalSpec] = &[
    RegionalSpec {
        name: "Abilene",
        pops: 11,
        states: &["CA", "WA", "CO", "TX", "MO", "IL", "IN", "GA", "DC", "NY"],
    },
    RegionalSpec {
        name: "ANS",
        pops: 18,
        states: &["NY", "NJ", "PA", "MD", "VA", "OH", "IL", "CA", "TX"],
    },
    RegionalSpec {
        name: "Bandcon",
        pops: 20,
        states: &["CA", "NV", "AZ", "OR", "WA", "TX", "IL", "NY"],
    },
    RegionalSpec {
        name: "Bluebird",
        pops: 42,
        states: &["MO", "IL", "KS", "IA"],
    },
    RegionalSpec {
        name: "British Telecom",
        pops: 25,
        states: &["NY", "NJ", "MA", "PA", "VA", "IL", "TX", "CA", "GA", "FL"],
    },
    RegionalSpec {
        name: "CoStreet",
        pops: 12,
        states: &["ME", "NH", "VT", "MA"],
    },
    RegionalSpec {
        name: "Digex",
        pops: 18,
        states: &["MD", "VA", "DC", "NJ", "PA", "NY"],
    },
    RegionalSpec {
        name: "Epoch",
        pops: 17,
        states: &["TX"],
    },
    RegionalSpec {
        name: "Globalcenter",
        pops: 16,
        states: &["CA", "NY", "TX", "IL", "WA", "GA"],
    },
    RegionalSpec {
        name: "Goodnet",
        pops: 15,
        states: &["AZ", "NM", "NV", "UT"],
    },
    RegionalSpec {
        name: "Gridnet",
        pops: 25,
        states: &["OH", "MI", "IN", "KY", "PA"],
    },
    RegionalSpec {
        name: "Hibernia",
        pops: 30,
        states: &["MA", "NY", "NJ", "CT", "NH", "ME", "RI", "PA", "VA"],
    },
    RegionalSpec {
        name: "Iris",
        pops: 50,
        states: &["WI", "MN", "IA", "IL", "MI"],
    },
    RegionalSpec {
        name: "NTS",
        pops: 50,
        states: &["TX", "OK", "NM", "LA"],
    },
    RegionalSpec {
        name: "Telepak",
        pops: 70,
        states: &["MS", "LA", "AL", "TN"],
    },
    RegionalSpec {
        name: "USA Network",
        pops: 36,
        states: &["FL", "GA", "SC", "NC", "AL"],
    },
];

/// Look up the spec of a regional network by name (e.g. for its anchor
/// states when applying the paper's state-confined population rule).
pub fn spec_for(name: &str) -> Option<&'static RegionalSpec> {
    REGIONAL_SPECS.iter().find(|s| s.name == name)
}

/// Synthesize one regional network deterministically from `master_seed`.
pub fn synthesize_regional(spec: &RegionalSpec, master_seed: u64) -> Network {
    let seed = derive_seed(master_seed, spec.name);
    let mut rng = StdRng::seed_from_u64(seed);
    let in_region: Vec<&'static City> = gazetteer::cities_in_states(spec.states);
    assert!(
        !in_region.is_empty(),
        "{}: no gazetteer cities in {:?}",
        spec.name,
        spec.states
    );

    if in_region.len() >= spec.pops {
        // Largest in-region markets first — regional providers build out
        // from their biggest markets.
        let mut cities = in_region;
        cities.sort_by(|a, b| b.population.cmp(&a.population).then(a.name.cmp(b.name)));
        cities.truncate(spec.pops);
        build_network(
            spec.name,
            NetworkKind::Regional,
            &cities,
            hub_count(spec.pops),
            &mut rng,
        )
    } else {
        // Use every in-region city, then infill with procedural small towns.
        build_with_infill(spec, &in_region, &mut rng)
    }
}

/// Synthesize all sixteen regional networks.
pub fn regional_networks(master_seed: u64) -> Vec<Network> {
    REGIONAL_SPECS
        .iter()
        .map(|s| synthesize_regional(s, master_seed))
        .collect()
}

fn hub_count(pops: usize) -> usize {
    (pops / 8).clamp(2, 6)
}

/// Build a regional network whose PoP count exceeds the in-region gazetteer:
/// every gazetteer city plus procedurally placed towns 15–80 miles from a
/// population-weighted anchor, kept inside CONUS.
fn build_with_infill(
    spec: &RegionalSpec,
    in_region: &[&'static City],
    rng: &mut StdRng,
) -> Network {
    let mut pops: Vec<Pop> = in_region
        .iter()
        .map(|c| Pop {
            name: format!("{} {}", c.name, c.state),
            location: c.location(),
        })
        .collect();
    let total_pop: f64 = in_region.iter().map(|c| f64::from(c.population)).sum();
    let mut infill_idx = 1;
    while pops.len() < spec.pops {
        // Weighted anchor pick (larger markets sprout more satellite towns).
        let mut ticket = rng.gen_range(0.0..total_pop);
        let mut anchor = in_region[0];
        for c in in_region {
            ticket -= f64::from(c.population);
            if ticket <= 0.0 {
                anchor = c;
                break;
            }
        }
        let bearing = rng.gen_range(0.0..360.0);
        let dist = rng.gen_range(15.0..80.0);
        let loc = destination(anchor.location(), bearing, dist);
        if !CONUS.contains(loc) {
            continue;
        }
        // Keep satellite towns from stacking on existing PoPs.
        let too_close = pops
            .iter()
            .any(|p| great_circle_miles(p.location, loc) < 8.0);
        if too_close {
            continue;
        }
        pops.push(Pop {
            name: format!("{} satellite {} ({})", spec.name, infill_idx, anchor.state),
            location: loc,
        });
        infill_idx += 1;
    }
    let links = wire_gabriel(&pops);
    match Network::new(spec.name, NetworkKind::Regional, pops, links) {
        Ok(net) => net,
        Err(e) => unreachable!("synthesized links violate model invariants: {e}"),
    }
}

fn wire_gabriel(pops: &[Pop]) -> Vec<(usize, usize)> {
    if pops.len() < 2 {
        return Vec::new();
    }
    let mesh = gabriel_graph(pops.len(), |i, j| {
        great_circle_miles(pops[i].location, pops[j].location)
    });
    let mut links: Vec<(usize, usize)> = mesh
        .edges()
        .map(|(_, a, b, _)| (a.min(b), a.max(b)))
        .collect();
    // Same diversity rationale as the Tier-1 synthesizer: Gabriel + 3-NN.
    for (a, b) in crate::tier1::knn_edges(pops, 3) {
        if !links.contains(&(a, b)) {
            links.push((a, b));
        }
    }
    links
}

/// FNV-1a seed derivation (see `tier1` module note on the duplication).
fn derive_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ master;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_graph::components::is_connected;

    #[test]
    fn specs_match_paper_totals() {
        let total: usize = REGIONAL_SPECS.iter().map(|s| s.pops).sum();
        assert_eq!(total, 455, "paper reports 455 regional PoPs");
        assert_eq!(
            REGIONAL_SPECS.len(),
            16,
            "paper studies 16 regional networks"
        );
    }

    #[test]
    fn all_figure2_names_present() {
        let names: Vec<&str> = REGIONAL_SPECS.iter().map(|s| s.name).collect();
        for expected in [
            "Abilene",
            "ANS",
            "Bandcon",
            "Bluebird",
            "British Telecom",
            "CoStreet",
            "Digex",
            "Epoch",
            "Globalcenter",
            "Goodnet",
            "Gridnet",
            "Hibernia",
            "Iris",
            "NTS",
            "Telepak",
            "USA Network",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn synthesis_matches_spec_pop_counts() {
        for spec in REGIONAL_SPECS {
            let net = synthesize_regional(spec, 42);
            assert_eq!(net.pop_count(), spec.pops, "{}", spec.name);
            assert_eq!(net.kind(), NetworkKind::Regional);
        }
    }

    #[test]
    fn synthesized_networks_are_connected() {
        for spec in REGIONAL_SPECS {
            let net = synthesize_regional(spec, 42);
            assert!(
                is_connected(&net.distance_graph()),
                "{} is disconnected",
                spec.name
            );
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let telepak = REGIONAL_SPECS.iter().find(|s| s.name == "Telepak").unwrap();
        let a = synthesize_regional(telepak, 9);
        let b = synthesize_regional(telepak, 9);
        assert_eq!(a.pops(), b.pops());
        assert_eq!(a.links(), b.links());
    }

    #[test]
    fn regional_footprints_are_smaller_than_tier1() {
        // Geographically constrained regionals (Telepak, Epoch, Bluebird,
        // CoStreet, Goodnet) must have sub-national footprints.
        for name in ["Telepak", "Epoch", "Bluebird", "CoStreet", "Goodnet"] {
            let spec = REGIONAL_SPECS.iter().find(|s| s.name == name).unwrap();
            let net = synthesize_regional(spec, 42);
            assert!(
                net.footprint_miles() < 1500.0,
                "{} footprint {}",
                name,
                net.footprint_miles()
            );
        }
    }

    #[test]
    fn infill_pops_stay_in_conus_and_apart() {
        let telepak = REGIONAL_SPECS.iter().find(|s| s.name == "Telepak").unwrap();
        let net = synthesize_regional(telepak, 42);
        for p in net.pops() {
            assert!(CONUS.contains(p.location), "{} outside CONUS", p.name);
        }
        for i in 0..net.pop_count() {
            for j in (i + 1)..net.pop_count() {
                let d = great_circle_miles(net.location(i), net.location(j));
                assert!(d > 1.0, "PoPs {i} and {j} are stacked ({d} miles)");
            }
        }
    }

    #[test]
    fn telepak_is_anchored_in_the_south() {
        let telepak = REGIONAL_SPECS.iter().find(|s| s.name == "Telepak").unwrap();
        let net = synthesize_regional(telepak, 42);
        let bb = net.bounding_box().unwrap();
        // Mississippi-centered footprint: roughly 29–37°N, 95–84°W.
        assert!(bb.south() > 28.0 && bb.north() < 38.0, "{bb:?}");
        assert!(bb.west() > -96.5 && bb.east() < -82.0, "{bb:?}");
    }

    #[test]
    fn gabriel_wiring_is_sparse() {
        for spec in REGIONAL_SPECS {
            let net = synthesize_regional(spec, 42);
            let ratio = net.link_count() as f64 / net.pop_count() as f64;
            assert!(
                (0.8..=3.0).contains(&ratio),
                "{}: {} links / {} PoPs",
                spec.name,
                net.link_count(),
                net.pop_count()
            );
        }
    }
}
