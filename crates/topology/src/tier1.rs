//! Synthesizers for the seven Tier-1 networks of the paper.
//!
//! Table 2 of the paper fixes the PoP counts: Level3 233, AT&T 25, Deutsche
//! Telekom 10, NTT 12, Sprint 24, Tinet 35, Teliasonera 15 (354 total, as in
//! §4.1). Each network's PoPs are drawn from the gazetteer by
//! population-weighted sampling without replacement (big networks reach into
//! smaller markets exactly the way the Topology Zoo maps do), then wired
//! with a Gabriel-graph mesh — the classical proximity-graph model for
//! infrastructure built along line-of-sight corridors — plus express links
//! among the largest hub cities.

use crate::gazetteer::{self, City};
use crate::model::{Network, NetworkKind, Pop};
use riskroute_rng::{StdRng, WeightedIndex};
use riskroute_geo::distance::great_circle_miles;
use riskroute_graph::gabriel::gabriel_graph;

/// Specification for one Tier-1 network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tier1Spec {
    /// Network name as used throughout the paper.
    pub name: &'static str,
    /// Number of PoPs (Table 2).
    pub pops: usize,
    /// Number of top-population hub PoPs to interconnect with express links.
    pub hubs: usize,
}

/// The seven Tier-1 networks with the paper's PoP counts.
pub const TIER1_SPECS: &[Tier1Spec] = &[
    Tier1Spec {
        name: "Level3",
        pops: 233,
        hubs: 8,
    },
    Tier1Spec {
        name: "AT&T",
        pops: 25,
        hubs: 5,
    },
    Tier1Spec {
        name: "Deutsche Telekom",
        pops: 10,
        hubs: 3,
    },
    Tier1Spec {
        name: "NTT",
        pops: 12,
        hubs: 3,
    },
    Tier1Spec {
        name: "Sprint",
        pops: 24,
        hubs: 5,
    },
    Tier1Spec {
        name: "Tinet",
        pops: 35,
        hubs: 5,
    },
    Tier1Spec {
        name: "Teliasonera",
        pops: 15,
        hubs: 4,
    },
];

/// Synthesize one Tier-1 network deterministically from `master_seed`.
///
/// The same `(spec, master_seed)` pair always yields the same network.
pub fn synthesize_tier1(spec: &Tier1Spec, master_seed: u64) -> Network {
    let seed = riskroute_stats_seed(master_seed, spec.name);
    let mut rng = seeded(seed);
    let cities = sample_cities(spec.pops, &mut rng);
    build_network(spec.name, NetworkKind::Tier1, &cities, spec.hubs, &mut rng)
}

/// Synthesize all seven Tier-1 networks.
pub fn tier1_networks(master_seed: u64) -> Vec<Network> {
    TIER1_SPECS
        .iter()
        .map(|s| synthesize_tier1(s, master_seed))
        .collect()
}

/// Population-weighted sampling of `count` distinct cities.
///
/// The pool is restricted to the top `4·count` markets by population — a
/// 10-PoP Tier-1 builds in the 10–40 biggest US metros, not in random small
/// towns — and within the pool the weight is `population^0.7`, so sibling
/// networks of the same size still differ under the same seed.
fn sample_cities(count: usize, rng: &mut StdRng) -> Vec<&'static City> {
    let pool_size = (4 * count).min(gazetteer::CITIES.len());
    let mut pool: Vec<&City> = gazetteer::top_by_population(pool_size);
    assert!(
        count <= pool.len(),
        "requested {count} PoPs but gazetteer has {}",
        pool.len()
    );
    let mut chosen = Vec::with_capacity(count);
    for _ in 0..count {
        let weights: Vec<f64> = pool
            .iter()
            .map(|c| f64::from(c.population).powf(0.7))
            .collect();
        // Weights are strictly positive powers of population, so the
        // weighted index cannot fail; fall back to the top market if it
        // somehow does.
        let idx = WeightedIndex::new(&weights)
            .map(|w| w.sample(rng))
            .unwrap_or(0);
        chosen.push(pool.swap_remove(idx));
    }
    chosen
}

/// Wire a city set into a network: Gabriel mesh plus hub express links.
/// `rng` drives the corridor pruning that carves realistic coverage holes.
pub(crate) fn build_network(
    name: &str,
    kind: NetworkKind,
    cities: &[&'static City],
    hubs: usize,
    rng: &mut StdRng,
) -> Network {
    let pops: Vec<Pop> = cities
        .iter()
        .map(|c| Pop {
            name: format!("{} {}", c.name, c.state),
            location: c.location(),
        })
        .collect();
    let links = wire_pops(&pops, cities, hubs, rng);
    match Network::new(name, kind, pops, links) {
        Ok(net) => net,
        Err(e) => unreachable!("synthesized links violate model invariants: {e}"),
    }
}

/// Two-tier wiring, matching the character of real Topology Zoo maps:
///
/// - A **backbone** over the largest markets: Gabriel mesh ∪ 2-NN for
///   parallel-corridor redundancy, plus a west→east express ring over the
///   `hubs` top cities.
/// - **Stub PoPs** (everything else) homed to their nearest backbone node;
///   every third stub is dual-homed to its second-nearest backbone node.
///
/// Real ISP maps are stub-heavy (mean degree ≈ 2, with a third of PoPs at
/// degree 1): the bigger the network, the larger its stub share — which is
/// exactly why the paper finds the 233-PoP Level3 benefits *least* from
/// risk-aware routing (stub hops admit no detour).
fn wire_pops(
    pops: &[Pop],
    cities: &[&'static City],
    hubs: usize,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    let n = pops.len();
    if n < 2 {
        return Vec::new();
    }
    // Backbone: the biggest markets. Maps up to ~40 PoPs (AT&T, Sprint,
    // Tinet scale) are meshes without stubs; only the very large maps
    // (Level3's 233 PoPs) are stub-dominated.
    let backbone_count = if n <= 40 { n } else { (n / 4).max(16) };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| cities[b].population.cmp(&cities[a].population));
    let backbone: Vec<usize> = order[..backbone_count].to_vec();
    let stubs: Vec<usize> = order[backbone_count..].to_vec();

    let mut links: Vec<(usize, usize)> = Vec::new();
    let push = |links: &mut Vec<(usize, usize)>, a: usize, b: usize| {
        let key = (a.min(b), a.max(b));
        if !links.contains(&key) {
            links.push(key);
        }
    };

    // Backbone mesh. Mid-size maps (<= 40 backbone nodes) use the sparser
    // relative neighborhood graph — real maps that size are chains and
    // rings with coverage holes, which is what gives the provisioning
    // analysis (Eq. 4) genuine >50% shortcut candidates. Large backbones
    // use Gabriel ∪ 2-NN for corridor redundancy.
    let backbone_pops: Vec<Pop> = backbone.iter().map(|&i| pops[i].clone()).collect();
    let metric = |i: usize, j: usize| {
        great_circle_miles(backbone_pops[i].location, backbone_pops[j].location)
    };
    if backbone_pops.len() <= 40 {
        // Small and mid-size maps: a Gabriel mesh with a fraction of its
        // non-MST corridors pruned. Real Topology Zoo maps are *subsets* of
        // the potential corridor graph — the missing corridors are the
        // coverage holes that give Eq. 4 genuine >50% shortcut candidates —
        // while the MST skeleton plus the surviving loops keep route
        // alternatives (and connectivity) intact.
        let mesh = gabriel_graph(backbone_pops.len(), metric);
        let keep: std::collections::HashSet<usize> =
            riskroute_graph::mst::minimum_spanning_forest(&mesh)
                .into_iter()
                .collect();
        for (e, a, b, _) in mesh.edges() {
            if keep.contains(&e) || rng.gen_range(0.0..1.0) >= CORRIDOR_PRUNE_PROB {
                push(&mut links, backbone[a], backbone[b]);
            }
        }
    } else {
        let mesh = gabriel_graph(backbone_pops.len(), metric);
        for (_, a, b, _) in mesh.edges() {
            push(&mut links, backbone[a], backbone[b]);
        }
        for (a, b) in knn_edges(&backbone_pops, 2) {
            push(&mut links, backbone[a], backbone[b]);
        }
    }

    // Express ring over the top hubs, ordered west→east so the ring looks
    // like a long-haul backbone rather than a star.
    let mut hub_ids: Vec<usize> = backbone.clone();
    hub_ids.sort_by(|&a, &b| cities[b].population.cmp(&cities[a].population));
    hub_ids.truncate(hubs.min(backbone.len()));
    hub_ids.sort_by(|&a, &b| {
        pops[a].location.lon().total_cmp(&pops[b].location.lon())
    });
    if hub_ids.len() >= 2 {
        for w in hub_ids.windows(2) {
            push(&mut links, w[0], w[1]);
        }
    }

    // Stubs: home each to its nearest backbone node; dual-home every third.
    for (si, &s) in stubs.iter().enumerate() {
        let mut nearest: Vec<(usize, f64)> = backbone
            .iter()
            .map(|&b| (b, great_circle_miles(pops[s].location, pops[b].location)))
            .collect();
        nearest.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        push(&mut links, s, nearest[0].0);
        if si % 3 == 2 && nearest.len() > 1 {
            push(&mut links, s, nearest[1].0);
        }
    }
    links
}

/// Probability that a non-MST Gabriel corridor is left unbuilt in small
/// and mid-size maps (see `wire_pops`).
const CORRIDOR_PRUNE_PROB: f64 = 0.6;

/// Each PoP's `k` nearest neighbours as normalized undirected edges.
pub(crate) fn knn_edges(pops: &[Pop], k: usize) -> Vec<(usize, usize)> {
    let n = pops.len();
    let mut out = Vec::new();
    for i in 0..n {
        let mut dists: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (j, great_circle_miles(pops[i].location, pops[j].location)))
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        for &(j, _) in dists.iter().take(k) {
            let key = (i.min(j), i.max(j));
            if !out.contains(&key) {
                out.push(key);
            }
        }
    }
    out
}

fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Mirror of `riskroute_stats::rng::derive_seed` (FNV-1a fold), duplicated to
/// avoid a dependency cycle: stats does not depend on topology, and topology
/// only needs this one helper from it.
fn riskroute_stats_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ master;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_graph::components::is_connected;

    #[test]
    fn specs_match_paper_totals() {
        let total: usize = TIER1_SPECS.iter().map(|s| s.pops).sum();
        assert_eq!(total, 354, "paper reports 354 Tier-1 PoPs");
        assert_eq!(TIER1_SPECS.len(), 7);
        let level3 = TIER1_SPECS.iter().find(|s| s.name == "Level3").unwrap();
        assert_eq!(level3.pops, 233);
    }

    #[test]
    fn synthesis_matches_spec_pop_counts() {
        for spec in TIER1_SPECS {
            let net = synthesize_tier1(spec, 42);
            assert_eq!(net.pop_count(), spec.pops, "{}", spec.name);
            assert_eq!(net.kind(), NetworkKind::Tier1);
            assert_eq!(net.name(), spec.name);
        }
    }

    #[test]
    fn synthesized_networks_are_connected() {
        for spec in TIER1_SPECS {
            let net = synthesize_tier1(spec, 42);
            assert!(
                is_connected(&net.distance_graph()),
                "{} is disconnected",
                spec.name
            );
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize_tier1(&TIER1_SPECS[1], 7);
        let b = synthesize_tier1(&TIER1_SPECS[1], 7);
        assert_eq!(a.pops(), b.pops());
        assert_eq!(a.links(), b.links());
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize_tier1(&TIER1_SPECS[1], 7);
        let b = synthesize_tier1(&TIER1_SPECS[1], 8);
        assert_ne!(a.pops(), b.pops());
    }

    #[test]
    fn different_networks_differ_under_same_seed() {
        let nets = tier1_networks(42);
        assert_ne!(nets[1].pops(), nets[4].pops(), "AT&T vs Sprint must differ");
    }

    #[test]
    fn no_duplicate_pops_within_network() {
        let net = synthesize_tier1(&TIER1_SPECS[0], 42); // Level3, 233 PoPs
        let mut names: Vec<&str> = net.pops().iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            net.pop_count(),
            "sampling is without replacement"
        );
    }

    #[test]
    fn mesh_is_sparse_like_real_isps() {
        // Gabriel graphs have at most 3n-8 edges; real PoP meshes sit around
        // 1.2–2 links per PoP. Guard the synthesizer against accidental
        // densification.
        for spec in TIER1_SPECS {
            let net = synthesize_tier1(spec, 42);
            let ratio = net.link_count() as f64 / net.pop_count() as f64;
            assert!(
                (0.9..=3.0).contains(&ratio),
                "{}: {} links for {} PoPs",
                spec.name,
                net.link_count(),
                net.pop_count()
            );
        }
    }

    #[test]
    fn footprint_is_nationwide() {
        // Tier-1 networks must span the country (paper Figure 1-left).
        for spec in TIER1_SPECS {
            let net = synthesize_tier1(spec, 42);
            assert!(
                net.footprint_miles() > 1500.0,
                "{} footprint {}",
                spec.name,
                net.footprint_miles()
            );
        }
    }
}
