//! The 23-network AS peering graph (Figure 2 of the paper) and the standard
//! evaluation corpus.
//!
//! The paper derives AS connectivity from the CAIDA AS Relationship Dataset;
//! here the 23-network subgraph of Figure 2 is encoded explicitly: the seven
//! Tier-1 backbones form a full peering mesh, and each regional network
//! peers with the Tier-1s (and occasionally other regionals) it used in
//! practice.

use crate::model::{Network, NetworkKind};
use crate::regional::regional_networks;
use crate::tier1::tier1_networks;
use std::collections::{HashMap, HashSet};

/// The seven Tier-1 network names.
pub const TIER1_NAMES: &[&str] = &[
    "Level3",
    "AT&T",
    "Deutsche Telekom",
    "NTT",
    "Sprint",
    "Tinet",
    "Teliasonera",
];

/// Regional → Tier-1 peering relationships (Figure 2 rendering).
pub const REGIONAL_PEERINGS: &[(&str, &[&str])] = &[
    ("Abilene", &["Level3", "AT&T"]),
    ("ANS", &["AT&T", "Sprint"]),
    ("Bandcon", &["Level3", "Tinet"]),
    ("Bluebird", &["Sprint", "Level3"]),
    ("British Telecom", &["AT&T", "Sprint", "Level3"]),
    ("CoStreet", &["NTT"]),
    ("Digex", &["AT&T", "Sprint"]),
    ("Epoch", &["Level3", "AT&T"]),
    ("Globalcenter", &["Sprint", "Tinet"]),
    ("Goodnet", &["Sprint"]),
    ("Gridnet", &["Level3"]),
    ("Hibernia", &["Tinet", "Teliasonera", "Level3"]),
    ("Iris", &["AT&T"]),
    ("NTS", &["Level3", "Sprint"]),
    ("Telepak", &["AT&T", "Level3"]),
    ("USA Network", &["Tinet", "NTT"]),
];

/// An undirected peering graph over network names.
#[derive(Debug, Clone, Default)]
pub struct PeeringGraph {
    edges: HashSet<(String, String)>,
    names: HashSet<String>,
}

impl PeeringGraph {
    /// An empty peering graph.
    pub fn new() -> Self {
        PeeringGraph::default()
    }

    /// The Figure-2 peering graph: Tier-1 full mesh plus the
    /// [`REGIONAL_PEERINGS`] table.
    pub fn figure2() -> Self {
        let mut g = PeeringGraph::new();
        for (i, a) in TIER1_NAMES.iter().enumerate() {
            g.add_network(a);
            for b in &TIER1_NAMES[i + 1..] {
                g.add_peering(a, b);
            }
        }
        for (regional, tier1s) in REGIONAL_PEERINGS {
            g.add_network(regional);
            for t in *tier1s {
                g.add_peering(regional, t);
            }
        }
        g
    }

    /// Register a network name (idempotent).
    pub fn add_network(&mut self, name: &str) {
        self.names.insert(name.to_string());
    }

    /// Add an undirected peering between `a` and `b` (idempotent; both
    /// networks are registered as a side effect).
    ///
    /// # Panics
    /// Panics on a self-peering.
    pub fn add_peering(&mut self, a: &str, b: &str) {
        assert_ne!(a, b, "network cannot peer with itself");
        self.add_network(a);
        self.add_network(b);
        self.edges.insert(ordered(a, b));
    }

    /// Whether `a` and `b` peer.
    pub fn are_peers(&self, a: &str, b: &str) -> bool {
        a != b && self.edges.contains(&ordered(a, b))
    }

    /// All registered network names, sorted.
    pub fn networks(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.names.iter().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// The peers of `name`, sorted.
    pub fn peers_of(&self, name: &str) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .edges
            .iter()
            .filter_map(|(a, b)| {
                if a == name {
                    Some(b.as_str())
                } else if b == name {
                    Some(a.as_str())
                } else {
                    None
                }
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of peerings of `name` (Table 3's "Number of Peers").
    pub fn peer_count(&self, name: &str) -> usize {
        self.peers_of(name).len()
    }

    /// Total number of peering edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

fn ordered(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

/// The complete evaluation corpus: all 23 synthesized networks plus the
/// Figure-2 peering graph, deterministic under `master_seed`.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The seven Tier-1 networks, in [`TIER1_NAMES`] order.
    pub tier1: Vec<Network>,
    /// The sixteen regional networks, in
    /// [`REGIONAL_SPECS`](crate::regional::REGIONAL_SPECS) order.
    pub regional: Vec<Network>,
    /// Figure-2 peering relationships.
    pub peering: PeeringGraph,
}

impl Corpus {
    /// Synthesize the standard corpus.
    pub fn standard(master_seed: u64) -> Self {
        Corpus {
            tier1: tier1_networks(master_seed),
            regional: regional_networks(master_seed),
            peering: PeeringGraph::figure2(),
        }
    }

    /// Look up any network (Tier-1 or regional) by name.
    pub fn network(&self, name: &str) -> Option<&Network> {
        self.all_networks().find(|n| n.name() == name)
    }

    /// Iterate over all 23 networks, Tier-1s first.
    pub fn all_networks(&self) -> impl Iterator<Item = &Network> {
        self.tier1.iter().chain(self.regional.iter())
    }

    /// Map from network name to kind for every corpus member.
    pub fn kinds(&self) -> HashMap<String, NetworkKind> {
        self.all_networks()
            .map(|n| (n.name().to_string(), n.kind()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn figure2_has_23_networks() {
        let g = PeeringGraph::figure2();
        assert_eq!(g.networks().len(), 23);
    }

    #[test]
    fn tier1_mesh_is_complete() {
        let g = PeeringGraph::figure2();
        for a in TIER1_NAMES {
            for b in TIER1_NAMES {
                if a != b {
                    assert!(g.are_peers(a, b), "{a} should peer with {b}");
                }
            }
        }
    }

    #[test]
    fn every_regional_has_at_least_one_tier1_peer() {
        let g = PeeringGraph::figure2();
        for (regional, _) in REGIONAL_PEERINGS {
            let peers = g.peers_of(regional);
            assert!(
                peers.iter().any(|p| TIER1_NAMES.contains(p)),
                "{regional} has no Tier-1 peer"
            );
        }
    }

    #[test]
    fn edge_count_matches_mesh_plus_table() {
        let g = PeeringGraph::figure2();
        let mesh = 7 * 6 / 2;
        let table: usize = REGIONAL_PEERINGS.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(g.edge_count(), mesh + table);
    }

    #[test]
    fn peering_is_symmetric_and_idempotent() {
        let mut g = PeeringGraph::new();
        g.add_peering("A", "B");
        g.add_peering("B", "A");
        assert_eq!(g.edge_count(), 1);
        assert!(g.are_peers("A", "B"));
        assert!(g.are_peers("B", "A"));
        assert!(!g.are_peers("A", "A"));
        assert!(!g.are_peers("A", "C"));
    }

    #[test]
    #[should_panic(expected = "peer with itself")]
    fn self_peering_panics() {
        let mut g = PeeringGraph::new();
        g.add_peering("A", "A");
    }

    #[test]
    fn peer_count_matches_table() {
        let g = PeeringGraph::figure2();
        assert_eq!(g.peer_count("Goodnet"), 1);
        assert_eq!(g.peer_count("Hibernia"), 3);
        // Level3 peers with the other 6 Tier-1s plus its regional customers.
        let level3_regionals = REGIONAL_PEERINGS
            .iter()
            .filter(|(_, t)| t.contains(&"Level3"))
            .count();
        assert_eq!(g.peer_count("Level3"), 6 + level3_regionals);
    }

    #[test]
    fn corpus_contains_everything() {
        let corpus = Corpus::standard(42);
        assert_eq!(corpus.tier1.len(), 7);
        assert_eq!(corpus.regional.len(), 16);
        assert_eq!(corpus.all_networks().count(), 23);
        assert!(corpus.network("Level3").is_some());
        assert!(corpus.network("Telepak").is_some());
        assert!(corpus.network("Nonexistent").is_none());
        let total_pops: usize = corpus.all_networks().map(|n| n.pop_count()).sum();
        assert_eq!(total_pops, 354 + 455, "paper PoP totals");
    }

    #[test]
    fn corpus_names_match_peering_graph() {
        let corpus = Corpus::standard(42);
        let peering_names = corpus.peering.networks();
        for n in corpus.all_networks() {
            assert!(
                peering_names.contains(&n.name()),
                "{} missing from peering graph",
                n.name()
            );
        }
    }

    #[test]
    fn kinds_map_is_complete() {
        let corpus = Corpus::standard(42);
        let kinds = corpus.kinds();
        assert_eq!(kinds.len(), 23);
        assert_eq!(kinds["Level3"], NetworkKind::Tier1);
        assert_eq!(kinds["Telepak"], NetworkKind::Regional);
    }
}
