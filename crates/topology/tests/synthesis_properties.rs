//! Randomized property tests for the topology synthesizers: the corpus
//! invariants must hold for *every* seed, not just the harness seed.

use riskroute_geo::bbox::CONUS;
use riskroute_graph::components::is_connected;
use riskroute_rng::StdRng;
use riskroute_topology::regional::{synthesize_regional, REGIONAL_SPECS};
use riskroute_topology::tier1::{synthesize_tier1, TIER1_SPECS};
use riskroute_topology::Corpus;

#[test]
fn tier1_synthesis_invariants_for_any_seed() {
    let mut rng = StdRng::seed_from_u64(0xa1);
    for _ in 0..12 {
        let seed = rng.gen_range(0..10_000u64);
        // The expensive member (Level3, 233 PoPs) dominates runtime; sample
        // the small and mid specs across seeds.
        for spec in TIER1_SPECS.iter().filter(|s| s.pops <= 40) {
            let net = synthesize_tier1(spec, seed);
            assert_eq!(net.pop_count(), spec.pops);
            assert!(
                is_connected(&net.distance_graph()),
                "{} seed {}",
                spec.name,
                seed
            );
            for p in net.pops() {
                assert!(CONUS.contains(p.location));
            }
            // No stacked PoPs (cities are sampled without replacement).
            let mut names: Vec<&str> = net.pops().iter().map(|p| p.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), net.pop_count());
        }
    }
}

#[test]
fn regional_synthesis_invariants_for_any_seed() {
    let mut rng = StdRng::seed_from_u64(0xa2);
    for _ in 0..12 {
        let seed = rng.gen_range(0..10_000u64);
        for spec in REGIONAL_SPECS.iter().filter(|s| s.pops <= 25) {
            let net = synthesize_regional(spec, seed);
            assert_eq!(net.pop_count(), spec.pops);
            assert!(
                is_connected(&net.distance_graph()),
                "{} seed {}",
                spec.name,
                seed
            );
            for p in net.pops() {
                assert!(CONUS.contains(p.location));
            }
        }
    }
}

#[test]
fn full_corpus_invariants_for_three_seeds() {
    for seed in [0, 1, 99] {
        let corpus = Corpus::standard(seed);
        let total: usize = corpus.all_networks().map(|n| n.pop_count()).sum();
        assert_eq!(total, 809, "seed {seed}");
        for net in corpus.all_networks() {
            assert!(
                is_connected(&net.distance_graph()),
                "{} seed {seed}",
                net.name()
            );
            assert!(net.link_count() >= net.pop_count() - 1);
        }
    }
}
