//! Property test: the GraphML importer never panics on malformed input.
//!
//! Degraded-mode contract for the import boundary: whatever bytes arrive —
//! truncated downloads, bit-flipped mirrors, scrambled tags — the importer
//! must return `Err(ImportError)` or a valid `Network`, never abort. The
//! corpus exporter supplies a known-good document; we then break it in
//! seeded, reproducible ways.

use riskroute_rng::StdRng;
use riskroute_topology::import::{network_from_graphml, network_to_graphml};
use riskroute_topology::{Corpus, NetworkKind};

fn reference_xml() -> String {
    let corpus = Corpus::standard(42);
    let net = corpus.network("NTT").expect("corpus network");
    network_to_graphml(net)
}

/// Import must return, not panic; both outcomes are acceptable here because
/// some mutations leave the document well-formed.
fn import_never_panics(xml: &str) {
    let _ = network_from_graphml(xml, "fuzz", NetworkKind::Regional);
}

#[test]
fn truncation_at_every_boundary_is_an_error_not_a_panic() {
    let xml = reference_xml();
    let full = network_from_graphml(&xml, "ref", NetworkKind::Regional)
        .expect("reference document imports")
        .pop_count();
    // Every prefix (stepping fine enough to land inside tags, attribute
    // values, and float literals) must either be rejected gracefully or —
    // the importer tolerates a missing tail — yield a *smaller* network,
    // never a panic and never nodes invented from thin air.
    for end in (0..xml.len()).step_by(7) {
        let Some(prefix) = xml.get(..end) else {
            continue; // non-char boundary; the importer takes &str anyway
        };
        match network_from_graphml(prefix, "fuzz", NetworkKind::Regional) {
            Err(_) => {}
            Ok(net) => assert!(
                net.pop_count() <= full,
                "prefix at byte {end} produced {} PoPs from a {full}-PoP document",
                net.pop_count()
            ),
        }
    }
}

#[test]
fn random_byte_mutations_never_panic() {
    let xml = reference_xml();
    let bytes = xml.as_bytes();
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for _ in 0..400 {
        let mut mutated = bytes.to_vec();
        // 1–8 independent single-byte smashes per trial.
        let hits = rng.gen_range(1..9_usize);
        for _ in 0..hits {
            let at = rng.gen_range(0..mutated.len());
            mutated[at] = rng.gen_range(0..256_usize) as u8;
        }
        // Only valid UTF-8 mutants reach the importer (its input is &str).
        if let Ok(s) = std::str::from_utf8(&mutated) {
            import_never_panics(s);
        }
    }
}

#[test]
fn structural_mutations_never_panic() {
    let xml = reference_xml();
    let hostile: Vec<String> = vec![
        xml.replace("<node", "<edge"),
        xml.replace("</graph>", ""),
        xml.replace("key=\"d0\"", "key=\"zz\""),
        xml.replace("source=", "sauce="),
        // Numeric rot in coordinate payloads.
        xml.replace('.', ","),
        xml.replace('3', "NaN"),
        // Duplicate the whole document inside itself.
        xml.replace("<graph ", &format!("<graph >{xml}<graph ")),
        // Strip every closing tag.
        xml.replace("</", "<"),
        // Empty / trivial documents.
        String::new(),
        "<graphml></graphml>".into(),
        "<graphml><graph></graph></graphml>".into(),
        "not xml at all".into(),
    ];
    for (i, doc) in hostile.iter().enumerate() {
        import_never_panics(doc);
        let _ = i;
    }
}

#[test]
fn edge_endpoint_rot_is_rejected() {
    let xml = reference_xml();
    // Point an edge at a node id that does not exist.
    let broken = xml.replacen("target=\"n1\"", "target=\"n999\"", 1);
    if broken != xml {
        assert!(
            network_from_graphml(&broken, "fuzz", NetworkKind::Regional).is_err(),
            "dangling edge endpoint must be an ImportError"
        );
    }
    // Self-loop injection: make an edge's target equal its source.
    let looped = xml.replacen("target=\"n1\"", "target=\"n0\"", 1);
    if looped != xml {
        import_never_panics(&looped);
    }
}
