//! Criterion microbenchmarks for the RiskRoute core operations.
//!
//! One group per pipeline stage: graph algorithms on the real Level3-scale
//! topology, KDE evaluation, bit-risk routing queries, the aggregate ratio
//! sweep, provisioning candidate scoring, the merged interdomain build, and
//! advisory parsing. These are the per-operation costs behind every
//! table/figure regeneration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use riskroute::prelude::*;
use riskroute::provisioning::{best_additional_link, candidate_links};
use riskroute::replay::replay_storm;
use riskroute_bench::ExperimentContext;
use riskroute_forecast::{advisories_for, ForecastRisk};
use riskroute_graph::centrality::{articulation_points, betweenness};
use riskroute_graph::dijkstra;
use riskroute_hazard::events::sample_events;
use riskroute_hazard::EventKind;
use riskroute_stats::GeoKde;
use riskroute_topology::Network;
use std::hint::black_box;

fn ctx() -> ExperimentContext {
    ExperimentContext::reduced()
}

fn bench_graph(c: &mut Criterion) {
    let context = ctx();
    let level3 = context.corpus.network("Level3").unwrap();
    let g = level3.distance_graph();
    let mut group = c.benchmark_group("graph");
    group.bench_function("dijkstra_sssp_level3", |b| {
        b.iter(|| black_box(dijkstra::sssp(&g, black_box(0))))
    });
    group.bench_function("dijkstra_point_to_point_level3", |b| {
        b.iter(|| black_box(dijkstra::shortest_path(&g, black_box(0), black_box(200))))
    });
    group.finish();
}

fn bench_kde(c: &mut Criterion) {
    let events: Vec<_> = sample_events(EventKind::FemaHurricane, 2_000, 42)
        .into_iter()
        .map(|e| e.location)
        .collect();
    let kde = GeoKde::fit(events, 71.56);
    let q = riskroute_geo::GeoPoint::new(29.95, -90.07).unwrap();
    let mut group = c.benchmark_group("kde");
    group.bench_function("density_2k_events", |b| {
        b.iter(|| black_box(kde.density(black_box(q))))
    });
    group.bench_function("log_density_2k_events", |b| {
        b.iter(|| black_box(kde.log_density(black_box(q))))
    });
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let context = ctx();
    let level3 = context.corpus.network("Level3").unwrap();
    let planner = context.planner_for(level3, RiskWeights::historical_only(1e5));
    let sprint = context.corpus.network("Sprint").unwrap();
    let sprint_planner = context.planner_for(sprint, RiskWeights::historical_only(1e5));
    let mut group = c.benchmark_group("routing");
    group.bench_function("risk_route_level3_pair", |b| {
        b.iter(|| black_box(planner.risk_route(black_box(3), black_box(180))))
    });
    group.bench_function("ratio_report_sprint_all_pairs", |b| {
        b.iter(|| black_box(sprint_planner.ratio_report()))
    });
    group.finish();
}

fn bench_provisioning(c: &mut Criterion) {
    let context = ctx();
    let sprint = context.corpus.network("Sprint").unwrap();
    let planner = context.planner_for(sprint, RiskWeights::historical_only(1e5));
    let mut group = c.benchmark_group("provisioning");
    group.bench_function("candidate_links_sprint", |b| {
        b.iter(|| black_box(candidate_links(sprint, &planner)))
    });
    group.bench_function("best_additional_link_sprint", |b| {
        b.iter(|| black_box(best_additional_link(sprint, &planner)))
    });
    group.finish();
}

fn bench_interdomain(c: &mut Criterion) {
    let context = ctx();
    let networks: Vec<&Network> = context.corpus.all_networks().collect();
    let mut group = c.benchmark_group("interdomain");
    group.sample_size(10);
    group.bench_function("merge_23_networks", |b| {
        b.iter(|| {
            black_box(riskroute::interdomain::InterdomainTopology::merge(
                black_box(&networks),
                &context.corpus.peering,
                30.0,
            ))
        })
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let context = ctx();
    let sprint = context.corpus.network("Sprint").unwrap();
    let g = sprint.distance_graph();
    let mut group = c.benchmark_group("analysis");
    group.bench_function("betweenness_sprint", |b| {
        b.iter(|| black_box(betweenness(&g)))
    });
    group.bench_function("articulation_points_sprint", |b| {
        b.iter(|| black_box(articulation_points(&g)))
    });
    group.bench_function("corridor_risks_sprint", |b| {
        b.iter(|| {
            black_box(riskroute::corridor::corridor_risks(
                sprint,
                &context.hazards,
            ))
        })
    });
    group.finish();
}

fn bench_backup(c: &mut Criterion) {
    let context = ctx();
    let sprint = context.corpus.network("Sprint").unwrap();
    let planner = context.planner_for(sprint, RiskWeights::historical_only(1e5));
    let mut group = c.benchmark_group("backup");
    group.bench_function("backup_paths_k3_sprint", |b| {
        b.iter(|| {
            black_box(riskroute::backup::backup_paths(
                &planner,
                sprint,
                black_box(0),
                black_box(9),
                3,
            ))
        })
    });
    group.bench_function("lfa_next_hops_sprint", |b| {
        b.iter(|| {
            black_box(riskroute::backup::lfa_next_hops(
                &planner,
                sprint,
                black_box(9),
            ))
        })
    });
    group.finish();
}

fn bench_forecast(c: &mut Criterion) {
    let advisories = advisories_for(Storm::Sandy);
    let text = advisories[40].to_text();
    let context = ctx();
    let dt = context.corpus.network("Deutsche Telekom").unwrap();
    let planner = context.planner_for(dt, RiskWeights::PAPER);
    let mut group = c.benchmark_group("forecast");
    group.bench_function("parse_advisory_text", |b| {
        b.iter(|| black_box(ForecastRisk::from_advisory_text(black_box(&text))))
    });
    group.bench_function("replay_sandy_dt_stride8", |b| {
        b.iter_batched(
            || planner.clone(),
            |p| black_box(replay_storm(&p, dt, Storm::Sandy, 8)),
            BatchSize::SmallInput,
        )
    });
    let pair = &advisories[40..42];
    group.bench_function("project_24h", |b| {
        b.iter(|| black_box(riskroute_forecast::project(&pair[0], &pair[1], 24.0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph,
    bench_kde,
    bench_routing,
    bench_provisioning,
    bench_interdomain,
    bench_analysis,
    bench_backup,
    bench_forecast
);
criterion_main!(benches);
