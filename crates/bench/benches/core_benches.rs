//! Microbenchmarks for the RiskRoute core operations (plain timing harness,
//! no external framework).
//!
//! One group per pipeline stage: graph algorithms on the real Level3-scale
//! topology, KDE evaluation, bit-risk routing queries, the aggregate ratio
//! sweep, provisioning candidate scoring, the merged interdomain build, and
//! advisory parsing. These are the per-operation costs behind every
//! table/figure regeneration.
//!
//! Run with `cargo bench -p riskroute-bench`; pass `--quick` via
//! `cargo bench -p riskroute-bench -- --quick` to cut iteration counts.

use riskroute::prelude::*;
use riskroute::provisioning::{best_additional_link, candidate_links};
use riskroute::replay::replay_storm;
use riskroute_bench::ExperimentContext;
use riskroute_forecast::{advisories_for, ForecastRisk};
use riskroute_graph::centrality::{articulation_points, betweenness};
use riskroute_graph::dijkstra;
use riskroute_hazard::events::sample_events;
use riskroute_hazard::EventKind;
use riskroute_stats::GeoKde;
use riskroute_topology::Network;
use std::hint::black_box;
use std::time::Instant;

struct Harness {
    iters: u32,
}

impl Harness {
    fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // Warm-up pass, then timed passes.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let per_iter = start.elapsed() / self.iters;
        println!("{name:<40} {per_iter:>12.2?}/iter  ({} iters)", self.iters);
    }

    /// For expensive operations: fewer iterations.
    fn slow(&self) -> Harness {
        Harness {
            iters: (self.iters / 10).max(1),
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let h = Harness {
        iters: if quick { 3 } else { 30 },
    };
    let context = ExperimentContext::reduced();

    let level3 = context.corpus.network("Level3").expect("Level3 in corpus");
    let g = level3.distance_graph();
    h.bench("graph/dijkstra_sssp_level3", || dijkstra::sssp(&g, black_box(0)));
    h.bench("graph/dijkstra_point_to_point_level3", || {
        dijkstra::shortest_path(&g, black_box(0), black_box(200))
    });

    let events: Vec<_> = sample_events(EventKind::FemaHurricane, 2_000, 42)
        .into_iter()
        .map(|e| e.location)
        .collect();
    let kde = GeoKde::fit(events, 71.56);
    let q = riskroute_geo::GeoPoint::new(29.95, -90.07).expect("valid point");
    h.bench("kde/density_2k_events", || kde.density(black_box(q)));
    h.bench("kde/log_density_2k_events", || kde.log_density(black_box(q)));

    let planner = context.planner_for(level3, RiskWeights::historical_only(1e5));
    let sprint = context.corpus.network("Sprint").expect("Sprint in corpus");
    let sprint_planner = context.planner_for(sprint, RiskWeights::historical_only(1e5));
    h.bench("routing/risk_route_level3_pair", || {
        planner.risk_route(black_box(3), black_box(180))
    });
    h.slow().bench("routing/ratio_report_sprint_all_pairs", || {
        sprint_planner.ratio_report()
    });

    h.slow().bench("provisioning/candidate_links_sprint", || {
        candidate_links(sprint, &sprint_planner)
    });
    h.slow().bench("provisioning/best_additional_link_sprint", || {
        best_additional_link(sprint, &sprint_planner)
    });

    let networks: Vec<&Network> = context.corpus.all_networks().collect();
    h.slow().bench("interdomain/merge_23_networks", || {
        riskroute::interdomain::InterdomainTopology::merge(
            black_box(&networks),
            &context.corpus.peering,
            30.0,
        )
    });

    let gs = sprint.distance_graph();
    h.bench("analysis/betweenness_sprint", || betweenness(&gs));
    h.bench("analysis/articulation_points_sprint", || {
        articulation_points(&gs)
    });
    h.bench("analysis/corridor_risks_sprint", || {
        riskroute::corridor::corridor_risks(sprint, &context.hazards)
    });

    h.bench("backup/backup_paths_k3_sprint", || {
        riskroute::backup::backup_paths(&sprint_planner, sprint, black_box(0), black_box(9), 3)
    });
    h.bench("backup/lfa_next_hops_sprint", || {
        riskroute::backup::lfa_next_hops(&sprint_planner, sprint, black_box(9))
    });

    let advisories = advisories_for(Storm::Sandy);
    let text = advisories[40].to_text();
    let dt = context
        .corpus
        .network("Deutsche Telekom")
        .expect("DT in corpus");
    let dt_planner = context.planner_for(dt, RiskWeights::PAPER);
    h.bench("forecast/parse_advisory_text", || {
        ForecastRisk::from_advisory_text(black_box(&text))
    });
    h.slow().bench("forecast/replay_sandy_dt_stride8", || {
        replay_storm(&dt_planner.clone(), dt, Storm::Sandy, 8)
    });
    let pair = &advisories[40..42];
    h.bench("forecast/project_24h", || {
        riskroute_forecast::project(&pair[0], &pair[1], 24.0)
    });
}
