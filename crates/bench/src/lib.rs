//! Experiment harness support for the RiskRoute reproduction.
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper's evaluation (see `DESIGN.md` for the index); this library holds
//! the shared experiment context (corpus, population, hazards — all
//! deterministic under [`MASTER_SEED`]), plain-text table rendering, and
//! result-file plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;
pub mod table;

pub use context::{ExperimentContext, MASTER_SEED};
pub use table::TextTable;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Directory experiment outputs are written to (repo-relative).
pub const RESULTS_DIR: &str = "results";

/// Write `content` to `results/<name>.txt` and echo it to stdout.
///
/// # Panics
/// Panics on I/O errors — the harness has nothing sensible to do without
/// its output directory.
pub fn emit(name: &str, content: &str) {
    let dir = PathBuf::from(RESULTS_DIR);
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{name}.txt"));
    let mut f = fs::File::create(&path).expect("create result file");
    f.write_all(content.as_bytes()).expect("write result file");
    println!("── {name} ──────────────────────────────────────────");
    println!("{content}");
    println!("(written to {})", path.display());
}

/// Write `content` to `results/<filename>` verbatim (no `.txt` suffix, no
/// stdout echo) — for machine-readable artifacts such as
/// `BENCH_sssp.json`.
///
/// # Panics
/// Panics on I/O errors, like [`emit`].
pub fn emit_named(filename: &str, content: &str) {
    let dir = PathBuf::from(RESULTS_DIR);
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(filename);
    let mut f = fs::File::create(&path).expect("create result file");
    f.write_all(content.as_bytes()).expect("write result file");
    println!("(written to {})", path.display());
}
