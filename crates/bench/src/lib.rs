//! Experiment harness support for the RiskRoute reproduction.
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper's evaluation (see `DESIGN.md` for the index); this library holds
//! the shared experiment context (corpus, population, hazards — all
//! deterministic under [`MASTER_SEED`]), plain-text table rendering, and
//! result-file plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;
pub mod table;

pub use context::{ExperimentContext, MASTER_SEED};
pub use table::TextTable;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Directory experiment outputs are written to (repo-relative).
pub const RESULTS_DIR: &str = "results";

/// Write `content` to `results/<name>.txt` and echo it to stdout.
///
/// # Panics
/// Panics on I/O errors — the harness has nothing sensible to do without
/// its output directory.
pub fn emit(name: &str, content: &str) {
    let dir = PathBuf::from(RESULTS_DIR);
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{name}.txt"));
    let mut f = fs::File::create(&path).expect("create result file");
    f.write_all(content.as_bytes()).expect("write result file");
    println!("── {name} ──────────────────────────────────────────");
    println!("{content}");
    println!("(written to {})", path.display());
}

/// Write `content` to `results/<filename>` verbatim (no `.txt` suffix, no
/// stdout echo) — for machine-readable artifacts such as
/// `BENCH_sssp.json`.
///
/// # Panics
/// Panics on I/O errors, like [`emit`].
pub fn emit_named(filename: &str, content: &str) {
    let dir = PathBuf::from(RESULTS_DIR);
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(filename);
    let mut f = fs::File::create(&path).expect("create result file");
    f.write_all(content.as_bytes()).expect("write result file");
    println!("(written to {})", path.display());
}

/// Section titles that can follow the per-experiment table in
/// `results/timings.txt` (each introduces a free-form block appended by a
/// scaling experiment).
const TIMINGS_SECTIONS: &[&str] = &[
    "thread scaling",
    "sssp scaling",
    "fork scaling",
    "tracing overhead",
    "delta scaling",
    "scale curve",
];

/// One parsed `timings.txt`: the per-experiment table plus named sections.
struct TimingsDoc {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    sections: Vec<(String, String)>,
}

fn parse_timings(content: &str) -> TimingsDoc {
    let lines: Vec<&str> = content.lines().collect();
    // Sections are delimited by their known title lines; everything before
    // the first title is the main table.
    let mut cut_points: Vec<(usize, &str)> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if TIMINGS_SECTIONS.contains(&line.trim()) {
            cut_points.push((i, line.trim()));
        }
    }
    let main_end = cut_points.first().map_or(lines.len(), |&(i, _)| i);
    let mut header = Vec::new();
    let mut rows = Vec::new();
    for (i, line) in lines[..main_end].iter().enumerate() {
        if line.trim().is_empty() || line.trim_start().starts_with('-') {
            continue;
        }
        let cells: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        if i == 0 || header.is_empty() {
            header = cells;
        } else {
            rows.push(cells);
        }
    }
    let mut sections = Vec::new();
    for (si, &(start, title)) in cut_points.iter().enumerate() {
        let end = cut_points.get(si + 1).map_or(lines.len(), |&(i, _)| i);
        let body: String = lines[start + 1..end]
            .join("\n")
            .trim_end()
            .to_string();
        sections.push((title.to_string(), body));
    }
    TimingsDoc {
        header,
        rows,
        sections,
    }
}

/// Merge a freshly rendered timings document into the previous contents of
/// `results/timings.txt`.
///
/// Partial harness invocations (`experiments fig7`) used to clobber the
/// file, losing every other experiment's row. Instead, rows are merged
/// **per experiment name** (the first column): previous rows keep their
/// order, a rerun experiment's row is replaced in place, and new
/// experiments append. Trailing sections (`thread scaling`, `scale curve`,
/// …) merge the same way by title. The new run's header wins; stale rows
/// whose column count no longer matches are dropped.
pub fn merge_timings(old: &str, new: &str) -> String {
    let old_doc = parse_timings(old);
    let new_doc = parse_timings(new);
    let header = if new_doc.header.is_empty() {
        old_doc.header
    } else {
        new_doc.header
    };
    if header.is_empty() {
        return new.to_string();
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    for row in &old_doc.rows {
        match new_doc.rows.iter().find(|r| r[0] == row[0]) {
            Some(newer) => rows.push(newer.clone()),
            None => rows.push(row.clone()),
        }
    }
    for row in &new_doc.rows {
        if !rows.iter().any(|r| r[0] == row[0]) {
            rows.push(row.clone());
        }
    }
    rows.retain(|r| r.len() == header.len());

    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for row in &rows {
        table.row(row);
    }
    let mut out = table.render();

    let mut sections: Vec<(String, String)> = Vec::new();
    for (title, body) in &old_doc.sections {
        let body = new_doc
            .sections
            .iter()
            .find(|(t, _)| t == title)
            .map_or(body, |(_, b)| b);
        sections.push((title.clone(), body.clone()));
    }
    for (title, body) in &new_doc.sections {
        if !sections.iter().any(|(t, _)| t == title) {
            sections.push((title.clone(), body.clone()));
        }
    }
    for (title, body) in &sections {
        out.push('\n');
        out.push_str(title);
        out.push('\n');
        out.push_str(body);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn render(rows: &[(&str, &str)], sections: &[(&str, &str)]) -> String {
        let mut t = TextTable::new(&["experiment", "wall_ms"]);
        for (name, wall) in rows {
            t.row(&[(*name).to_string(), (*wall).to_string()]);
        }
        let mut out = t.render();
        for (title, body) in sections {
            out.push('\n');
            out.push_str(title);
            out.push('\n');
            out.push_str(body);
            out.push('\n');
        }
        out
    }

    #[test]
    fn rerun_replaces_row_in_place_and_appends_new() {
        let old = render(&[("fig7", "10.0"), ("fig8", "20.0")], &[]);
        let new = render(&[("fig8", "99.0"), ("table1", "5.0")], &[]);
        let merged = merge_timings(&old, &new);
        let lines: Vec<&str> = merged.lines().collect();
        // Header + rule + fig7 (kept), fig8 (replaced in place), table1.
        assert!(lines[2].starts_with("fig7"));
        assert!(lines[3].starts_with("fig8") && lines[3].ends_with("99.0"));
        assert!(lines[4].starts_with("table1"));
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn sections_merge_by_title() {
        let old = render(
            &[("fig7", "1.0")],
            &[("thread scaling", "old curve"), ("sssp scaling", "keep me")],
        );
        let new = render(&[("fig7", "2.0")], &[("thread scaling", "new curve")]);
        let merged = merge_timings(&old, &new);
        assert!(merged.contains("new curve"));
        assert!(!merged.contains("old curve"));
        assert!(merged.contains("keep me"));
        assert_eq!(merged.matches("thread scaling").count(), 1);
    }

    #[test]
    fn empty_old_passes_new_through_with_sections() {
        let new = render(&[("fig7", "1.0")], &[("scale curve", "body\n\nwith blank")]);
        let merged = merge_timings("", &new);
        assert!(merged.contains("fig7"));
        assert!(merged.contains("with blank"));
    }

    #[test]
    fn section_bodies_with_blank_lines_survive_round_trips() {
        let a = render(
            &[("fig7", "1.0")],
            &[("delta scaling", "intro text\n\nseg  wall\n----\nrow  1")],
        );
        let merged_once = merge_timings("", &a);
        let merged_twice = merge_timings(&merged_once, &a);
        assert_eq!(merged_once, merged_twice, "merge must be idempotent");
    }
}
