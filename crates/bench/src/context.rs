//! The shared experiment context.

use riskroute::prelude::*;
use riskroute_hazard::HistoricalRisk;
use riskroute_population::{PopulationModel, PAPER_BLOCK_COUNT};
use riskroute_topology::Corpus;

/// The master seed for every experiment: all tables and figures regenerate
/// bit-identically from it.
pub const MASTER_SEED: u64 = 42;

/// Everything the experiments share: the 23-network corpus, the census
/// block model, and the five-corpus hazard model.
pub struct ExperimentContext {
    /// The 23 synthesized networks plus Figure-2 peering.
    pub corpus: Corpus,
    /// Synthetic census blocks (paper count: 215,932).
    pub population: PopulationModel,
    /// The aggregate historical risk model (full paper event counts).
    pub hazards: HistoricalRisk,
}

impl ExperimentContext {
    /// Build the full-scale context (paper-sized corpora; a few seconds).
    pub fn standard() -> Self {
        ExperimentContext {
            corpus: Corpus::standard(MASTER_SEED),
            population: PopulationModel::synthesize(MASTER_SEED, PAPER_BLOCK_COUNT),
            hazards: HistoricalRisk::standard(MASTER_SEED, Some(20_000)),
        }
    }

    /// A reduced-scale context for smoke tests and benches.
    pub fn reduced() -> Self {
        ExperimentContext {
            corpus: Corpus::standard(MASTER_SEED),
            population: PopulationModel::synthesize(MASTER_SEED, 5_000),
            hazards: HistoricalRisk::standard(MASTER_SEED, Some(1_000)),
        }
    }

    /// Intradomain planner for a corpus network under `weights`.
    pub fn planner_for(&self, network: &Network, weights: RiskWeights) -> Planner {
        Planner::for_network(network, &self.population, &self.hazards, weights)
    }
}
