//! Plain-text table rendering for experiment outputs.

/// A simple fixed-width text table: header row plus data rows, columns
/// auto-sized, rendered with a separator rule under the header.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render: first column left-aligned, the rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", c, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimal places.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["Name", "Value"]);
        t.row(&["alpha".into(), f(1.5, 2)]);
        t.row(&["beta-long-name".into(), f(22.0, 2)]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].ends_with("1.50"));
        assert!(lines[3].ends_with("22.00"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["A", "B"]);
        t.row(&["only-one".into()]);
    }
}
