//! Ablation 5 — §3.1 deployability: how much of exact RiskRoute does a
//! plain OSPF domain capture when its link weights are the risk-aware
//! composite metric? (OSPF carries one weight per link; Eq. 1's β varies
//! per flow, so the single metric is an approximation.)

use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext};
use riskroute::ospf::{evaluate_ospf, mean_impact, risk_aware_weights};
use riskroute::prelude::*;

/// Run the OSPF-deployability ablation.
pub fn run(ctx: &ExperimentContext) {
    let mut t = TextTable::new(&[
        "Network",
        "Exact RR",
        "OSPF RR",
        "captured",
        "path fidelity",
        "mean excess bit-risk",
    ]);
    let mut captured_all = Vec::new();
    for net in &ctx.corpus.tier1 {
        let planner = ctx.planner_for(net, RiskWeights::historical_only(1e5));
        let exact = planner.ratio_report();
        let weights = risk_aware_weights(net, &planner, mean_impact(&planner));
        let eval = evaluate_ospf(net, &planner, &weights);
        let captured = if exact.risk_reduction_ratio > 1e-9 {
            eval.report.risk_reduction_ratio / exact.risk_reduction_ratio
        } else {
            1.0
        };
        captured_all.push(captured);
        t.row(&[
            net.name().to_string(),
            f(exact.risk_reduction_ratio, 3),
            f(eval.report.risk_reduction_ratio, 3),
            format!("{:.0}%", 100.0 * captured),
            f(eval.path_fidelity, 3),
            format!("{:.2}%", 100.0 * eval.mean_excess_bit_risk),
        ]);
    }
    let mut out = String::from(
        "Ablation 5: risk-aware OSPF link weights vs exact per-pair RiskRoute \
         (lambda_h = 1e5; beta_ref = network mean impact)\n\n",
    );
    out.push_str(&t.render());
    let mean_captured = captured_all.iter().sum::<f64>() / captured_all.len() as f64;
    out.push_str(&format!(
        "\nMean captured risk reduction across Tier-1s: {:.0}%\n",
        100.0 * mean_captured
    ));
    out.push_str(
        "Reading: a single static link metric — deployable in any OSPF/IS-IS \
         domain today, as §3.1 proposes — retains most of RiskRoute's risk \
         reduction; the residual gap is the per-flow impact factor the \
         protocol cannot express.\n",
    );
    emit("ablation5_ospf", &out);
}
