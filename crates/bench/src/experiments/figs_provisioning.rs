//! Figures 9 and 10 — link provisioning: the ten best additional links for
//! three Tier-1 networks, and the bit-risk decay as up to eight links are
//! added to each Tier-1 network.

use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext};
use riskroute::prelude::*;
use riskroute::provisioning::{greedy_links, GreedyLinks};
use riskroute_population::PopShares;
use riskroute_topology::Network;

fn greedy_for(ctx: &ExperimentContext, net: &Network, k: usize) -> GreedyLinks {
    let planner = ctx.planner_for(net, RiskWeights::historical_only(1e5));
    // PoP positions never change during augmentation, so risk vectors and
    // shares are reused verbatim by the rebuild hook.
    let risk = planner.risk().clone();
    let shares = PopShares::from_shares(planner.shares().shares().to_vec());
    let weights = planner.weights();
    greedy_links(net, &planner, k, move |augmented| {
        Planner::new(augmented, risk.clone(), shares.clone(), weights)
    })
}

/// Figure 9 — the ten best additional links for Level3, AT&T, and Tinet.
pub fn run_fig9(ctx: &ExperimentContext) {
    let mut out = String::from(
        "Figure 9: ten best additional links per network (greedy, Eq. 4). The \
         Filter column shows the footnote-3 shortcut threshold each link \
         passed; well-meshed maps relax below the paper's 50% when no \
         stretch-2 pair exists.\n",
    );
    for name in ["Level3", "AT&T", "Tinet"] {
        let net = ctx.corpus.network(name).expect("corpus member");
        let result = greedy_for(ctx, net, 10);
        out.push_str(&format!(
            "\n{name} (original total bit-risk: {:.3e}):\n",
            result.original_bit_risk
        ));
        let mut t = TextTable::new(&[
            "#",
            "Link",
            "Length (mi)",
            "Total bit-risk after",
            "Fraction of original",
            "Filter",
        ]);
        for (i, link) in result.added.iter().enumerate() {
            t.row(&[
                (i + 1).to_string(),
                format!(
                    "{} <-> {}",
                    net.pops()[link.a].name,
                    net.pops()[link.b].name
                ),
                f(link.miles, 0),
                format!("{:.3e}", link.total_bit_risk),
                f(link.total_bit_risk / result.original_bit_risk, 4),
                format!(">{:.0}%", 100.0 * link.shortcut_threshold),
            ]);
        }
        if t.is_empty() {
            out.push_str("  (no candidate links at any ladder threshold)\n");
        } else {
            out.push_str(&t.render());
        }
    }
    emit("fig09_best_links", &out);
}

/// Figure 10 — fraction of original bit-risk miles vs number of added
/// links, for all seven Tier-1 networks.
pub fn run_fig10(ctx: &ExperimentContext) {
    const K: usize = 8;
    let mut out = String::from(
        "Figure 10: estimated risk reduction with added links \
         (fraction of original bit-risk miles)\n\n",
    );
    let mut header: Vec<String> = vec!["Network".to_string()];
    header.extend((1..=K).map(|i| format!("+{i}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);
    let mut series_per_net = Vec::new();
    for net in &ctx.corpus.tier1 {
        let result = greedy_for(ctx, net, K);
        let series = result.fraction_series();
        let mut cells = vec![net.name().to_string()];
        for i in 0..K {
            cells.push(series.get(i).map_or("-".to_string(), |v| f(*v, 4)));
        }
        t.row(&cells);
        series_per_net.push((net.name().to_string(), series));
    }
    out.push_str(&t.render());
    out.push_str("\nShape checks:\n");
    for (name, series) in &series_per_net {
        let monotone = series.windows(2).all(|w| w[1] <= w[0] + 1e-12);
        out.push_str(&format!(
            "  {name}: monotone non-increasing: {monotone}; final fraction: {}\n",
            series.last().map_or("-".to_string(), |v| f(*v, 4))
        ));
    }
    let level3_final = series_per_net
        .iter()
        .find(|(n, _)| n == "Level3")
        .and_then(|(_, s)| s.last().copied())
        .unwrap_or(1.0);
    let best_other = series_per_net
        .iter()
        .filter(|(n, _)| n != "Level3")
        .filter_map(|(_, s)| s.last().copied())
        .fold(1.0_f64, f64::min);
    out.push_str(&format!(
        "  Level3 improves least (paper attributes this to its high existing \
         connectivity; here its stub-dominated access tier leaves little for \
         single links to fix): final {} vs best other {}\n",
        f(level3_final, 4),
        f(best_other, 4)
    ));
    emit("fig10_link_decay", &out);
}
