//! Figure 11 — the best additional peering relationship for each regional
//! network (§6.3): candidate peers are co-located, un-peered networks; the
//! winner minimizes the lower-bound bit-risk miles of the regional
//! network's interdomain RiskRoute paths.

use crate::table::TextTable;
use crate::{emit, ExperimentContext};
use riskroute::interdomain::InterdomainAnalysis;
use riskroute::peering::score_peerings;
use riskroute::prelude::*;
use riskroute_topology::colocation::DEFAULT_COLOCATION_MILES;
use riskroute_topology::Network;
use std::collections::HashMap;

/// Run the Figure-11 experiment.
pub fn run(ctx: &ExperimentContext) {
    let networks: Vec<&Network> = ctx.corpus.all_networks().collect();
    let analysis = InterdomainAnalysis::new(
        &networks,
        &ctx.corpus.peering,
        &ctx.population,
        &ctx.hazards,
        RiskWeights::historical_only(1e5),
    );
    let regional_names: Vec<&str> = ctx.corpus.regional.iter().map(|n| n.name()).collect();
    let mut dests = Vec::new();
    for name in &regional_names {
        dests.extend(
            analysis
                .topology()
                .pops_of(name)
                .expect("regional in merged topology"),
        );
    }

    let mut t = TextTable::new(&[
        "Regional network",
        "Best new peer",
        "Hand-off sites",
        "Runner-up",
    ]);
    let mut winners: HashMap<String, usize> = HashMap::new();
    for regional in &ctx.corpus.regional {
        let sources = analysis
            .topology()
            .pops_of(regional.name())
            .expect("regional in merged topology");
        let scored = score_peerings(
            &analysis,
            regional,
            &networks,
            &ctx.corpus.peering,
            DEFAULT_COLOCATION_MILES,
            &sources,
            &dests,
        );
        match scored.first() {
            Some(best) => {
                *winners.entry(best.peer.clone()).or_default() += 1;
                t.row(&[
                    regional.name().to_string(),
                    best.peer.clone(),
                    best.handoff_count.to_string(),
                    scored.get(1).map_or("-".to_string(), |s| s.peer.clone()),
                ]);
            }
            None => {
                t.row(&[
                    regional.name().to_string(),
                    "(no candidate)".to_string(),
                    "0".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    let mut out =
        String::from("Figure 11: best additional peering relationship per regional network\n\n");
    out.push_str(&t.render());
    let mut tally: Vec<(&String, &usize)> = winners.iter().collect();
    tally.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    out.push_str("\nWinner tally: ");
    out.push_str(
        &tally
            .iter()
            .map(|(n, c)| format!("{n} x{c}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str(
        "\n\nShape check (paper): a majority of regional networks pick one of a \
         small set of well-placed Tier-1s (AT&T / Tinet in the paper).\n",
    );
    let tier1_wins: usize = tally
        .iter()
        .filter(|(n, _)| riskroute_topology::peering::TIER1_NAMES.contains(&n.as_str()))
        .map(|(_, c)| *c)
        .sum();
    out.push_str(&format!(
        "Tier-1 networks win {tier1_wins} of {} decided recommendations\n",
        tally.iter().map(|(_, c)| *c).sum::<usize>()
    ));
    emit("fig11_best_peering", &out);
}
