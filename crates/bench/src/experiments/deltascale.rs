//! Delta-invalidation scaling: edge-scoped cost stamps and incremental
//! SSSP repair on the replay workload.
//!
//! A fig12/fig13-shaped hurricane replay (advisory-by-advisory, the
//! sequential path where each tick's forecast deltas against the previous
//! tick's) is run twice: with blanket invalidation
//! (`--no-delta-invalidation` — every forecast change retires the whole
//! route-tree cache) and with the edge-delta machinery (changed-node log,
//! tree survival, incremental repair). The tick series are asserted
//! byte-identical before any timing is trusted, and the run fails if the
//! delta path does not actually reduce scratch SSSP runs — the regression
//! guard that keeps the machinery from silently degrading to blanket
//! invalidation.
//!
//! Each segment's wall time, tick rate, and counter deltas are rendered as
//! a text table and written machine-readable to `results/BENCH_delta.json`.

use std::time::Instant;

use crate::{emit, emit_named, ExperimentContext, TextTable};
use riskroute::prelude::*;
use riskroute::replay::replay_storm;
use riskroute_json::Json;

/// Advisory stride: every 2nd advisory keeps the tick series long enough
/// to show the steady-state delta win without dominating bench wall time.
const STRIDE: usize = 2;

/// One measured replay segment.
struct Segment {
    name: &'static str,
    wall_ms: f64,
    ticks: usize,
    sssp_runs: u64,
    sssp_repairs: u64,
    trees_survived: u64,
    changed_edges: u64,
}

impl Segment {
    fn ticks_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.ticks as f64 / (self.wall_ms / 1e3)
        }
    }
}

/// Run `work` and report the wall time plus the obs-counter deltas it
/// produced. Non-destructive: the enclosing harness row still sees the
/// experiment's aggregate counters.
fn measure<T>(name: &'static str, work: impl FnOnce() -> T) -> (Segment, T) {
    let counter = |snap: &riskroute_obs::MetricsSnapshot, n: &str| {
        snap.counters.get(n).copied().unwrap_or(0)
    };
    let before = riskroute_obs::snapshot();
    let start = Instant::now();
    let out = work();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = riskroute_obs::snapshot();
    let delta = |n: &str| counter(&after, n).saturating_sub(counter(&before, n));
    (
        Segment {
            name,
            wall_ms,
            ticks: 0,
            sssp_runs: delta("risk_sssp_runs"),
            sssp_repairs: delta("sssp_repairs"),
            trees_survived: delta("trees_survived_delta"),
            changed_edges: delta("changed_edges"),
        },
        out,
    )
}

/// Regenerate the delta-scaling table; returns the rendered rows so the
/// harness can append them to `results/timings.txt`.
pub fn run(ctx: &ExperimentContext) -> String {
    let net = ctx
        .corpus
        .network("Telepak")
        .unwrap_or_else(|| unreachable!("the standard corpus includes Telepak"));
    let weights = RiskWeights::PAPER;

    let off_planner = ctx.planner_for(net, weights).with_delta_invalidation(false);
    let (mut off, replay_off) = measure("replay delta-off", || {
        replay_storm(&off_planner, net, Storm::Katrina, STRIDE).expect("valid replay args")
    });
    off.ticks = replay_off.ticks.len();

    let on_planner = ctx.planner_for(net, weights);
    let (mut on, replay_on) = measure("replay delta-on", || {
        replay_storm(&on_planner, net, Storm::Katrina, STRIDE).expect("valid replay args")
    });
    on.ticks = replay_on.ticks.len();

    assert_eq!(
        replay_off, replay_on,
        "delta invalidation changed the replay tick series"
    );
    // Regression guard: the delta path must actually skip scratch SSSPs,
    // not silently degrade to blanket invalidation.
    assert!(
        on.sssp_runs < off.sssp_runs,
        "delta path ran {} scratch SSSPs, blanket baseline ran {} — \
         the changed-edge machinery is not engaging",
        on.sssp_runs,
        off.sssp_runs,
    );
    assert!(
        on.sssp_repairs + on.trees_survived > 0,
        "delta replay neither repaired nor preserved a single tree"
    );

    let segments = [off, on];
    let mut t = TextTable::new(&[
        "segment",
        "wall_ms",
        "ticks/s",
        "sssp_runs",
        "repairs",
        "survived",
        "changed_edges",
    ]);
    for s in &segments {
        t.row(&[
            s.name.to_string(),
            format!("{:.1}", s.wall_ms),
            format!("{:.1}", s.ticks_per_sec()),
            s.sssp_runs.to_string(),
            s.sssp_repairs.to_string(),
            s.trees_survived.to_string(),
            s.changed_edges.to_string(),
        ]);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Delta-invalidation scaling: Hurricane Katrina replay on {} \
         ({} PoPs, every {}th advisory, {} ticks).\n\
         Tick series verified byte-identical delta on/off; the delta path \
         must run strictly fewer scratch SSSPs.\n\n",
        net.name(),
        net.pop_count(),
        STRIDE,
        segments[0].ticks,
    ));
    out.push_str(&t.render());

    let rows: Vec<Json> = segments
        .iter()
        .map(|s| {
            Json::obj([
                ("experiment", Json::Str(s.name.to_string())),
                ("wall_ms", Json::Num(s.wall_ms)),
                ("ticks", Json::Num(s.ticks as f64)),
                ("ticks_per_sec", Json::Num(s.ticks_per_sec())),
                ("sssp_runs", Json::Num(s.sssp_runs as f64)),
                ("sssp_repairs", Json::Num(s.sssp_repairs as f64)),
                (
                    "trees_survived_delta",
                    Json::Num(s.trees_survived as f64),
                ),
                ("changed_edges", Json::Num(s.changed_edges as f64)),
            ])
        })
        .collect();
    emit_named(
        "BENCH_delta.json",
        &format!("{}\n", Json::Arr(rows).to_string_pretty()),
    );

    emit("deltascale", &out);
    out
}
