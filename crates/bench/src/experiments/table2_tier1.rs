//! Table 2 — Tier-1 risk-reduction / distance-increase ratios at
//! λ_h ∈ {10⁵, 10⁶} (historical risk only, no forecast).

use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext};
use riskroute::prelude::*;

/// Paper values for the side-by-side comparison:
/// (network, rr@1e5, dr@1e5, rr@1e6, dr@1e6).
pub const PAPER_TABLE2: &[(&str, f64, f64, f64, f64)] = &[
    ("Level3", 0.075, 0.015, 0.258, 0.136),
    ("AT&T", 0.207, 0.045, 0.340, 0.168),
    ("Deutsche Telekom", 0.245, 0.130, 0.384, 0.446),
    ("NTT", 0.187, 0.040, 0.295, 0.127),
    ("Sprint", 0.222, 0.079, 0.352, 0.191),
    ("Tinet", 0.177, 0.045, 0.347, 0.195),
    ("Teliasonera", 0.223, 0.068, 0.336, 0.226),
];

/// Run the Table-2 experiment.
pub fn run(ctx: &ExperimentContext) {
    let mut t = TextTable::new(&[
        "Network",
        "PoPs",
        "RR@1e5",
        "DR@1e5",
        "RR@1e6",
        "DR@1e6",
        "paper RR@1e5",
        "paper RR@1e6",
    ]);
    let mut measured = Vec::new();
    for net in &ctx.corpus.tier1 {
        let mut cells = vec![net.name().to_string(), net.pop_count().to_string()];
        let mut rrs = Vec::new();
        // Shares and risk vectors are λ-independent: build once, reweight.
        let mut planner = ctx.planner_for(net, RiskWeights::historical_only(1e5));
        for lambda in [1e5, 1e6] {
            planner.set_weights(RiskWeights::historical_only(lambda));
            let r = planner.ratio_report();
            cells.push(f(r.risk_reduction_ratio, 3));
            cells.push(f(r.distance_increase_ratio, 3));
            rrs.push(r.risk_reduction_ratio);
        }
        let paper = PAPER_TABLE2
            .iter()
            .find(|p| p.0 == net.name())
            .expect("paper row exists");
        cells.push(f(paper.1, 3));
        cells.push(f(paper.3, 3));
        t.row(&cells);
        measured.push((net.name().to_string(), rrs[0], rrs[1]));
    }

    let mut out =
        String::from("Table 2: Tier-1 bit-risk vs bit-mile trade-off (historical risk only)\n\n");
    out.push_str(&t.render());
    out.push_str("\nShape checks:\n");
    let monotone = measured.iter().all(|(_, a, b)| b >= a);
    out.push_str(&format!(
        "  larger lambda_h -> larger risk reduction for every network: {monotone}\n"
    ));
    let level3 = measured.iter().find(|(n, _, _)| n == "Level3").unwrap().1;
    let below = measured
        .iter()
        .filter(|(n, rr, _)| n != "Level3" && *rr < level3)
        .count();
    out.push_str(&format!(
        "  Level3 (largest network) has the smallest/near-smallest RR@1e5: \
         {below} of 6 others below it\n"
    ));
    emit("table2_tier1", &out);
}
