//! Scenario-fork scaling: copy-on-write forks vs rebuilding the planner.
//!
//! Runs the full N-1 sweep (every node, then every link) on the largest
//! corpus network (Level3) three ways:
//!
//! 1. **Fork engine**: [`riskroute::scenario::run_sweep`] — each scenario
//!    is a copy-on-write fork of the base planner that masks the CSR
//!    snapshot in place and adopts every base route tree the failure
//!    provably cannot touch.
//! 2. **Rebuild, risk reused**: a fresh `Network` + `Planner` per
//!    scenario with the base risk/share vectors cloned — the charitable
//!    hand-rolled alternative.
//! 3. **Full rebuild**: `Planner::for_network` per scenario, re-deriving
//!    risk (hazard KDE) and population shares from the substrate — what
//!    "rebuild the planner" means through the public API. This one costs
//!    seconds per scenario, so it is measured over an evenly spaced
//!    sample and extrapolated (the JSON labels the estimate as such).
//!
//! The per-scenario exposures are asserted byte-identical before any
//! timing is trusted. Wall time, SSSP counts, fork throughput, and the
//! cache-reuse ratio land in a text table and, machine-readable, in
//! `results/BENCH_fork.json`.

use std::time::Instant;

use crate::{emit, emit_named, ExperimentContext, TextTable};
use riskroute::prelude::*;
use riskroute::scenario::{scenario_specs, ExposureReport, ScenarioSpec};
use riskroute::FailElement;
use riskroute_json::Json;
use riskroute_population::PopShares;
use riskroute_topology::Network;

/// How many scenarios the full-`Planner::for_network` rebuild segment
/// measures directly (evenly spaced over the spec list, so it samples
/// both node and link failures). Each one costs seconds, which is why
/// this segment extrapolates instead of running all scenarios.
const FULL_REBUILD_SAMPLES: usize = 4;

/// One measured segment: wall time plus obs-counter deltas.
struct Segment {
    name: &'static str,
    wall_ms: f64,
    sssp_runs: u64,
    forks_created: u64,
    forks_reused: u64,
    trees_adopted: u64,
}

fn measure<T>(name: &'static str, work: impl FnOnce() -> T) -> (Segment, T) {
    let counter = |snap: &riskroute_obs::MetricsSnapshot, n: &str| {
        snap.counters.get(n).copied().unwrap_or(0)
    };
    let before = riskroute_obs::snapshot();
    let start = Instant::now();
    let out = work();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = riskroute_obs::snapshot();
    let delta = |n: &str| counter(&after, n).saturating_sub(counter(&before, n));
    (
        Segment {
            name,
            wall_ms,
            sssp_runs: delta("risk_sssp_runs"),
            forks_created: delta("forks_created"),
            forks_reused: delta("forks_reused_cache"),
            trees_adopted: delta("scenario_trees_adopted"),
        },
        out,
    )
}

/// The topology a failed element leaves behind: same PoPs, surviving
/// links only (a failed node keeps its PoP entry but loses every
/// incident link, which is how the fork engine models it too).
fn masked_network(net: &Network, e: FailElement) -> Network {
    let keep = |a: usize, b: usize| match e {
        FailElement::Node(v) => a != v && b != v,
        FailElement::Link(x, y) => !(a.min(b) == x && a.max(b) == y),
    };
    let keep_pairs: Vec<(usize, usize)> = net
        .links()
        .iter()
        .filter(|l| keep(l.a, l.b))
        .map(|l| (l.a, l.b))
        .collect();
    Network::new(net.name(), net.kind(), net.pops().to_vec(), keep_pairs)
        .expect("masking an existing topology keeps it valid")
}

/// The charitable no-fork baseline: rebuild `Network` + `Planner` per
/// scenario but clone the base risk/share vectors instead of re-deriving
/// them. Cheap enough to run for every scenario, which is what makes the
/// full byte-identity sweep affordable.
fn riskreuse_exposure(net: &Network, base: &Planner, e: FailElement) -> ExposureReport {
    let rebuilt = Planner::new(
        &masked_network(net, e),
        base.risk().clone(),
        PopShares::from_shares(base.shares().shares().to_vec()),
        base.weights(),
    );
    riskroute::base_exposure(&rebuilt)
}

fn spec_element(spec: &ScenarioSpec) -> FailElement {
    let ScenarioSpec::One(e) = spec else {
        unreachable!("N-1 emits only single-element specs")
    };
    *e
}

/// Regenerate the fork-scaling table; returns the rendered rows so the
/// harness can append them to `results/timings.txt`.
pub fn run(ctx: &ExperimentContext) -> String {
    let net = ctx
        .corpus
        .all_networks()
        .max_by_key(|n| n.pop_count())
        .unwrap_or_else(|| unreachable!("the standard corpus is never empty"));
    let weights = RiskWeights::historical_only(1e5);
    let planner = ctx.planner_for(net, weights);
    let specs = scenario_specs(net, SweepMode::N1);

    let (fork, outcome) = measure("n1 fork-engine", || {
        run_sweep(&planner, net, SweepMode::N1).expect("N-1 sweep on a corpus network")
    });
    let (riskreuse, rebuilt) = measure("n1 rebuild-riskreuse", || {
        specs
            .iter()
            .map(|spec| riskreuse_exposure(net, &planner, spec_element(spec)))
            .collect::<Vec<_>>()
    });

    assert_eq!(outcome.records.len(), rebuilt.len());
    for (rec, exp) in outcome.records.iter().zip(&rebuilt) {
        assert_eq!(
            rec.exposure, *exp,
            "fork diverged from the risk-reusing rebuild at {}",
            rec.label
        );
    }

    // The honest naive baseline — `Planner::for_network` per scenario —
    // re-derives the hazard KDE and population shares every time and
    // costs seconds per scenario, so it runs on an evenly spaced sample
    // and is extrapolated. Risk and shares depend only on PoP locations
    // (unchanged by masking), so its exposures are still asserted
    // byte-identical against the fork records they sample.
    let sample: Vec<usize> = (0..FULL_REBUILD_SAMPLES)
        .map(|i| i * specs.len() / FULL_REBUILD_SAMPLES)
        .collect();
    let (full, full_exposures) = measure("n1 rebuild-full", || {
        sample
            .iter()
            .map(|&i| {
                let masked = masked_network(net, spec_element(&specs[i]));
                let rebuilt = ctx.planner_for(&masked, weights);
                riskroute::base_exposure(&rebuilt)
            })
            .collect::<Vec<_>>()
    });
    for (&i, exp) in sample.iter().zip(&full_exposures) {
        assert_eq!(
            outcome.records[i].exposure, *exp,
            "fork diverged from the full planner rebuild at {}",
            outcome.records[i].label
        );
    }

    let scenarios = outcome.records.len();
    let full_per_scenario_ms = full.wall_ms / sample.len() as f64;
    let full_est_wall_ms = full_per_scenario_ms * scenarios as f64;
    let speedup = full_est_wall_ms / fork.wall_ms.max(1e-9);
    let speedup_risk_reuse = riskreuse.wall_ms / fork.wall_ms.max(1e-9);
    let forks_per_sec = scenarios as f64 / (fork.wall_ms / 1e3).max(1e-9);
    let reuse_ratio = if fork.forks_created == 0 {
        0.0
    } else {
        fork.forks_reused as f64 / fork.forks_created as f64
    };

    let mut t = TextTable::new(&[
        "segment",
        "scenarios",
        "wall_ms",
        "sssp_runs",
        "forks",
        "scen_per_sec",
    ]);
    for (s, count) in [
        (&fork, scenarios),
        (&riskreuse, scenarios),
        (&full, sample.len()),
    ] {
        let per_sec = count as f64 / (s.wall_ms / 1e3).max(1e-9);
        t.row(&[
            s.name.to_string(),
            count.to_string(),
            format!("{:.1}", s.wall_ms),
            s.sssp_runs.to_string(),
            s.forks_created.to_string(),
            format!("{per_sec:.0}"),
        ]);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Scenario-fork scaling: full N-1 sweep on {} ({} PoPs, {} links, \
         {scenarios} scenarios).\n\
         Exposures verified byte-identical: fork-engine vs risk-reusing \
         rebuild (all {scenarios}) and vs full planner rebuild (sample of \
         {}).\n\
         speedup vs full per-scenario planner rebuild {speedup:.0}x \
         (measured {full_per_scenario_ms:.0} ms/scenario over the sample, \
         extrapolated to {full_est_wall_ms:.0} ms); vs risk-reusing \
         rebuild {speedup_risk_reuse:.1}x.\n\
         {forks_per_sec:.0} forks/sec, cache-reuse ratio {reuse_ratio:.3}, \
         {} route trees adopted\n\n",
        net.name(),
        net.pop_count(),
        net.link_count(),
        sample.len(),
        fork.trees_adopted,
    ));
    out.push_str(&t.render());

    let json = Json::obj([
        ("network", Json::Str(net.name().to_string())),
        ("pops", Json::Num(net.pop_count() as f64)),
        ("links", Json::Num(net.link_count() as f64)),
        ("scenarios", Json::Num(scenarios as f64)),
        ("fork_wall_ms", Json::Num(fork.wall_ms)),
        ("rebuild_riskreuse_wall_ms", Json::Num(riskreuse.wall_ms)),
        (
            "rebuild_full_sample_count",
            Json::Num(sample.len() as f64),
        ),
        (
            "rebuild_full_ms_per_scenario",
            Json::Num(full_per_scenario_ms),
        ),
        ("rebuild_full_est_wall_ms", Json::Num(full_est_wall_ms)),
        ("speedup", Json::Num(speedup)),
        ("speedup_risk_reuse", Json::Num(speedup_risk_reuse)),
        ("forks_per_sec", Json::Num(forks_per_sec)),
        ("cache_reuse_ratio", Json::Num(reuse_ratio)),
        ("fork_sssp_runs", Json::Num(fork.sssp_runs as f64)),
        (
            "riskreuse_sssp_runs",
            Json::Num(riskreuse.sssp_runs as f64),
        ),
        ("trees_adopted", Json::Num(fork.trees_adopted as f64)),
    ]);
    emit_named(
        "BENCH_fork.json",
        &format!("{}\n", json.to_string_pretty()),
    );

    emit("forkscale", &out);
    out
}
