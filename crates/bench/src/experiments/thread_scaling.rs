//! Thread-scaling curve for the all-pairs risk-SSSP sweep.
//!
//! Runs `ratio_report` (every ordered PoP pair of the largest corpus
//! network) at 1, 2, 4, and 8 workers and reports wall time plus speedup
//! relative to the sequential baseline. The parallel sweep replays the
//! sequential reduction order, so the report itself is asserted identical
//! at every worker count before the timing is trusted.

use std::time::Instant;

use riskroute::prelude::*;
use crate::{emit, ExperimentContext, TextTable};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Regenerate the scaling table; returns the rendered rows so the harness
/// can append the curve to `results/timings.txt`.
pub fn run(ctx: &ExperimentContext) -> String {
    // The largest network gives the longest per-source tasks and therefore
    // the most honest parallel-efficiency numbers.
    let net = ctx
        .corpus
        .all_networks()
        .max_by_key(|n| n.pop_count())
        .unwrap_or_else(|| unreachable!("the standard corpus is never empty"));
    let mut planner = ctx.planner_for(net, RiskWeights::historical_only(1e5));

    let mut t = TextTable::new(&["threads", "wall_ms", "speedup"]);
    let mut baseline_us: Option<u64> = None;
    let mut baseline_report: Option<RatioReport> = None;
    for workers in WORKER_COUNTS {
        planner.set_parallelism(Parallelism::from_worker_count(workers));
        let start = Instant::now();
        let report = planner.ratio_report();
        let wall_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        match &baseline_report {
            None => baseline_report = Some(report),
            Some(base) => assert_eq!(
                *base, report,
                "{workers}-worker sweep diverged from the sequential report"
            ),
        }
        let base_us = *baseline_us.get_or_insert(wall_us);
        t.row(&[
            format!("{}", planner.parallelism()),
            format!("{:.1}", wall_us as f64 / 1e3),
            format!("{:.2}x", base_us as f64 / wall_us.max(1) as f64),
        ]);
    }

    // Speedup is bounded by the host: on a single-core machine every row
    // reads ~1.0x even though the decomposition (one task per sweep
    // source) scales on real hardware. Record the bound with the curve.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str(&format!(
        "All-pairs risk-SSSP sweep on {} ({} PoPs), host has {} core(s);\n\
         report verified byte-identical at every worker count.\n\n",
        net.name(),
        net.pop_count(),
        cores
    ));
    out.push_str(&t.render());
    emit("thread_scaling", &out);
    out
}
