//! Figure 13 — regional-network disaster case studies: interdomain
//! risk-reduction time series, restricted (per §7.3) to regional networks
//! with more than 20 % of their PoPs in the storm's scope.

use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext};
use riskroute::interdomain::InterdomainAnalysis;
use riskroute::prelude::*;
use riskroute::replay::{fraction_in_storm_scope, replay_storm_over_pairs};
use riskroute_forecast::storms::ALL_STORMS;
use riskroute_geo::GeoPoint;
use riskroute_topology::Network;

/// Advisory stride (as in Figure 12).
pub const STRIDE: usize = 8;

/// §7.3's scope threshold.
pub const SCOPE_THRESHOLD: f64 = 0.2;

/// Run the Figure-13 experiment.
pub fn run(ctx: &ExperimentContext) {
    let networks: Vec<&Network> = ctx.corpus.all_networks().collect();
    let analysis = InterdomainAnalysis::new(
        &networks,
        &ctx.corpus.peering,
        &ctx.population,
        &ctx.hazards,
        RiskWeights::PAPER,
    );
    let merged_locations: Vec<GeoPoint> = analysis
        .topology()
        .merged()
        .pops()
        .iter()
        .map(|p| p.location)
        .collect();
    let regional_names: Vec<&str> = ctx.corpus.regional.iter().map(|n| n.name()).collect();
    let mut dests = Vec::new();
    for name in &regional_names {
        dests.extend(analysis.topology().pops_of(name).expect("merged member"));
    }

    let mut out = String::from(
        "Figure 13: regional-network hurricane case studies (interdomain \
         risk-reduction ratio; networks with >20% of PoPs in storm scope)\n",
    );
    for &storm in ALL_STORMS {
        out.push_str(&format!("\n=== {} ===\n", storm.name()));
        // Scope filter on the *regional network's own* PoPs.
        let in_scope: Vec<&Network> = ctx
            .corpus
            .regional
            .iter()
            .filter(|net| {
                let locs: Vec<GeoPoint> = net.pops().iter().map(|p| p.location).collect();
                fraction_in_storm_scope(&locs, storm) > SCOPE_THRESHOLD
            })
            .collect();
        if in_scope.is_empty() {
            out.push_str("(no regional network exceeds the 20% scope threshold)\n");
            continue;
        }
        let mut header = vec!["Network".to_string(), "Scope frac".to_string()];
        let mut first_labels: Option<Vec<String>> = None;
        let mut rows = Vec::new();
        for net in &in_scope {
            let sources = analysis
                .topology()
                .pops_of(net.name())
                .expect("merged member");
            let replay = replay_storm_over_pairs(
                analysis.planner(),
                net.name(),
                &merged_locations,
                storm,
                STRIDE,
                &sources,
                &dests,
            )
            .expect("valid replay args");
            if first_labels.is_none() {
                first_labels = Some(replay.ticks.iter().map(|t| t.label.clone()).collect());
            }
            let locs: Vec<GeoPoint> = net.pops().iter().map(|p| p.location).collect();
            let frac = fraction_in_storm_scope(&locs, storm);
            let mut cells = vec![net.name().to_string(), f(frac, 2)];
            for tick in &replay.ticks {
                cells.push(f(tick.report.risk_reduction_ratio, 3));
            }
            rows.push(cells);
        }
        header.extend(first_labels.expect("at least one network"));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&header_refs);
        for r in &rows {
            t.row(r);
        }
        out.push_str(&t.render());
    }
    out.push_str(
        "\nShape checks (paper): Katrina affects fewer regional networks than \
         Irene/Sandy; the replayed series diverge across networks as each \
         event persists.\n",
    );
    emit("fig13_regional_replay", &out);
}
