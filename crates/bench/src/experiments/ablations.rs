//! Ablations of the design choices DESIGN.md calls out (not in the paper;
//! they isolate what each modelling ingredient contributes).
//!
//! 1. **Impact scaling** — Eq. 1 scales risk by β(i,j) = c_i + c_j. Ablate
//!    to uniform β = 1.
//! 2. **Risk components** — historical vs forecast terms during Hurricane
//!    Sandy.
//! 3. **Shortcut filter** — sensitivity of the provisioning candidate count
//!    to the footnote-3 threshold.

use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext};
use riskroute::prelude::*;
use riskroute::provisioning::candidate_links;
use riskroute::replay::replay_storm;
use riskroute::NodeRisk;
use riskroute_geo::distance::great_circle_miles;
use riskroute_population::PopShares;

/// Ablation 1 — population-impact scaling on vs off (β = c_i + c_j vs 1).
pub fn run_impact(ctx: &ExperimentContext) {
    let mut t = TextTable::new(&[
        "Network",
        "RR (census beta)",
        "DR (census beta)",
        "RR (uniform beta=1)",
        "DR (uniform beta=1)",
    ]);
    for net in &ctx.corpus.tier1 {
        let census = ctx.planner_for(net, RiskWeights::historical_only(1e5));
        let census_r = census.ratio_report();
        // Uniform impact: every pair weighs risk identically. β = 1 matches
        // the *scale* of a small network's census β (2/N for N≈2), so use
        // the network's mean β instead to keep the comparison scale-fair:
        // shares of 1/N give β exactly 2/N for every pair.
        let uniform = Planner::new(
            net,
            NodeRisk::from_historical(net, &ctx.hazards),
            PopShares::from_shares(vec![1.0 / net.pop_count() as f64; net.pop_count()]),
            RiskWeights::historical_only(1e5),
        );
        let uniform_r = uniform.ratio_report();
        t.row(&[
            net.name().to_string(),
            f(census_r.risk_reduction_ratio, 3),
            f(census_r.distance_increase_ratio, 3),
            f(uniform_r.risk_reduction_ratio, 3),
            f(uniform_r.distance_increase_ratio, 3),
        ]);
    }
    let mut out =
        String::from("Ablation 1: census-population impact scaling vs uniform impact\n\n");
    out.push_str(&t.render());
    out.push_str(
        "\nReading: census shares concentrate impact on big-metro pairs; \
         uniform shares treat every pair alike. The gap shows how much the \
         population model shapes the aggregate ratios.\n",
    );
    emit("ablation1_impact", &out);
}

/// Ablation 2 — historical vs forecast risk contributions during Sandy.
pub fn run_forecast_components(ctx: &ExperimentContext) {
    let net = ctx.corpus.network("Level3").expect("corpus member");
    let configs: [(&str, RiskWeights); 3] = [
        ("historical only", RiskWeights::new(1e5, 0.0)),
        ("forecast only", RiskWeights::new(0.0, 1e3)),
        ("both (paper)", RiskWeights::new(1e5, 1e3)),
    ];
    let mut out = String::from(
        "Ablation 2: risk components during Hurricane Sandy (Level3, \
         peak-advisory risk-reduction ratio)\n\n",
    );
    let mut t = TextTable::new(&["Configuration", "Peak RR", "Mean RR over ticks"]);
    for (label, weights) in configs {
        let planner = ctx.planner_for(net, weights);
        let replay = replay_storm(&planner, net, Storm::Sandy, 8).expect("valid replay args");
        let peak = replay.peak().map_or(0.0, |p| p.report.risk_reduction_ratio);
        let mean: f64 = replay
            .ticks
            .iter()
            .map(|t| t.report.risk_reduction_ratio)
            .sum::<f64>()
            / replay.ticks.len() as f64;
        t.row(&[label.to_string(), f(peak, 3), f(mean, 3)]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: the forecast term only matters while the storm overlaps \
         the network (peak >> mean); the historical term provides the \
         storm-independent baseline.\n",
    );
    emit("ablation2_forecast", &out);
}

/// Ablation 3 — shortcut-filter threshold sensitivity (footnote 3 uses
/// >50 % bit-mile reduction).
pub fn run_filter_threshold(ctx: &ExperimentContext) {
    let net = ctx.corpus.network("Sprint").expect("corpus member");
    let planner = ctx.planner_for(net, RiskWeights::historical_only(1e5));
    // candidate_links hard-codes the paper's threshold; rebuild the filter
    // locally to sweep it.
    let all_candidates = candidate_links(net, &planner);
    let mut out =
        String::from("Ablation 3: provisioning candidate count vs shortcut threshold (Sprint)\n\n");
    let mut t = TextTable::new(&["Threshold (reduction >)", "Candidates"]);
    for threshold in [0.3, 0.4, 0.5, 0.6, 0.7] {
        // Re-derive with the local threshold: direct < (1-th) * current.
        let mut count = 0;
        let n = net.pop_count();
        let g = net.distance_graph();
        for i in 0..n {
            let tree = riskroute_graph::dijkstra::sssp(&g, i);
            for j in (i + 1)..n {
                if net.has_link(i, j) {
                    continue;
                }
                let direct = great_circle_miles(net.location(i), net.location(j));
                let current = tree.dist(j);
                if !current.is_finite() || direct < (1.0 - threshold) * current {
                    count += 1;
                }
            }
        }
        t.row(&[format!("{:.0}%", threshold * 100.0), count.to_string()]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nPaper threshold (50%) admits {} candidates.\n",
        all_candidates.len()
    ));
    out.push_str(
        "Reading: the candidate set shrinks steeply with the threshold; 50% \
         keeps the search focused on genuine shortcuts while excluding \
         impractical cross-country links.\n",
    );
    emit("ablation3_filter", &out);
}
