//! Table 3 — coefficient of determination (R²) between regional-network
//! characteristics and the Figure-8 interdomain ratios.

use super::fig08_regional_scatter::regional_results;
use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext};
use riskroute::NodeRisk;
use riskroute_stats::LinearFit;
use riskroute_topology::metrics::characteristics;

/// Paper values: (characteristic, R² vs risk ratio, R² vs distance ratio).
pub const PAPER_TABLE3: &[(&str, f64, f64)] = &[
    ("Geographic Footprint", 0.618, 0.243),
    ("Average PoP Risk", 0.104, 0.064),
    ("Average Outdegree", 0.116, 0.106),
    ("Number of PoPs", 0.552, 0.405),
    ("Number of Links", 0.531, 0.361),
    ("Number of Peers", 0.155, 0.002),
];

/// Run the Table-3 experiment.
pub fn run(ctx: &ExperimentContext) {
    let results = regional_results(ctx);
    // Assemble the six characteristics per regional network.
    let mut footprint = Vec::new();
    let mut avg_risk = Vec::new();
    let mut outdegree = Vec::new();
    let mut pops = Vec::new();
    let mut links = Vec::new();
    let mut peers = Vec::new();
    let mut risk_ratio = Vec::new();
    let mut dist_ratio = Vec::new();
    for (net, (name, report)) in ctx.corpus.regional.iter().zip(&results.reports) {
        assert_eq!(net.name(), name);
        let c = characteristics(net, &ctx.corpus.peering);
        let nr = NodeRisk::from_historical(net, &ctx.hazards);
        footprint.push(c.footprint_miles);
        avg_risk.push(nr.mean_historical());
        outdegree.push(c.mean_outdegree);
        pops.push(c.pop_count as f64);
        links.push(c.link_count as f64);
        peers.push(c.peer_count as f64);
        risk_ratio.push(report.risk_reduction_ratio);
        dist_ratio.push(report.distance_increase_ratio);
    }

    let rows: [(&str, &Vec<f64>); 6] = [
        ("Geographic Footprint", &footprint),
        ("Average PoP Risk", &avg_risk),
        ("Average Outdegree", &outdegree),
        ("Number of PoPs", &pops),
        ("Number of Links", &links),
        ("Number of Peers", &peers),
    ];
    let mut t = TextTable::new(&[
        "Network Characteristic",
        "Risk Ratio R2",
        "Dist Ratio R2",
        "paper Risk R2",
        "paper Dist R2",
    ]);
    let mut measured = Vec::new();
    for (name, xs) in rows {
        let r2_risk = LinearFit::fit(xs, &risk_ratio).r_squared;
        let r2_dist = LinearFit::fit(xs, &dist_ratio).r_squared;
        let paper = PAPER_TABLE3.iter().find(|p| p.0 == name).expect("row");
        t.row(&[
            name.to_string(),
            f(r2_risk, 3),
            f(r2_dist, 3),
            f(paper.1, 3),
            f(paper.2, 3),
        ]);
        measured.push((name, r2_risk));
    }
    let mut out =
        String::from("Table 3: regional network characteristics vs interdomain ratios (R2)\n\n");
    out.push_str(&t.render());
    out.push_str(
        "\nShape checks (paper): geographic footprint is the strongest \
         correlate of the risk ratio (0.618), while average outdegree and \
         peer count carry almost no signal.\n",
    );
    let footprint_r2 = measured
        .iter()
        .find(|(n, _)| *n == "Geographic Footprint")
        .map(|(_, r)| *r)
        .expect("row exists");
    let rank = measured.iter().filter(|(_, r)| *r > footprint_r2).count() + 1;
    out.push_str(&format!(
        "Footprint R2 = {footprint_r2:.3}, rank {rank} of 6 characteristics\n"
    ));
    let outdegree_r2 = measured
        .iter()
        .find(|(n, _)| *n == "Average Outdegree")
        .map(|(_, r)| *r)
        .expect("row exists");
    out.push_str(&format!(
        "Average outdegree stays weak: R2 = {outdegree_r2:.3} (paper 0.116)\n"
    ));
    out.push_str(
        "Known deviation: on the synthetic corpus, average PoP risk carries \
         more signal (and raw PoP/link counts less) than in the paper, \
         because synthesized regional footprints are anchored to fixed state \
         sets — size and geography are less entangled than in the real maps \
         (see EXPERIMENTS.md).\n",
    );
    emit("table3_regression", &out);
}
