//! One module per paper artifact; each exposes `run(&ExperimentContext)`
//! which prints the regenerated table/figure and writes it under
//! `results/`.

pub mod ablation_leadtime;
pub mod ablation_ospf;
pub mod ablations;
pub mod deltascale;
pub mod fig07_routes;
pub mod fig08_regional_scatter;
pub mod fig11_peering;
pub mod fig12_tier1_replay;
pub mod fig13_regional_replay;
pub mod figs_forecast;
pub mod figs_maps;
pub mod figs_provisioning;
pub mod forkscale;
pub mod obsscale;
pub mod scale;
pub mod ssspscale;
pub mod table1_bandwidths;
pub mod thread_scaling;
pub mod table2_tier1;
pub mod table3_regression;
