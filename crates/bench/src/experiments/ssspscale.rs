//! SSSP-engine scaling: route-tree cache and scratch-arena effectiveness.
//!
//! Two workloads exercise the engine introduced with the CSR/arena/cache
//! overhaul:
//!
//! 1. **All-pairs sweep** on the largest corpus network (Level3), run three
//!    ways — cache disabled, cache enabled from cold, and a warm repeat on
//!    the same planner. The reports are asserted byte-identical before any
//!    timing is trusted; the warm run shows the steady-state win when the
//!    cost state has not changed (replay ticks between advisories, repeated
//!    analyses).
//! 2. **Five-round greedy provisioning** on a mid-size network (Tinet),
//!    cache off vs on. With the cache, each round adopts the previous
//!    planner's still-valid route trees (strict two-sided revalidation
//!    against the new link), so later rounds re-run Dijkstra only where the
//!    added link could actually shorten something.
//!
//! Each segment's wall time, SSSP-run count, and cache hit rate are
//! measured as deltas of the `riskroute-obs` counters, rendered as a text
//! table, and also written machine-readable to `results/BENCH_sssp.json`.

use std::time::Instant;

use crate::{emit, emit_named, ExperimentContext, TextTable};
use riskroute::prelude::*;
use riskroute::provisioning::{greedy_links, GreedyLinks};
use riskroute_json::Json;
use riskroute_population::PopShares;
use riskroute_topology::Network;

/// How many greedy rounds the provisioning segment runs.
const GREEDY_ROUNDS: usize = 5;

/// One measured segment.
struct Segment {
    name: &'static str,
    wall_ms: f64,
    sssp_runs: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl Segment {
    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Run `work` and report the wall time plus the obs-counter deltas it
/// produced. Non-destructive: the enclosing harness row still sees the
/// experiment's aggregate counters.
fn measure<T>(name: &'static str, work: impl FnOnce() -> T) -> (Segment, T) {
    let counter = |snap: &riskroute_obs::MetricsSnapshot, n: &str| {
        snap.counters.get(n).copied().unwrap_or(0)
    };
    let before = riskroute_obs::snapshot();
    let start = Instant::now();
    let out = work();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = riskroute_obs::snapshot();
    let delta = |n: &str| counter(&after, n).saturating_sub(counter(&before, n));
    (
        Segment {
            name,
            wall_ms,
            sssp_runs: delta("risk_sssp_runs"),
            cache_hits: delta("route_cache_hits"),
            cache_misses: delta("route_cache_misses"),
        },
        out,
    )
}

fn greedy_for(ctx: &ExperimentContext, net: &Network, cache: bool) -> GreedyLinks {
    let planner = ctx
        .planner_for(net, RiskWeights::historical_only(1e5))
        .with_route_cache(cache);
    let risk = planner.risk().clone();
    let shares = PopShares::from_shares(planner.shares().shares().to_vec());
    let weights = planner.weights();
    greedy_links(net, &planner, GREEDY_ROUNDS, move |augmented| {
        Planner::new(augmented, risk.clone(), shares.clone(), weights)
    })
}

/// Regenerate the scaling table; returns the rendered rows so the harness
/// can append them to `results/timings.txt`.
pub fn run(ctx: &ExperimentContext) -> String {
    let sweep_net = ctx
        .corpus
        .all_networks()
        .max_by_key(|n| n.pop_count())
        .unwrap_or_else(|| unreachable!("the standard corpus is never empty"));
    let greedy_net = ctx.corpus.network("Telepak").unwrap_or(sweep_net);

    // Workload 1: all-pairs sweep, cache off / cold / warm. Planners are
    // built outside the timed closures — construction (risk-vector KDE
    // evaluation) is identical either way and not what this measures.
    let weights = RiskWeights::historical_only(1e5);
    let off_planner = ctx.planner_for(sweep_net, weights).with_route_cache(false);
    let (off, report_off) = measure("sweep cache-off", || off_planner.ratio_report());
    let warm_planner = ctx.planner_for(sweep_net, weights);
    let (cold, report_cold) = measure("sweep cache-on cold", || warm_planner.ratio_report());
    let (warm, report_warm) = measure("sweep cache-on warm", || warm_planner.ratio_report());
    assert_eq!(report_off, report_cold, "cache changed the sweep report");
    assert_eq!(report_off, report_warm, "warm repeat changed the sweep report");

    // Workload 2: five-round greedy provisioning, cache off vs on.
    let (goff, picks_off) = measure("greedy-5 cache-off", || greedy_for(ctx, greedy_net, false));
    let (gon, picks_on) = measure("greedy-5 cache-on", || greedy_for(ctx, greedy_net, true));
    assert_eq!(
        picks_off.added, picks_on.added,
        "cache changed the greedy pick sequence"
    );

    let segments = [off, cold, warm, goff, gon];
    let mut t = TextTable::new(&["segment", "wall_ms", "sssp_runs", "cache_hit_rate"]);
    for s in &segments {
        t.row(&[
            s.name.to_string(),
            format!("{:.1}", s.wall_ms),
            s.sssp_runs.to_string(),
            format!("{:.3}", s.hit_rate()),
        ]);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "SSSP engine scaling: all-pairs sweep on {} ({} PoPs) and {}-round \
         greedy provisioning on {} ({} PoPs).\n\
         Reports and pick sequences verified byte-identical cache on/off.\n\n",
        sweep_net.name(),
        sweep_net.pop_count(),
        GREEDY_ROUNDS,
        greedy_net.name(),
        greedy_net.pop_count(),
    ));
    out.push_str(&t.render());

    let rows: Vec<Json> = segments
        .iter()
        .map(|s| {
            Json::obj([
                ("experiment", Json::Str(s.name.to_string())),
                ("wall_ms", Json::Num(s.wall_ms)),
                ("sssp_runs", Json::Num(s.sssp_runs as f64)),
                ("cache_hit_rate", Json::Num(s.hit_rate())),
            ])
        })
        .collect();
    emit_named(
        "BENCH_sssp.json",
        &format!("{}\n", Json::Arr(rows).to_string_pretty()),
    );

    emit("ssspscale", &out);
    out
}
