//! Continental-scale benchmark: size-vs-wall-time for the 10k-PoP path.
//!
//! Three measurements, each with a machine-checked regression guard:
//!
//! 1. **Synthesis curve** — `riskroute synth` topologies at 1k/3k/10k PoPs
//!    (the generator handles 100k; the curve stops at 10k to keep harness
//!    wall time sane).
//! 2. **Sampled pair sweep on the 10k-PoP network** — 48 seeded PoP pairs
//!    routed with the bucket-queue frontier off and on (route-tree cache
//!    disabled so every run exercises raw SSSP). Outcomes are asserted
//!    identical before any timing is trusted, then the bucket path must be
//!    strictly faster (best of [`TIMING_ROUNDS`]).
//! 3. **Binned KDE** — a 4000-event corpus evaluated on a 160×320 CONUS
//!    raster, exact vs binned; the binned path must win by at least
//!    [`KDE_MIN_SPEEDUP`]× and agree pointwise at the surface peak.
//!
//! Results render as a text table and land machine-readable in
//! `results/BENCH_scale.json`.

use std::time::Instant;

use crate::{emit, emit_named, ExperimentContext, MASTER_SEED, TextTable};
use riskroute::prelude::*;
use riskroute_geo::bbox::CONUS;
use riskroute_geo::{GeoGrid, GeoPoint};
use riskroute_hazard::HistoricalRisk;
use riskroute_json::Json;
use riskroute_stats::GeoKde;

/// Synthesis curve sizes.
const SYNTH_SIZES: &[usize] = &[1_000, 3_000, 10_000];

/// Sampled PoP pairs for the sweep.
const SWEEP_PAIRS: usize = 48;

/// Timed repetitions per sweep mode; the minimum wall time is compared.
const TIMING_ROUNDS: usize = 3;

/// The binned KDE must beat the exact evaluation by at least this factor.
const KDE_MIN_SPEEDUP: f64 = 2.0;

/// One result row.
struct Row {
    name: String,
    wall_ms: f64,
    detail: Vec<(&'static str, f64)>,
}

fn timed<T>(work: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = work();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// `SWEEP_PAIRS` seeded (src, dst) pairs, never self-pairs — the same
/// scheme as `riskroute ratio --sample`.
fn sampled_pairs(n: usize, k: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = riskroute_rng::StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n - 1);
            (i, if j >= i { j + 1 } else { j })
        })
        .collect()
}

/// Seeded KDE corpus over the hurricane belt.
fn kde_corpus(n: usize, seed: u64) -> Vec<GeoPoint> {
    let mut rng = riskroute_rng::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let lat = 26.0 + rng.gen_f64() * 16.0;
            let lon = -106.0 + rng.gen_f64() * 26.0;
            GeoPoint::new(lat, lon).unwrap_or_else(|_| unreachable!("in range"))
        })
        .collect()
}

/// Regenerate the scale benchmark; returns the rendered rows so the
/// harness can append them to `results/timings.txt`.
pub fn run(ctx: &ExperimentContext) -> String {
    let mut rows: Vec<Row> = Vec::new();

    // 1. Synthesis curve. The 10k network is kept for the sweep below.
    let mut big = None;
    for &n in SYNTH_SIZES {
        let (wall_ms, net) = timed(|| {
            riskroute_topology::scale::synth_network(n, MASTER_SEED)
                .unwrap_or_else(|e| unreachable!("synth generator emits valid links: {e}"))
        });
        rows.push(Row {
            name: format!("synth {n}"),
            wall_ms,
            detail: vec![
                ("pops", net.pop_count() as f64),
                ("links", net.link_count() as f64),
            ],
        });
        big = Some(net);
    }
    let big = big.unwrap_or_else(|| unreachable!("SYNTH_SIZES is non-empty"));

    // 2. Sampled pair sweep, bucket queue off vs on. A reduced hazard model
    // keeps NodeRisk construction proportionate — the measurement target is
    // the SSSP frontier, not kernel evaluation.
    let hazards = HistoricalRisk::standard(MASTER_SEED, Some(1_000));
    let (planner_ms, base) = timed(|| {
        Planner::for_network(&big, &ctx.population, &hazards, RiskWeights::PAPER)
            .with_route_cache(false)
    });
    rows.push(Row {
        name: format!("planner build {}", big.pop_count()),
        wall_ms: planner_ms,
        detail: vec![("pops", big.pop_count() as f64)],
    });
    let pairs = sampled_pairs(big.pop_count(), SWEEP_PAIRS, MASTER_SEED);
    let heap_planner = base.clone().with_bucket_queue(false);
    let bucket_planner = base.with_bucket_queue(true);

    let counter = |n: &str| {
        riskroute_obs::snapshot()
            .counters
            .get(n)
            .copied()
            .unwrap_or(0)
    };
    let sweep = |planner: &Planner| {
        let mut best_ms = f64::INFINITY;
        let mut out = None;
        for _ in 0..TIMING_ROUNDS {
            let (wall_ms, s) = timed(|| planner.pair_list_sweep(&pairs));
            best_ms = best_ms.min(wall_ms);
            out = Some(s);
        }
        (best_ms, out.unwrap_or_else(|| unreachable!("TIMING_ROUNDS > 0")))
    };
    let (heap_ms, heap_sweep) = sweep(&heap_planner);
    let settles_before = counter("bucket_queue_settles");
    let skips_before = counter("bucket_relaxations_skipped");
    let (bucket_ms, bucket_sweep) = sweep(&bucket_planner);
    let settles = counter("bucket_queue_settles").saturating_sub(settles_before);
    let skips = counter("bucket_relaxations_skipped").saturating_sub(skips_before);

    // Equivalence first, speed second: a fast wrong answer is worthless.
    assert_eq!(
        heap_sweep.outcomes, bucket_sweep.outcomes,
        "bucket queue changed sweep outcomes"
    );
    assert_eq!(
        heap_sweep.stranded, bucket_sweep.stranded,
        "bucket queue changed stranded pairs"
    );
    assert!(
        bucket_ms < heap_ms,
        "bucket-queue sweep ({bucket_ms:.1} ms) must beat the binary heap \
         ({heap_ms:.1} ms) on the {}-PoP network",
        big.pop_count(),
    );
    rows.push(Row {
        name: format!("sweep {} heap", big.pop_count()),
        wall_ms: heap_ms,
        detail: vec![("pairs", pairs.len() as f64)],
    });
    rows.push(Row {
        name: format!("sweep {} bucket", big.pop_count()),
        wall_ms: bucket_ms,
        detail: vec![
            ("pairs", pairs.len() as f64),
            ("speedup", heap_ms / bucket_ms),
            ("settles", settles as f64),
            ("skipped", skips as f64),
        ],
    });

    // 3. Binned vs exact KDE on a continental raster.
    let kde = GeoKde::fit(kde_corpus(4_000, MASTER_SEED), 60.0);
    let grid = || {
        GeoGrid::new(CONUS, 160, 320).unwrap_or_else(|_| unreachable!("CONUS raster is valid"))
    };
    let (exact_ms, exact) = timed(|| kde.evaluate_grid_exact(grid()));
    let (binned_ms, binned) = timed(|| kde.evaluate_grid(grid()));
    let (pr, pc, peak) = exact
        .argmax()
        .unwrap_or_else(|| unreachable!("non-empty raster"));
    let peak_err = (binned.get(pr, pc) - peak).abs() / peak;
    assert!(
        peak_err < 0.05,
        "binned KDE off by {peak_err:.3} at the surface peak"
    );
    assert!(
        binned_ms * KDE_MIN_SPEEDUP < exact_ms,
        "binned KDE ({binned_ms:.1} ms) must beat exact ({exact_ms:.1} ms) \
         by at least {KDE_MIN_SPEEDUP}x"
    );
    rows.push(Row {
        name: "kde exact 160x320".to_string(),
        wall_ms: exact_ms,
        detail: vec![("events", 4_000.0)],
    });
    rows.push(Row {
        name: "kde binned 160x320".to_string(),
        wall_ms: binned_ms,
        detail: vec![
            ("events", 4_000.0),
            ("speedup", exact_ms / binned_ms),
            ("peak_rel_err", peak_err),
        ],
    });

    let mut t = TextTable::new(&["segment", "wall_ms", "detail"]);
    for r in &rows {
        let detail = r
            .detail
            .iter()
            .map(|(k, v)| format!("{k}={v:.1}"))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(&[r.name.clone(), format!("{:.1}", r.wall_ms), detail]);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Continental scale: synthesis curve, {SWEEP_PAIRS}-pair sweep on the \
         {}-PoP synthetic network (bucket queue off/on, outcomes verified \
         identical, best of {TIMING_ROUNDS}), and binned-vs-exact KDE.\n\n",
        big.pop_count(),
    ));
    out.push_str(&t.render());

    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("experiment", Json::Str(r.name.clone())),
                ("wall_ms", Json::Num(r.wall_ms)),
            ];
            for (k, v) in &r.detail {
                fields.push((*k, Json::Num(*v)));
            }
            Json::obj(fields)
        })
        .collect();
    emit_named(
        "BENCH_scale.json",
        &format!("{}\n", Json::Arr(json_rows).to_string_pretty()),
    );

    emit("scale", &out);
    out
}
