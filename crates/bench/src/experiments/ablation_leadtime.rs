//! Ablation 4 — forecast lead time: how much earlier does proactive
//! (projection-based) routing react than the paper's reactive replay, and
//! what does the uncertainty cone cost?
//!
//! Quantifies the §1 motivation (operators rerouted *before* Sandy) with
//! the `forecast::projection` extension.

use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext};
use riskroute::prelude::*;
use riskroute::replay::{replay_storm, replay_storm_proactive, DisasterReplay};
use riskroute_forecast::storms::ALL_STORMS;

/// Networks replayed (one Gulf regional, one seaboard regional).
const NETWORKS: &[&str] = &["Telepak", "Hibernia"];

/// Lead times swept (hours); 0 is handled by the reactive replay.
const LEADS: &[f64] = &[12.0, 24.0, 48.0];

fn first_reaction(replay: &DisasterReplay, baseline: f64) -> Option<usize> {
    replay
        .ticks
        .iter()
        .find(|t| t.report.risk_reduction_ratio > baseline + 0.005)
        .map(|t| t.advisory)
}

/// Run the lead-time ablation.
pub fn run(ctx: &ExperimentContext) {
    let mut out = String::from(
        "Ablation 4: proactive (projection) vs reactive replay — first advisory \
         at which routing reacts to the storm, per lead time\n\n",
    );
    let mut t = TextTable::new(&[
        "Network",
        "Storm",
        "reactive",
        "+12h",
        "+24h",
        "+48h",
        "advisories gained (+48h)",
    ]);
    for name in NETWORKS {
        let net = ctx.corpus.network(name).expect("corpus member");
        let planner = ctx.planner_for(net, RiskWeights::PAPER);
        for &storm in ALL_STORMS {
            let reactive = replay_storm(&planner, net, storm, 1).expect("valid replay args");
            let baseline = reactive
                .ticks
                .first()
                .map(|x| x.report.risk_reduction_ratio)
                .unwrap_or(0.0);
            let re = first_reaction(&reactive, baseline);
            let mut cells = vec![
                name.to_string(),
                storm.name().to_string(),
                re.map_or("-".into(), |v| v.to_string()),
            ];
            let mut pro48 = None;
            for &lead in LEADS {
                let pro = replay_storm_proactive(&planner, net, storm, 1, lead)
                    .expect("valid replay args");
                let fr = first_reaction(&pro, baseline);
                if lead == 48.0 {
                    pro48 = fr;
                }
                cells.push(fr.map_or("-".into(), |v| v.to_string()));
            }
            let gained = match (re, pro48) {
                (Some(r), Some(p)) if p < r => f((r - p) as f64, 0),
                (Some(_), Some(_)) => "0".into(),
                _ => "-".into(),
            };
            cells.push(gained);
            t.row(&cells);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: every hour of usable forecast lead moves the routing \
         reaction earlier (advisories are 3 h apart); the uncertainty cone \
         widens the protected area but the confidence discount keeps the \
         pre-storm baseline unchanged. '-' = the storm never reaches the \
         network.\n",
    );
    emit("ablation4_leadtime", &out);
}
