//! Figure 8 — interdomain distance-increase vs risk-reduction scatter for
//! the sixteen regional networks (λ_h = 10⁵).
//!
//! Per §7: each PoP of the subject regional network is a source; the
//! destinations are all PoPs of the sixteen regional networks; routes cross
//! Tier-1 peers through the merged Figure-2 topology.

use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext};
use riskroute::interdomain::InterdomainAnalysis;
use riskroute::prelude::*;
use riskroute::RatioReport;
use riskroute_topology::Network;

/// The interdomain analysis plus one ratio report per regional network.
pub struct RegionalResults {
    /// The merged-topology analysis.
    pub analysis: InterdomainAnalysis,
    /// `(network name, report)` in REGIONAL_SPECS order.
    pub reports: Vec<(String, RatioReport)>,
}

/// Build the merged analysis and compute the per-regional reports
/// (shared by Figure 8 and Table 3).
pub fn regional_results(ctx: &ExperimentContext) -> RegionalResults {
    let networks: Vec<&Network> = ctx.corpus.all_networks().collect();
    let analysis = InterdomainAnalysis::new(
        &networks,
        &ctx.corpus.peering,
        &ctx.population,
        &ctx.hazards,
        RiskWeights::historical_only(1e5),
    );
    let regional_names: Vec<&str> = ctx.corpus.regional.iter().map(|n| n.name()).collect();
    let mut reports = Vec::new();
    for name in &regional_names {
        let report = analysis
            .regional_report(name, &regional_names)
            .expect("every regional network has informative pairs");
        reports.push((name.to_string(), report));
    }
    RegionalResults { analysis, reports }
}

/// Run the Figure-8 experiment.
pub fn run(ctx: &ExperimentContext) {
    let results = regional_results(ctx);
    let mut t = TextTable::new(&["Network", "Distance Ratio", "Risk Ratio", "Pairs"]);
    for (name, r) in &results.reports {
        t.row(&[
            name.clone(),
            f(r.distance_increase_ratio, 3),
            f(r.risk_reduction_ratio, 3),
            r.pairs.to_string(),
        ]);
    }
    let mut out = String::from(
        "Figure 8: interdomain RiskRoute — distance increase vs risk reduction \
         per regional network (lambda_h = 1e5)\n\n",
    );
    out.push_str(&t.render());
    // The paper's headline: most networks trade roughly 1:1, but a subset
    // gets more risk reduction than the distance it pays (the paper names
    // Digex, Gridnet, Hibernia, and Bandcon).
    let favorable = results
        .reports
        .iter()
        .filter(|(_, r)| r.risk_reduction_ratio > r.distance_increase_ratio)
        .map(|(n, _)| n.as_str())
        .collect::<Vec<_>>();
    out.push_str(&format!(
        "\nNetworks whose risk reduction exceeds their distance increase \
         (the paper's Digex/Gridnet/Hibernia/Bandcon pattern): {favorable:?}\n"
    ));
    let paper_named = ["Digex", "Gridnet", "Hibernia", "Bandcon"];
    let overlap = paper_named.iter().filter(|n| favorable.contains(n)).count();
    out.push_str(&format!(
        "Overlap with the paper's named favorable set: {overlap} of 4\n"
    ));
    emit("fig08_regional_scatter", &out);
}
