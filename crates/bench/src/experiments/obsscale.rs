//! Tracing-overhead scaling: what enabled collection costs on real paths.
//!
//! `scripts/ci.sh` guards the CLI end-to-end (provisioning run, enabled vs
//! disabled, <10% wall clock). This experiment measures the same contract
//! at finer grain on the two paths the request-scoped tracing work touches:
//!
//! 1. **Figure-11 pair sweep** — `score_peerings` for one regional network
//!    over the merged interdomain topology, run three ways: collector
//!    disabled, enabled, and enabled inside an [`riskroute_obs::ObsScope`]
//!    (per-trace counter attribution active). The scored candidate lists
//!    are asserted identical before any timing is trusted.
//! 2. **Serve request path** — an in-process daemon answering `ping`
//!    (protocol floor: framing + dispatch + per-op histograms + SLO
//!    accounting) and warm-cache `route` round-trips, collector disabled
//!    vs enabled. Reply bytes are asserted identical both ways.
//!
//! Wall times, per-unit microseconds, and enabled-vs-disabled ratios land
//! in a text table and machine-readable in `results/BENCH_obs.json`.
//! Ratios from a single run are indicative, not a gate — the hard <10%
//! bound lives in CI where best-of-3 smooths scheduler noise.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use crate::{emit, emit_named, ExperimentContext, TextTable};
use riskroute::interdomain::InterdomainAnalysis;
use riskroute::peering::score_peerings;
use riskroute::prelude::*;
use riskroute_cli::commands::ServeHandler;
use riskroute_cli::{parse_args, CliContext};
use riskroute_json::Json;
use riskroute_serve::{ServeConfig, Server, SpawnedServer};
use riskroute_topology::colocation::DEFAULT_COLOCATION_MILES;
use riskroute_topology::Network;

/// Round-trips per serve segment (one connection, strictly sequential).
const PING_ROUNDS: usize = 400;
/// Warm-cache route round-trips per serve segment.
const ROUTE_ROUNDS: usize = 200;

/// One measured segment.
struct Segment {
    name: &'static str,
    wall_ms: f64,
    units: u64,
}

impl Segment {
    fn unit_us(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.wall_ms * 1e3 / self.units as f64
        }
    }
}

/// Time `work` and record it as a segment of `units` comparable items.
fn timed<T>(name: &'static str, units: u64, work: impl FnOnce() -> T) -> (Segment, T) {
    let start = Instant::now();
    let out = work();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (
        Segment {
            name,
            wall_ms,
            units,
        },
        out,
    )
}

/// Spawn the in-process query daemon over the standard corpus.
fn daemon() -> (SpawnedServer, SocketAddr) {
    let cli_ctx = CliContext::build(&[]).expect("cli context");
    let cli = parse_args(&["corpus".to_string()]).expect("parse corpus command");
    let handler = Arc::new(ServeHandler::new(cli_ctx, cli.weights(), None));
    let server =
        Server::bind_tcp("127.0.0.1:0", handler, ServeConfig::default()).expect("bind daemon");
    let addr = server.local_addr().expect("daemon addr");
    (server.spawn(), addr)
}

/// Issue `line` `n` times on one connection and collect the raw replies.
/// Each request goes out as a single write on a no-delay socket so the
/// measurement sees the daemon, not Nagle/delayed-ACK stalls.
fn roundtrips(addr: SocketAddr, line: &str, n: usize) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("set nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let frame = format!("{line}\n");
    let mut replies = Vec::with_capacity(n);
    for _ in 0..n {
        writer.write_all(frame.as_bytes()).expect("write request");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        replies.push(reply);
    }
    replies
}

/// Ratio of an enabled segment's per-unit time to its disabled baseline.
fn vs_off(seg: &Segment, off: &Segment) -> f64 {
    if off.wall_ms == 0.0 {
        1.0
    } else {
        seg.wall_ms / off.wall_ms
    }
}

/// Regenerate the overhead table; returns the rendered rows so the harness
/// can append them to `results/timings.txt`.
pub fn run(ctx: &ExperimentContext) -> String {
    // Workload 1: the Figure-11 pair sweep. The interdomain analysis is
    // built once, untimed — construction is identical either way and not
    // what this measures.
    let networks: Vec<&Network> = ctx.corpus.all_networks().collect();
    let analysis = InterdomainAnalysis::new(
        &networks,
        &ctx.corpus.peering,
        &ctx.population,
        &ctx.hazards,
        RiskWeights::historical_only(1e5),
    );
    let regional = ctx
        .corpus
        .regional
        .first()
        .expect("standard corpus has regional networks");
    let sources = analysis
        .topology()
        .pops_of(regional.name())
        .expect("regional in merged topology");
    let mut dests = Vec::new();
    for net in &ctx.corpus.regional {
        dests.extend(
            analysis
                .topology()
                .pops_of(net.name())
                .expect("regional in merged topology"),
        );
    }
    let sweep = || {
        score_peerings(
            &analysis,
            regional,
            &networks,
            &ctx.corpus.peering,
            DEFAULT_COLOCATION_MILES,
            &sources,
            &dests,
        )
    };

    // Warmup: the first sweep pays one-time lazy costs inside the analysis;
    // every timed segment below measures the steady state.
    sweep();

    riskroute_obs::disable();
    let (mut sweep_off, scored_off) = timed("fig11-sweep tracing-off", 0, sweep);
    riskroute_obs::enable();
    let (mut sweep_on, scored_on) = timed("fig11-sweep tracing-on", 0, sweep);
    let scope = riskroute_obs::ObsScope::begin("obsscale_sweep");
    let (mut sweep_scoped, scored_scoped) = timed("fig11-sweep tracing-on scoped", 0, || {
        let _attr = scope.enter();
        sweep()
    });
    assert_eq!(scored_off, scored_on, "tracing changed the peering scores");
    assert_eq!(
        scored_off, scored_scoped,
        "scoped attribution changed the peering scores"
    );
    let candidates = scored_off.len() as u64;
    sweep_off.units = candidates;
    sweep_on.units = candidates;
    sweep_scoped.units = candidates;

    // Workload 2: the serve request path. One daemon serves every segment;
    // a warmup pass populates the route-tree cache so disabled and enabled
    // runs both measure the steady state.
    let (server, addr) = daemon();
    let ping = r#"{"op":"ping"}"#;
    let route = r#"{"op":"route","network":"Sprint","src":"0","dst":"5"}"#;
    roundtrips(addr, ping, 8);
    roundtrips(addr, route, 8);

    riskroute_obs::disable();
    let (ping_off, ping_off_replies) = timed("serve ping tracing-off", PING_ROUNDS as u64, || {
        roundtrips(addr, ping, PING_ROUNDS)
    });
    let (route_off, route_off_replies) =
        timed("serve route tracing-off", ROUTE_ROUNDS as u64, || {
            roundtrips(addr, route, ROUTE_ROUNDS)
        });
    riskroute_obs::enable();
    let (ping_on, ping_on_replies) = timed("serve ping tracing-on", PING_ROUNDS as u64, || {
        roundtrips(addr, ping, PING_ROUNDS)
    });
    let (route_on, route_on_replies) = timed("serve route tracing-on", ROUTE_ROUNDS as u64, || {
        roundtrips(addr, route, ROUTE_ROUNDS)
    });
    assert_eq!(
        ping_off_replies, ping_on_replies,
        "tracing changed ping reply bytes"
    );
    assert_eq!(
        route_off_replies, route_on_replies,
        "tracing changed route reply bytes"
    );
    let report = server.drain_and_join();
    assert!(!report.forced, "daemon did not drain cleanly: {report:?}");

    let ratios = [
        ("fig11-sweep on/off", vs_off(&sweep_on, &sweep_off)),
        ("fig11-sweep scoped/off", vs_off(&sweep_scoped, &sweep_off)),
        ("serve ping on/off", vs_off(&ping_on, &ping_off)),
        ("serve route on/off", vs_off(&route_on, &route_off)),
    ];
    let segments = [sweep_off, sweep_on, sweep_scoped, ping_off, route_off, ping_on, route_on];
    let mut t = TextTable::new(&["segment", "wall_ms", "units", "unit_us"]);
    for s in &segments {
        t.row(&[
            s.name.to_string(),
            format!("{:.1}", s.wall_ms),
            s.units.to_string(),
            format!("{:.1}", s.unit_us()),
        ]);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Tracing overhead: Figure-11 peering sweep for {} ({} candidates) and \
         the serve request path ({} pings, {} warm-cache routes per segment).\n\
         Scores and reply bytes verified identical tracing on/off.\n\n",
        regional.name(),
        candidates,
        PING_ROUNDS,
        ROUTE_ROUNDS,
    ));
    out.push_str(&t.render());
    out.push_str("\noverhead ratios (enabled / disabled wall clock)\n");
    for (name, ratio) in &ratios {
        out.push_str(&format!("  {name}: {ratio:.3}\n"));
    }
    out.push_str(
        "\nShape check: every ratio should sit near 1.0; the hard <10% gate is \
         the best-of-3 guard in scripts/ci.sh.\n",
    );

    let mut rows: Vec<Json> = segments
        .iter()
        .map(|s| {
            Json::obj([
                ("experiment", Json::Str(s.name.to_string())),
                ("wall_ms", Json::Num(s.wall_ms)),
                ("units", Json::Num(s.units as f64)),
                ("unit_us", Json::Num(s.unit_us())),
            ])
        })
        .collect();
    rows.push(Json::obj([
        (
            "experiment",
            Json::Str("overhead_ratios".to_string()),
        ),
        ("fig11_sweep_on_vs_off", Json::Num(ratios[0].1)),
        ("fig11_sweep_scoped_vs_off", Json::Num(ratios[1].1)),
        ("serve_ping_on_vs_off", Json::Num(ratios[2].1)),
        ("serve_route_on_vs_off", Json::Num(ratios[3].1)),
    ]));
    emit_named(
        "BENCH_obs.json",
        &format!("{}\n", Json::Arr(rows).to_string_pretty()),
    );

    emit("obsscale", &out);
    out
}
