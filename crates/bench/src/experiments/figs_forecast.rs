//! Figures 5 and 6 — forecast risk snapshots for Hurricane Irene and the
//! final geo-spatial scope of all three storms.

use crate::{emit, ExperimentContext};
use riskroute_forecast::{advisories_for, ForecastRisk, Storm, StormSwath};
use riskroute_geo::bbox::CONUS;
use riskroute_geo::{GeoGrid, GeoPoint};

fn wind_field_map(render: impl Fn(GeoPoint) -> f64) -> String {
    let mut grid = GeoGrid::new(CONUS, 16, 50).expect("valid grid");
    grid.fill_with(render);
    grid.ascii_heatmap()
}

/// Figure 5 — Irene forecast snapshots at three advisory times (the paper
/// shows 11 AM Aug 25, 5 PM Aug 26, 8 AM Aug 28 2011).
pub fn run_fig5(_ctx: &ExperimentContext) {
    let advisories = advisories_for(Storm::Irene);
    let mut out = String::from(
        "Figure 5: Hurricane Irene forecast risk snapshots \
         (darker = hurricane-force, lighter = tropical-storm-force)\n",
    );
    // Paper timestamps → hours after our first advisory (7 PM Aug 20):
    // 11 AM Aug 25 = 112 h (advisory ~38), 5 PM Aug 26 = 142 h (~48),
    // 8 AM Aug 28 = 181 h (~61).
    for idx in [37usize, 47, 60] {
        let adv = &advisories[idx];
        let field =
            ForecastRisk::from_advisory_text(&adv.to_text()).expect("generated advisories parse");
        out.push_str(&format!(
            "\nAdvisory {} — {} — center {} — hurricane winds {:.0} mi, tropical {:.0} mi\n",
            adv.number,
            adv.timestamp.label(),
            adv.center,
            field.hurricane_radius_mi,
            field.tropical_radius_mi
        ));
        out.push_str(&wind_field_map(|p| field.risk(p)));
    }
    emit("fig05_irene_forecast", &out);
}

/// Figure 6 — final geo-spatial scope (advisory-union swath) of Irene,
/// Katrina, and Sandy.
pub fn run_fig6(_ctx: &ExperimentContext) {
    let mut out = String::from("Figure 6: final geo-spatial scope of the three hurricane events\n");
    for storm in [Storm::Irene, Storm::Katrina, Storm::Sandy] {
        let swath = StormSwath::new(
            advisories_for(storm)
                .iter()
                .map(ForecastRisk::from_advisory)
                .collect(),
        );
        out.push_str(&format!("\n{}:\n", storm.name()));
        out.push_str(&wind_field_map(|p| swath.max_risk(p)));
        // Landmark containment checks mirroring the paper's maps.
        let nola = GeoPoint::new(29.95, -90.07).expect("valid");
        let nyc = GeoPoint::new(40.71, -74.01).expect("valid");
        let outer_banks = GeoPoint::new(35.25, -75.5).expect("valid");
        out.push_str(&format!(
            "  New Orleans in hurricane winds: {}; NYC in scope: {}; Outer Banks in scope: {}\n",
            swath.ever_in_hurricane_winds(nola),
            swath.ever_in_scope(nyc),
            swath.ever_in_scope(outer_banks)
        ));
    }
    emit("fig06_storm_swaths", &out);
}
