//! Figure 12 — Tier-1 disaster case studies: risk-reduction ratio time
//! series over the advisory windows of Hurricanes Irene, Katrina, and
//! Sandy.

use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext};
use riskroute::prelude::*;
use riskroute::replay::{fraction_in_hurricane_winds, fraction_in_storm_scope, replay_storm};
use riskroute_forecast::storms::ALL_STORMS;
use riskroute_geo::GeoPoint;

/// Every `STRIDE`-th advisory is evaluated (the paper's panels plot 6–10
/// labelled ticks per storm).
pub const STRIDE: usize = 8;

/// Run the Figure-12 experiment.
pub fn run(ctx: &ExperimentContext) {
    let mut out = String::from(
        "Figure 12: Tier-1 hurricane case studies (risk-reduction ratio per \
         advisory; lambda_h = 1e5, lambda_f = 1e3, rho_t = 50, rho_h = 100)\n",
    );
    for &storm in ALL_STORMS {
        out.push_str(&format!("\n=== {} ===\n", storm.name()));
        let mut replays = Vec::new();
        for net in &ctx.corpus.tier1 {
            let planner = ctx.planner_for(net, RiskWeights::PAPER);
            replays.push(replay_storm(&planner, net, storm, STRIDE).expect("valid replay args"));
        }
        // One column per tick, one row per network.
        let labels: Vec<String> = replays[0].ticks.iter().map(|t| t.label.clone()).collect();
        let mut header: Vec<String> = vec!["Network".to_string(), "PoPs hit".to_string()];
        header.extend(labels.iter().cloned());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&header_refs);
        // "PoPs hit" is the union over the storm's *entire* advisory series
        // (hurricane-force winds), as in §7.3 — not just the sampled ticks.
        let mut total_hit = 0usize;
        let mut total_scope = 0usize;
        for (net, replay) in ctx.corpus.tier1.iter().zip(&replays) {
            let locs: Vec<GeoPoint> = net.pops().iter().map(|p| p.location).collect();
            let hit = (fraction_in_hurricane_winds(&locs, storm) * net.pop_count() as f64).round()
                as usize;
            total_hit += hit;
            total_scope +=
                (fraction_in_storm_scope(&locs, storm) * net.pop_count() as f64).round() as usize;
            let mut cells = vec![net.name().to_string(), hit.to_string()];
            for tick in &replay.ticks {
                cells.push(f(tick.report.risk_reduction_ratio, 3));
            }
            t.row(&cells);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "Tier-1 PoPs ever under hurricane-force winds: {total_hit}; \
             ever inside the storm's tropical-wind scope: {total_scope} \
             (paper, hurricane-force: Irene 86, Katrina 8, Sandy 115)\n"
        ));
        let peak = replays
            .iter()
            .filter_map(|r| r.peak().map(|p| p.report.risk_reduction_ratio))
            .fold(0.0_f64, f64::max);
        out.push_str(&format!(
            "Peak risk-reduction ratio this storm: {}\n",
            f(peak, 3)
        ));
    }
    out.push_str(
        "\nShape check (paper): Katrina's effect on Tier-1 routing is much \
         smaller than Irene's and Sandy's (little infrastructure in its \
         hurricane-force scope).\n",
    );
    emit("fig12_tier1_replay", &out);
}
