//! Figures 1–4 — the data-set figures: network maps, AS connectivity,
//! population density / nearest-neighbour assignment, and the five KDE risk
//! surfaces.

use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext, MASTER_SEED};
use riskroute_geo::bbox::CONUS;
use riskroute_geo::GeoGrid;
use riskroute_hazard::events::sample_events;
use riskroute_hazard::RiskSurface;
use riskroute_population::PopShares;

/// Figure 1 — Tier-1 and regional infrastructure summary (the map data).
pub fn run_fig1(ctx: &ExperimentContext) {
    let mut t = TextTable::new(&[
        "Network",
        "Kind",
        "PoPs",
        "Links",
        "Footprint (mi)",
        "Mean link (mi)",
    ]);
    let mut tier1_pops = 0;
    let mut regional_pops = 0;
    for net in ctx.corpus.all_networks() {
        let kind = format!("{:?}", net.kind());
        match net.kind() {
            riskroute_topology::NetworkKind::Tier1 => tier1_pops += net.pop_count(),
            riskroute_topology::NetworkKind::Regional => regional_pops += net.pop_count(),
        }
        let mean_link = if net.link_count() > 0 {
            net.total_link_miles() / net.link_count() as f64
        } else {
            0.0
        };
        t.row(&[
            net.name().to_string(),
            kind,
            net.pop_count().to_string(),
            net.link_count().to_string(),
            f(net.footprint_miles(), 0),
            f(mean_link, 0),
        ]);
    }
    let mut out = String::from("Figure 1: network data sets (synthesized corpus)\n\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nTier-1 PoPs: {tier1_pops} (paper: 354); regional PoPs: {regional_pops} (paper: 455)\n"
    ));
    // ASCII map of all Tier-1 PoPs.
    let mut grid = GeoGrid::new(CONUS, 18, 60).expect("valid grid");
    for net in &ctx.corpus.tier1 {
        for p in net.pops() {
            if let Some((r, c)) = grid.cell_of(p.location) {
                grid.add(r, c, 1.0);
            }
        }
    }
    out.push_str("\nTier-1 PoP density map:\n");
    out.push_str(&grid.ascii_heatmap());
    emit("fig01_networks", &out);
}

/// Figure 2 — AS-level connectivity between the 23 networks.
pub fn run_fig2(ctx: &ExperimentContext) {
    let peering = &ctx.corpus.peering;
    let mut out = String::from("Figure 2: AS connectivity between all networks\n\n");
    let mut t = TextTable::new(&["Network", "Peers", "Peer list"]);
    for name in peering.networks() {
        let peers = peering.peers_of(name);
        t.row(&[name.to_string(), peers.len().to_string(), peers.join(", ")]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nTotal peering edges: {}\n",
        peering.edge_count()
    ));
    emit("fig02_as_connectivity", &out);
}

/// Figure 3 — population density and the Teliasonera nearest-neighbour
/// assignment.
pub fn run_fig3(ctx: &ExperimentContext) {
    let mut out = String::from(
        "Figure 3: population density (left) and Teliasonera NN assignment (right)\n\n",
    );
    out.push_str(&format!(
        "Census blocks: {} (paper: 215,932); total population: {:.0}\n\n",
        ctx.population.block_count(),
        ctx.population.total_population()
    ));
    let grid = ctx.population.density_grid(18, 60);
    out.push_str("Population heat map:\n");
    out.push_str(&grid.ascii_heatmap());

    let telia = ctx.corpus.network("Teliasonera").expect("corpus member");
    let shares = PopShares::assign(&ctx.population, telia, None);
    let mut t = TextTable::new(&["Teliasonera PoP", "Population share"]);
    let mut rows: Vec<(String, f64)> = telia
        .pops()
        .iter()
        .zip(shares.shares())
        .map(|(p, &s)| (p.name.clone(), s))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (name, s) in rows {
        t.row(&[name, f(s, 4)]);
    }
    out.push('\n');
    out.push_str(&t.render());
    let sum: f64 = shares.shares().iter().sum();
    out.push_str(&format!("\nShares sum to {sum:.6} (must be 1)\n"));
    emit("fig03_population", &out);
}

/// Figure 4 — bandwidth-optimized KDE surfaces for the five corpora.
///
/// Events are capped per kind to keep grid evaluation tractable; the modal
/// regions (the shape the paper's panels show) are insensitive to the cap.
pub fn run_fig4(_ctx: &ExperimentContext) {
    let mut out =
        String::from("Figure 4: kernel density risk surfaces (ASCII, darker = likelier)\n");
    let expectations = [
        ("Gulf/Atlantic coasts", (25.0, -90.0), (45.0, -110.0)),
        ("Tornado Alley", (36.0, -97.5), (40.0, -120.0)),
        ("central plains", (39.0, -95.0), (40.0, -120.0)),
        ("west coast", (36.0, -119.0), (35.0, -85.0)),
        ("eastern two-thirds", (38.0, -95.0), (43.0, -115.0)),
    ];
    for (kind, (label, hot, cold)) in riskroute_hazard::ALL_EVENT_KINDS.iter().zip(expectations) {
        let n = kind.paper_count().min(8_000);
        let events = sample_events(*kind, n, MASTER_SEED);
        let surface = RiskSurface::fit(*kind, &events, kind.paper_bandwidth_miles());
        let grid = surface.likelihood_grid(GeoGrid::new(CONUS, 16, 50).expect("valid grid"));
        out.push_str(&format!(
            "\n{} (bandwidth {:.2} mi, {} of {} events):\n",
            kind.label(),
            surface.bandwidth_miles(),
            n,
            kind.paper_count()
        ));
        out.push_str(&grid.ascii_heatmap());
        let hot_p = riskroute_geo::GeoPoint::new(hot.0, hot.1).expect("valid");
        let cold_p = riskroute_geo::GeoPoint::new(cold.0, cold.1).expect("valid");
        let ratio = surface.likelihood(hot_p) / surface.likelihood(cold_p).max(1e-300);
        out.push_str(&format!(
            "modal region: {label}; hot/cold likelihood ratio {ratio:.1e}\n"
        ));
    }
    emit("fig04_risk_surfaces", &out);
}
