//! Figure 7 — RiskRoute vs shortest path on the Level3 topology between the
//! Houston, TX and Boston, MA PoPs, at λ_h = 10⁴ and 10⁵.

use crate::table::f;
use crate::{emit, ExperimentContext};
use riskroute::prelude::*;
use riskroute_geo::GeoPoint;

/// Run the Figure-7 experiment.
pub fn run(ctx: &ExperimentContext) {
    let level3 = ctx.corpus.network("Level3").expect("corpus member");
    let houston = level3
        .nearest_pop(GeoPoint::new(29.76, -95.37).expect("valid"))
        .expect("non-empty network")
        .0;
    let boston = level3
        .nearest_pop(GeoPoint::new(42.36, -71.06).expect("valid"))
        .expect("non-empty network")
        .0;
    let mut out = format!(
        "Figure 7: Level3 routes {} -> {}\n",
        level3.pops()[houston].name,
        level3.pops()[boston].name
    );
    let name_path = |nodes: &[usize]| {
        nodes
            .iter()
            .map(|&n| level3.pops()[n].name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    };
    let mut planner = ctx.planner_for(level3, RiskWeights::historical_only(1e4));
    let mut deviations = Vec::new();
    for lambda in [1e4, 1e5, 1e6] {
        planner.set_weights(RiskWeights::historical_only(lambda));
        let sp = planner.shortest_route(houston, boston).expect("connected");
        let rr = planner.risk_route(houston, boston).expect("connected");
        out.push_str(&format!("\nlambda_h = {lambda:.0e}\n"));
        out.push_str(&format!(
            "  shortest path ({} hops, {} bit-miles, {} bit-risk-miles):\n    {}\n",
            sp.nodes.len() - 1,
            f(sp.bit_miles, 0),
            f(sp.bit_risk_miles, 0),
            name_path(&sp.nodes)
        ));
        out.push_str(&format!(
            "  RiskRoute     ({} hops, {} bit-miles, {} bit-risk-miles):\n    {}\n",
            rr.nodes.len() - 1,
            f(rr.bit_miles, 0),
            f(rr.bit_risk_miles, 0),
            name_path(&rr.nodes)
        ));
        out.push_str(&format!(
            "  deviation from shortest path: {}\n",
            if rr.nodes == sp.nodes { "none" } else { "yes" }
        ));
        deviations.push((lambda, rr.bit_miles - sp.bit_miles));
    }
    out.push_str(
        "\nShape check (paper): as lambda_h grows the route becomes more \
         risk-averse and deviates further from the shortest path.\n",
    );
    let monotone = deviations.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9);
    out.push_str(&format!(
        "Deviation (extra bit-miles) is non-decreasing in lambda_h: {monotone}\n"
    ));

    // Our synthetic Level3 gives Houston->Boston an already-northern
    // shortest path; also show the pair where the paper-λ deviation is
    // strongest so the mechanism is visible on this topology.
    planner.set_weights(RiskWeights::historical_only(1e5));
    let outcomes = planner.all_pair_outcomes();
    if let Some(best) = outcomes.iter().max_by(|a, b| {
        let ga = 1.0 - a.risk_route.bit_risk_miles / a.shortest.bit_risk_miles;
        let gb = 1.0 - b.risk_route.bit_risk_miles / b.shortest.bit_risk_miles;
        ga.partial_cmp(&gb).expect("finite")
    }) {
        out.push_str(&format!(
            "\nStrongest lambda_h = 1e5 deviation on this topology: {} -> {}\n",
            level3.pops()[best.src].name,
            level3.pops()[best.dst].name
        ));
        out.push_str(&format!(
            "  shortest: {} ({} bit-risk-miles)\n  riskroute: {} ({} bit-risk-miles, {:.1}% lower)\n",
            name_path(&best.shortest.nodes),
            f(best.shortest.bit_risk_miles, 0),
            name_path(&best.risk_route.nodes),
            f(best.risk_route.bit_risk_miles, 0),
            100.0 * (1.0 - best.risk_route.bit_risk_miles / best.shortest.bit_risk_miles)
        ));
    }
    emit("fig07_level3_routes", &out);
}
