//! Table 1 — trained kernel density bandwidths for the five corpora.
//!
//! Pipeline: sample each corpus at the paper's exact event count, train the
//! bandwidth by 5-way cross validation scored with the KL-equivalent
//! held-out negative log-likelihood (§5.2), report alongside the paper's
//! values. The reproducible *shape* is the ordering
//! wind ≪ storm < tornado ≤ hurricane ≪ earthquake, driven by corpus size
//! and granularity.

use crate::table::{f, TextTable};
use crate::{emit, ExperimentContext, MASTER_SEED};
use riskroute_hazard::training::train_all;

/// Run the Table-1 experiment.
pub fn run(_ctx: &ExperimentContext) {
    let trained = train_all(MASTER_SEED);
    let mut t = TextTable::new(&[
        "Event Type",
        "Entries",
        "Trained Bandwidth (mi)",
        "Paper Bandwidth (mi)",
        "CV Score (NLL)",
    ]);
    for tr in &trained {
        t.row(&[
            tr.kind.label().to_string(),
            tr.corpus_size.to_string(),
            f(tr.bandwidth_miles, 2),
            f(tr.kind.paper_bandwidth_miles(), 2),
            f(tr.score, 3),
        ]);
    }
    let mut out = String::from(
        "Table 1: trained kernel density bandwidths (5-way CV, KL-equivalent score)\n\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: bandwidth shrinks with corpus density \
         (wind < storm < tornado <= hurricane < earthquake).\n",
    );
    let bw: Vec<f64> = trained.iter().map(|x| x.bandwidth_miles).collect();
    // Table-1 order is hurricane, tornado, storm, earthquake, wind.
    let ordered = bw[4] < bw[2] && bw[2] < bw[1] && bw[1] <= bw[0] && bw[0] < bw[3];
    out.push_str(&format!("Ordering holds: {ordered}\n"));
    emit("table1_bandwidths", &out);
}
