//! The table/figure regeneration harness.
//!
//! ```text
//! cargo run --release -p riskroute-bench --bin experiments -- all
//! cargo run --release -p riskroute-bench --bin experiments -- table2 fig7
//! ```
//!
//! Outputs are echoed and written under `results/`. Every experiment is
//! deterministic under the harness master seed. Per-experiment wall time
//! and the hot-path counters the run generated (shortest-path runs, heap
//! pops, relaxations, peak heap size) come from the `riskroute-obs`
//! collector and land in `results/timings.txt`.

use riskroute_bench::experiments::*;
use riskroute_bench::{emit, ExperimentContext, TextTable};

const USAGE: &str = "\
usage: experiments <id>...

ids:
  table1      Table 1  - trained KDE bandwidths
  table2      Table 2  - Tier-1 risk/distance ratios
  table3      Table 3  - characteristic regression (R^2)
  fig1        Figure 1 - network data sets
  fig2        Figure 2 - AS connectivity
  fig3        Figure 3 - population density + NN assignment
  fig4        Figure 4 - KDE risk surfaces
  fig5        Figure 5 - Irene forecast snapshots
  fig6        Figure 6 - storm swaths
  fig7        Figure 7 - Level3 Houston->Boston routes
  fig8        Figure 8 - regional interdomain scatter
  fig9        Figure 9 - ten best additional links
  fig10       Figure 10 - bit-risk decay with added links
  fig11       Figure 11 - best new peering per regional network
  fig12       Figure 12 - Tier-1 hurricane replay
  fig13       Figure 13 - regional hurricane replay
  ablation1   impact-scaling ablation
  ablation2   risk-component ablation
  ablation3   shortcut-threshold ablation
  ablation4   forecast lead-time ablation (proactive vs reactive)
  ablation5   risk-aware OSPF weights vs exact RiskRoute
  threadscale thread-scaling curve for the all-pairs routing sweep
  ssspscale   SSSP-engine cache/arena scaling (sweep + 5-round greedy)
  forkscale   scenario-fork N-1 sweep vs naive per-scenario rebuild
  obsscale    enabled-tracing overhead on the fig11 sweep + serve path
  deltascale  delta-invalidation replay scaling vs blanket invalidation
  scale       continental-scale curve: synth topologies, bucket-queue sweep, binned KDE
  tables      table1 table2 table3
  figures     fig1..fig13
  ablations   ablation1..ablation5
  all         everything above
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprint!("{USAGE}");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let mut ids: Vec<&str> = Vec::new();
    for a in &args {
        match a.as_str() {
            "tables" => ids.extend(["table1", "table2", "table3"]),
            "figures" => ids.extend([
                "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                "fig11", "fig12", "fig13",
            ]),
            "ablations" => ids.extend([
                "ablation1",
                "ablation2",
                "ablation3",
                "ablation4",
                "ablation5",
            ]),
            "all" => ids.extend([
                "table1",
                "table2",
                "table3",
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "fig13",
                "ablation1",
                "ablation2",
                "ablation3",
                "ablation4",
                "ablation5",
                "threadscale",
                "ssspscale",
                "forkscale",
                "obsscale",
                "deltascale",
                "scale",
            ]),
            other => ids.push(other),
        }
    }

    riskroute_obs::enable();
    riskroute_obs::reset();
    eprintln!("building experiment context (corpus, census, hazards)…");
    let ctx = {
        let _span = riskroute_obs::Span::enter("context_build");
        ExperimentContext::standard()
    };
    let span_us = |snap: &riskroute_obs::MetricsSnapshot, name: &str| {
        snap.span_stats.get(name).map_or(0, |s| s.total_us)
    };
    let context_us = span_us(&riskroute_obs::snapshot(), "context_build");
    eprintln!("context ready in {:.1} ms", context_us as f64 / 1e3);

    let mut timings = TextTable::new(&[
        "experiment",
        "wall_ms",
        "sssp_runs",
        "pops",
        "relaxations",
        "heap_peak",
        "prov_rounds",
        "replay_ticks",
    ]);
    let mut total_us = context_us;
    // The scaling experiments return their curves so they can ride along
    // in results/timings.txt next to the per-experiment rows.
    let mut scaling_curve: Option<String> = None;
    let mut sssp_curve: Option<String> = None;
    let mut fork_curve: Option<String> = None;
    let mut obs_curve: Option<String> = None;
    let mut delta_curve: Option<String> = None;
    let mut scale_curve: Option<String> = None;
    for id in ids {
        // A fresh registry per experiment makes every row a self-contained
        // delta; the experiment id names the enclosing span.
        riskroute_obs::reset();
        let span = riskroute_obs::Span::enter(id.to_string());
        match id {
            "table1" => table1_bandwidths::run(&ctx),
            "table2" => table2_tier1::run(&ctx),
            "table3" => table3_regression::run(&ctx),
            "fig1" => figs_maps::run_fig1(&ctx),
            "fig2" => figs_maps::run_fig2(&ctx),
            "fig3" => figs_maps::run_fig3(&ctx),
            "fig4" => figs_maps::run_fig4(&ctx),
            "fig5" => figs_forecast::run_fig5(&ctx),
            "fig6" => figs_forecast::run_fig6(&ctx),
            "fig7" => fig07_routes::run(&ctx),
            "fig8" => fig08_regional_scatter::run(&ctx),
            "fig9" => figs_provisioning::run_fig9(&ctx),
            "fig10" => figs_provisioning::run_fig10(&ctx),
            "fig11" => fig11_peering::run(&ctx),
            "fig12" => fig12_tier1_replay::run(&ctx),
            "fig13" => fig13_regional_replay::run(&ctx),
            "ablation1" => ablations::run_impact(&ctx),
            "ablation2" => ablations::run_forecast_components(&ctx),
            "ablation3" => ablations::run_filter_threshold(&ctx),
            "ablation4" => ablation_leadtime::run(&ctx),
            "ablation5" => ablation_ospf::run(&ctx),
            "threadscale" => scaling_curve = Some(thread_scaling::run(&ctx)),
            "ssspscale" => sssp_curve = Some(ssspscale::run(&ctx)),
            "forkscale" => fork_curve = Some(forkscale::run(&ctx)),
            "obsscale" => obs_curve = Some(obsscale::run(&ctx)),
            "deltascale" => delta_curve = Some(deltascale::run(&ctx)),
            "scale" => scale_curve = Some(scale::run(&ctx)),
            unknown => {
                eprintln!("unknown experiment id {unknown:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
        drop(span);
        let snap = riskroute_obs::snapshot();
        let counter = |n: &str| snap.counters.get(n).copied().unwrap_or(0);
        let wall_us = span_us(&snap, id);
        total_us += wall_us;
        let heap_peak = snap
            .gauges
            .get("dijkstra_heap_peak")
            .copied()
            .unwrap_or(0.0)
            .max(snap.gauges.get("risk_sssp_heap_peak").copied().unwrap_or(0.0));
        timings.row(&[
            id.to_string(),
            format!("{:.1}", wall_us as f64 / 1e3),
            (counter("dijkstra_runs") + counter("risk_sssp_runs")).to_string(),
            (counter("dijkstra_pops") + counter("risk_sssp_pops")).to_string(),
            (counter("dijkstra_relaxations") + counter("risk_sssp_relaxations")).to_string(),
            format!("{heap_peak:.0}"),
            counter("provision_rounds").to_string(),
            counter("replay_ticks").to_string(),
        ]);
        eprintln!("[{id}] finished in {:.1} ms", wall_us as f64 / 1e3);
    }
    let mut timings_out = timings.render();
    if let Some(curve) = scaling_curve {
        timings_out.push_str("\nthread scaling\n");
        timings_out.push_str(&curve);
    }
    if let Some(curve) = sssp_curve {
        timings_out.push_str("\nsssp scaling\n");
        timings_out.push_str(&curve);
    }
    if let Some(curve) = fork_curve {
        timings_out.push_str("\nfork scaling\n");
        timings_out.push_str(&curve);
    }
    if let Some(curve) = obs_curve {
        timings_out.push_str("\ntracing overhead\n");
        timings_out.push_str(&curve);
    }
    if let Some(curve) = delta_curve {
        timings_out.push_str("\ndelta scaling\n");
        timings_out.push_str(&curve);
    }
    if let Some(curve) = scale_curve {
        timings_out.push_str("\nscale curve\n");
        timings_out.push_str(&curve);
    }
    // Merge instead of clobber: partial runs (`experiments fig7`) update
    // their own rows and leave every other experiment's row and section
    // intact.
    let previous = std::fs::read_to_string(
        std::path::Path::new(riskroute_bench::RESULTS_DIR).join("timings.txt"),
    )
    .unwrap_or_default();
    emit("timings", &riskroute_bench::merge_timings(&previous, &timings_out));
    eprintln!("total: {:.1} ms", total_us as f64 / 1e3);
}
