//! The table/figure regeneration harness.
//!
//! ```text
//! cargo run --release -p riskroute-bench --bin experiments -- all
//! cargo run --release -p riskroute-bench --bin experiments -- table2 fig7
//! ```
//!
//! Outputs are echoed and written under `results/`. Every experiment is
//! deterministic under the harness master seed.

use riskroute_bench::experiments::*;
use riskroute_bench::ExperimentContext;
use std::time::Instant;

const USAGE: &str = "\
usage: experiments <id>...

ids:
  table1      Table 1  - trained KDE bandwidths
  table2      Table 2  - Tier-1 risk/distance ratios
  table3      Table 3  - characteristic regression (R^2)
  fig1        Figure 1 - network data sets
  fig2        Figure 2 - AS connectivity
  fig3        Figure 3 - population density + NN assignment
  fig4        Figure 4 - KDE risk surfaces
  fig5        Figure 5 - Irene forecast snapshots
  fig6        Figure 6 - storm swaths
  fig7        Figure 7 - Level3 Houston->Boston routes
  fig8        Figure 8 - regional interdomain scatter
  fig9        Figure 9 - ten best additional links
  fig10       Figure 10 - bit-risk decay with added links
  fig11       Figure 11 - best new peering per regional network
  fig12       Figure 12 - Tier-1 hurricane replay
  fig13       Figure 13 - regional hurricane replay
  ablation1   impact-scaling ablation
  ablation2   risk-component ablation
  ablation3   shortcut-threshold ablation
  ablation4   forecast lead-time ablation (proactive vs reactive)
  ablation5   risk-aware OSPF weights vs exact RiskRoute
  tables      table1 table2 table3
  figures     fig1..fig13
  ablations   ablation1..ablation5
  all         everything above
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprint!("{USAGE}");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let mut ids: Vec<&str> = Vec::new();
    for a in &args {
        match a.as_str() {
            "tables" => ids.extend(["table1", "table2", "table3"]),
            "figures" => ids.extend([
                "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                "fig11", "fig12", "fig13",
            ]),
            "ablations" => ids.extend([
                "ablation1",
                "ablation2",
                "ablation3",
                "ablation4",
                "ablation5",
            ]),
            "all" => ids.extend([
                "table1",
                "table2",
                "table3",
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "fig13",
                "ablation1",
                "ablation2",
                "ablation3",
                "ablation4",
                "ablation5",
            ]),
            other => ids.push(other),
        }
    }

    let t0 = Instant::now();
    eprintln!("building experiment context (corpus, census, hazards)…");
    let ctx = ExperimentContext::standard();
    eprintln!("context ready in {:.1?}", t0.elapsed());

    for id in ids {
        let t = Instant::now();
        match id {
            "table1" => table1_bandwidths::run(&ctx),
            "table2" => table2_tier1::run(&ctx),
            "table3" => table3_regression::run(&ctx),
            "fig1" => figs_maps::run_fig1(&ctx),
            "fig2" => figs_maps::run_fig2(&ctx),
            "fig3" => figs_maps::run_fig3(&ctx),
            "fig4" => figs_maps::run_fig4(&ctx),
            "fig5" => figs_forecast::run_fig5(&ctx),
            "fig6" => figs_forecast::run_fig6(&ctx),
            "fig7" => fig07_routes::run(&ctx),
            "fig8" => fig08_regional_scatter::run(&ctx),
            "fig9" => figs_provisioning::run_fig9(&ctx),
            "fig10" => figs_provisioning::run_fig10(&ctx),
            "fig11" => fig11_peering::run(&ctx),
            "fig12" => fig12_tier1_replay::run(&ctx),
            "fig13" => fig13_regional_replay::run(&ctx),
            "ablation1" => ablations::run_impact(&ctx),
            "ablation2" => ablations::run_forecast_components(&ctx),
            "ablation3" => ablations::run_filter_threshold(&ctx),
            "ablation4" => ablation_leadtime::run(&ctx),
            "ablation5" => ablation_ospf::run(&ctx),
            unknown => {
                eprintln!("unknown experiment id {unknown:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
        eprintln!("[{id}] finished in {:.1?}", t.elapsed());
    }
    eprintln!("total: {:.1?}", t0.elapsed());
}
