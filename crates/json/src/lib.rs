//! Minimal JSON support: a value type, a recursive-descent parser, and
//! compact/pretty writers.
//!
//! The workspace serializes a handful of artifact types (networks, graphs,
//! geo points) for export and round-trip tests. Rather than pulling in a
//! serialization framework, each owning crate implements [`ToJson`] /
//! [`FromJson`] by hand against this small value model. Parsing never
//! panics: every malformed input surfaces as a [`JsonError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved sorted for deterministic output.
    Obj(BTreeMap<String, Json>),
}

/// Errors from parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// The input text was not valid JSON.
    Syntax {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The document parsed but did not match the expected shape.
    Shape(String),
    /// Nesting exceeded the parse limit (guards against stack overflow on
    /// crafted `[[[[…` payloads).
    TooDeep {
        /// The depth limit in force.
        limit: usize,
    },
    /// The input was larger than the parse limit allows (guards against
    /// unbounded allocation before a single byte is parsed).
    TooLarge {
        /// Input size in bytes.
        size: usize,
        /// The byte limit in force.
        limit: usize,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            JsonError::Shape(msg) => write!(f, "JSON shape error: {msg}"),
            JsonError::TooDeep { limit } => {
                write!(f, "JSON document exceeds nesting limit of {limit}")
            }
            JsonError::TooLarge { size, limit } => {
                write!(f, "JSON document of {size} bytes exceeds size limit of {limit}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

/// Resource limits applied while parsing untrusted input.
///
/// [`parse`] uses [`ParseLimits::STANDARD`] — generous bounds that every
/// artifact in the workspace fits — while network-facing callers (the
/// `riskroute serve` daemon) pass tighter caps so a crafted frame can
/// neither overflow the stack nor allocate without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum container nesting depth.
    pub max_depth: usize,
    /// Maximum input size in bytes, checked before parsing starts.
    pub max_bytes: usize,
}

impl ParseLimits {
    /// The limits [`parse`] applies: 128 levels, 64 MiB.
    pub const STANDARD: ParseLimits = ParseLimits {
        max_depth: 128,
        max_bytes: 64 << 20,
    };

    /// Tight limits for untrusted wire input: 32 levels and a caller-chosen
    /// byte cap.
    #[must_use]
    pub fn strict(max_bytes: usize) -> ParseLimits {
        ParseLimits {
            max_depth: 32,
            max_bytes,
        }
    }
}

impl Json {
    /// Interpret as `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(JsonError::Shape(format!("expected number, got {other:?}"))),
        }
    }

    /// Interpret as a non-negative integer.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let n = self.as_f64()?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= usize::MAX as f64 {
            Ok(n as usize)
        } else {
            Err(JsonError::Shape(format!("expected non-negative integer, got {n}")))
        }
    }

    /// Interpret as `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::Shape(format!("expected bool, got {other:?}"))),
        }
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::Shape(format!("expected string, got {other:?}"))),
        }
    }

    /// Interpret as an array.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(xs) => Ok(xs),
            other => Err(JsonError::Shape(format!("expected array, got {other:?}"))),
        }
    }

    /// Interpret as an object.
    pub fn as_obj(&self) -> Result<&BTreeMap<String, Json>, JsonError> {
        match self {
            Json::Obj(m) => Ok(m),
            other => Err(JsonError::Shape(format!("expected object, got {other:?}"))),
        }
    }

    /// Fetch a required object field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.as_obj()?
            .get(key)
            .ok_or_else(|| JsonError::Shape(format!("missing field '{key}'")))
    }

    /// Build an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, None, 0);
        out
    }

    /// Indented multi-line rendering.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, Some(2), 0);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that can be decoded from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decode from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serialize any [`ToJson`] type to a pretty-printed string.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Serialize any [`ToJson`] type to a compact string.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_compact()
}

/// Parse and decode a [`FromJson`] type from text.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

fn write_json(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.is_finite() {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                // JSON has no NaN/Infinity; encode as null like serde_json's
                // lossy mode so degraded artifacts still export.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json(x, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Obj(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(x, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document under [`ParseLimits::STANDARD`]. Never panics;
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    parse_with_limits(text, ParseLimits::STANDARD)
}

/// Parse a JSON document under explicit resource limits. Never panics;
/// oversized input fails with [`JsonError::TooLarge`] before any work,
/// over-deep nesting with [`JsonError::TooDeep`], and trailing garbage is
/// a syntax error.
pub fn parse_with_limits(text: &str, limits: ParseLimits) -> Result<Json, JsonError> {
    if text.len() > limits.max_bytes {
        return Err(JsonError::TooLarge {
            size: text.len(),
            limit: limits.max_bytes,
        });
    }
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0, limits.max_depth)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError::Syntax {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize, max_depth: usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    // The limit counts container levels exactly: a document nested
    // `max_depth` deep parses, one level more is `TooDeep`.
    if depth >= max_depth && matches!(b.get(*pos), Some(b'{') | Some(b'[')) {
        return Err(JsonError::TooDeep { limit: max_depth });
    }
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(b, pos, depth, max_depth),
        Some(b'[') => parse_array(b, pos, depth, max_depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(err(start, "expected value"));
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "invalid utf-8"))?;
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        _ => Err(err(start, "invalid number")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates decode to the replacement character;
                        // full surrogate-pair handling is not needed for our
                        // ASCII-dominated artifacts.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(err(*pos, "control character in string")),
            Some(_) => {
                // Copy one UTF-8 scalar.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && b[*pos] & 0xc0 == 0x80 {
                    *pos += 1;
                }
                let s =
                    std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "invalid utf-8"))?;
                out.push_str(s);
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize, max_depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1, max_depth)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize, max_depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(b, pos, depth + 1, max_depth)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-3.5", "\"hi\\nthere\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn round_trips_structures() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x","d":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.field("c").unwrap().as_str().unwrap(), "x");
    }

    #[test]
    fn rejects_malformed_inputs() {
        for text in [
            "", "{", "[1,", "\"unterminated", "{\"a\"}", "tru", "1 2", "{'a':1}",
            "[1,]", "nan", "01a",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn never_panics_on_garbled_bytes() {
        // Deterministic pseudo-random mutations of a valid document.
        let base = r#"{"nodes":[{"id":0,"lat":29.95,"lon":-90.07}],"name":"seed"}"#;
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..2_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut bytes = base.as_bytes().to_vec();
            let idx = (state >> 33) as usize % bytes.len();
            bytes[idx] = (state & 0xff) as u8;
            let truncated = (state >> 20) as usize % bytes.len();
            if let Ok(s) = std::str::from_utf8(&bytes[..truncated]) {
                let _ = parse(s); // must not panic
            }
            if let Ok(s) = std::str::from_utf8(&bytes) {
                let _ = parse(s);
            }
        }
    }

    #[test]
    fn numbers_render_cleanly() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.25).to_string_compact(), "3.25");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert_eq!(parse(&deep), Err(JsonError::TooDeep { limit: 128 }));
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn depth_limit_is_exact() {
        let limits = ParseLimits::strict(1 << 20);
        // depth counts containers: 32 nested arrays are allowed, 33 are not.
        let at_limit = "[".repeat(32) + &"]".repeat(32);
        assert!(parse_with_limits(&at_limit, limits).is_ok());
        let over = "[".repeat(33) + &"]".repeat(33);
        assert_eq!(
            parse_with_limits(&over, limits),
            Err(JsonError::TooDeep { limit: 32 })
        );
        // Objects count the same way.
        let over_obj = "{\"k\":".repeat(33) + "null" + &"}".repeat(33);
        assert_eq!(
            parse_with_limits(&over_obj, limits),
            Err(JsonError::TooDeep { limit: 32 })
        );
    }

    #[test]
    fn size_limit_rejects_before_parsing() {
        let limits = ParseLimits::strict(16);
        let big = format!("\"{}\"", "x".repeat(64));
        assert_eq!(
            parse_with_limits(&big, limits),
            Err(JsonError::TooLarge { size: 66, limit: 16 })
        );
        // Even syntactically invalid oversized input fails with TooLarge —
        // the cap is checked before any parsing work happens.
        let junk = "\u{1}".repeat(64);
        assert_eq!(
            parse_with_limits(&junk, limits),
            Err(JsonError::TooLarge { size: 64, limit: 16 })
        );
        assert!(parse_with_limits("[1,2,3]", limits).is_ok());
    }

    /// Seeded fuzz over the adversarial classes the serve daemon faces:
    /// malformed mutations, truncations, and deeply nested payloads. The
    /// parser must never panic and every failure must be a typed error.
    #[test]
    fn fuzz_adversarial_documents() {
        let base = r#"{"op":"route","network":"Sprint","src":"0","dst":"5","deadline_ms":250}"#;
        let limits = ParseLimits::strict(4096);
        let mut state = 0x5851f42d4c957f2du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for round in 0..4_000u32 {
            let r = next();
            let doc: String = match r % 4 {
                // Byte mutations of a valid frame.
                0 => {
                    let mut bytes = base.as_bytes().to_vec();
                    for _ in 0..1 + (r >> 32) % 4 {
                        let k = next();
                        let idx = (k >> 33) as usize % bytes.len();
                        bytes[idx] = (k & 0xff) as u8;
                    }
                    match String::from_utf8(bytes) {
                        Ok(s) => s,
                        Err(_) => continue,
                    }
                }
                // Truncations (the wire sees these on mid-frame disconnects).
                1 => base[..(r >> 16) as usize % (base.len() + 1)].to_string(),
                // Deep nesting around the strict limit.
                2 => {
                    let depth = 24 + (r >> 16) as usize % 24;
                    let open: String = (0..depth)
                        .map(|i| if i % 2 == 0 { "[" } else { "{\"k\":" })
                        .collect();
                    let close: String = (0..depth)
                        .rev()
                        .map(|i| if i % 2 == 0 { "]" } else { "}" })
                        .collect();
                    format!("{open}0{close}")
                }
                // Random printable garbage.
                _ => (0..(r >> 16) % 96)
                    .map(|i| {
                        let k = next();
                        char::from_u32(0x20 + ((k >> (i % 32)) & 0x5e) as u32).unwrap_or('?')
                    })
                    .collect(),
            };
            // Must not panic, and failures must be typed.
            match parse_with_limits(&doc, limits) {
                Ok(_) => {}
                Err(
                    JsonError::Syntax { .. }
                    | JsonError::TooDeep { .. }
                    | JsonError::TooLarge { .. },
                ) => {}
                Err(other) => panic!("round {round}: unexpected error class {other:?}"),
            }
        }
    }
}
