//! Frame parsing and response rendering for the NDJSON wire protocol.

use riskroute_json::{parse_with_limits, Json, JsonError, ParseLimits};

/// A parsed request frame: the envelope fields the transport cares about
/// plus the full document for the [`crate::QueryHandler`] to interpret.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<u64>,
    /// The operation name (`ping`, `shutdown`, or a handler op).
    pub op: String,
    /// The whole request document.
    pub body: Json,
}

/// Why a frame was rejected before reaching the handler.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// The frame exceeded the connection's byte cap.
    Oversized {
        /// Frame size in bytes.
        size: usize,
        /// The cap in force.
        limit: usize,
    },
    /// The frame was not a valid protocol document (bad JSON, over-deep
    /// nesting, non-object root, or a bad envelope field).
    Malformed(String),
    /// The document parsed but has no `op` field.
    MissingOp,
}

impl FrameError {
    /// The response `kind` string for this rejection.
    pub fn kind(&self) -> &'static str {
        match self {
            FrameError::Oversized { .. } => "oversized-frame",
            FrameError::Malformed(_) => "malformed-frame",
            FrameError::MissingOp => "bad-request",
        }
    }

    /// Human-readable detail for the response `error` field.
    pub fn message(&self) -> String {
        match self {
            FrameError::Oversized { size, limit } => {
                format!("frame of {size} bytes exceeds cap of {limit}")
            }
            FrameError::Malformed(msg) => msg.clone(),
            FrameError::MissingOp => "request has no 'op' field".to_string(),
        }
    }
}

/// The outcome of one handled request, rendered to a response line by
/// [`render_reply`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The query completed; `output` is the full report text.
    Ok {
        /// Report text (byte-identical to the one-shot CLI output).
        output: String,
    },
    /// The query's budget ran out at a stage boundary.
    Partial {
        /// The typed partial report (byte-identical to the one-shot CLI's
        /// budget-exhausted output).
        output: String,
        /// Which limit stopped the run (`StopReason` display string).
        stopped: String,
    },
    /// The query failed.
    Err {
        /// Stable kebab-case failure kind.
        kind: String,
        /// The exit code the equivalent CLI invocation would return.
        exit_code: i64,
        /// The rendered error chain.
        message: String,
    },
}

/// Parse one frame line into a [`Request`] under the wire limits.
///
/// # Errors
/// [`FrameError::Oversized`] when the line exceeds `limits.max_bytes`,
/// [`FrameError::Malformed`] for anything the parser or envelope rejects,
/// [`FrameError::MissingOp`] for an object without `op`.
pub fn parse_request(line: &str, limits: ParseLimits) -> Result<Request, FrameError> {
    let body = parse_with_limits(line, limits).map_err(|e| match e {
        JsonError::TooLarge { size, limit } => FrameError::Oversized { size, limit },
        other => FrameError::Malformed(other.to_string()),
    })?;
    if body.as_obj().is_err() {
        return Err(FrameError::Malformed("request must be a JSON object".to_string()));
    }
    let op = match body.field("op") {
        Ok(v) => v
            .as_str()
            .map_err(|_| FrameError::Malformed("'op' must be a string".to_string()))?
            .to_string(),
        Err(_) => return Err(FrameError::MissingOp),
    };
    let id = match body.as_obj().ok().and_then(|m| m.get("id")) {
        None => None,
        Some(v) => Some(v.as_usize().map_err(|_| {
            FrameError::Malformed("'id' must be a non-negative integer".to_string())
        })? as u64),
    };
    Ok(Request { id, op, body })
}

fn with_id(mut pairs: Vec<(&'static str, Json)>, id: Option<u64>) -> String {
    if let Some(id) = id {
        pairs.push(("id", Json::Num(id as f64)));
    }
    Json::obj(pairs).to_string_compact()
}

/// Render a handled reply as one compact response line (no newline).
pub fn render_reply(id: Option<u64>, reply: &Reply) -> String {
    match reply {
        Reply::Ok { output } => with_id(
            vec![
                ("status", Json::Str("ok".to_string())),
                ("output", Json::Str(output.clone())),
            ],
            id,
        ),
        Reply::Partial { output, stopped } => with_id(
            vec![
                ("status", Json::Str("partial".to_string())),
                ("stopped", Json::Str(stopped.clone())),
                ("output", Json::Str(output.clone())),
            ],
            id,
        ),
        Reply::Err {
            kind,
            exit_code,
            message,
        } => with_id(
            vec![
                ("status", Json::Str("error".to_string())),
                ("kind", Json::Str(kind.clone())),
                ("exit_code", Json::Num(*exit_code as f64)),
                ("error", Json::Str(message.clone())),
            ],
            id,
        ),
    }
}

/// Render an admission refusal with a retry hint.
pub fn render_overloaded(id: Option<u64>, retry_after_ms: u64) -> String {
    with_id(
        vec![
            ("status", Json::Str("overloaded".to_string())),
            ("retry_after_ms", Json::Num(retry_after_ms as f64)),
        ],
        id,
    )
}

/// Render the shutdown acknowledgement.
pub fn render_draining(id: Option<u64>) -> String {
    with_id(vec![("status", Json::Str("draining".to_string()))], id)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn limits() -> ParseLimits {
        ParseLimits::strict(1 << 16)
    }

    #[test]
    fn parses_envelope_fields() {
        let req = parse_request(r#"{"id":7,"op":"route","src":"0"}"#, limits()).unwrap();
        assert_eq!(req.id, Some(7));
        assert_eq!(req.op, "route");
        assert_eq!(req.body.field("src").unwrap().as_str().unwrap(), "0");
        let req = parse_request(r#"{"op":"ping"}"#, limits()).unwrap();
        assert_eq!(req.id, None);
    }

    #[test]
    fn rejects_bad_envelopes_with_typed_kinds() {
        let cases: &[(&str, &str)] = &[
            ("{not json", "malformed-frame"),
            ("[1,2,3]", "malformed-frame"),
            (r#"{"id":"x","op":"ping"}"#, "malformed-frame"),
            (r#"{"op":3}"#, "malformed-frame"),
            (r#"{"id":1}"#, "bad-request"),
        ];
        for (line, kind) in cases {
            let err = parse_request(line, limits()).unwrap_err();
            assert_eq!(err.kind(), *kind, "{line}");
        }
        let big = format!(r#"{{"op":"ping","pad":"{}"}}"#, "x".repeat(1 << 16));
        assert_eq!(parse_request(&big, limits()).unwrap_err().kind(), "oversized-frame");
    }

    #[test]
    fn response_lines_are_single_line_compact_json() {
        let reply = Reply::Partial {
            output: "line one\nline two".to_string(),
            stopped: "wall-clock deadline exceeded".to_string(),
        };
        let line = render_reply(Some(3), &reply);
        assert!(!line.contains('\n'), "{line}");
        let doc = riskroute_json::parse(&line).unwrap();
        assert_eq!(doc.field("status").unwrap().as_str().unwrap(), "partial");
        assert_eq!(doc.field("id").unwrap().as_usize().unwrap(), 3);
        assert_eq!(
            doc.field("output").unwrap().as_str().unwrap(),
            "line one\nline two"
        );
        let over = render_overloaded(None, 250);
        let doc = riskroute_json::parse(&over).unwrap();
        assert_eq!(doc.field("retry_after_ms").unwrap().as_usize().unwrap(), 250);
    }
}
