//! The daemon: listener loop, connection threads, admission, timeouts,
//! panic isolation, Prometheus scrape, and graceful drain.

use crate::protocol::{
    parse_request, render_draining, render_overloaded, render_reply, Reply, Request,
};
use crate::slowlog::{SlowLog, SlowQuery};
use riskroute_json::ParseLimits;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Knobs for the daemon's robustness envelope. Every limit is per the
/// contract in the crate docs; defaults suit an interactive deployment and
/// tests override them for speed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrently open connections; excess accepts are answered
    /// with an `overloaded` line and closed.
    pub max_connections: usize,
    /// Maximum queries executing at once across all connections; excess
    /// requests get `overloaded` with `retry_after_ms`.
    pub max_inflight: usize,
    /// Per-frame byte cap (request lines over this are rejected and the
    /// connection closed, since resync inside an unbounded frame is
    /// unbounded work).
    pub frame_cap_bytes: usize,
    /// Wire nesting limit for request documents.
    pub max_depth: usize,
    /// How long a connection may sit idle mid-frame before it is dropped
    /// as a stalled writer.
    pub read_timeout_ms: u64,
    /// How long one response write may block before the client is dropped
    /// as a stalled reader.
    pub write_timeout_ms: u64,
    /// After drain starts: how long in-flight work gets to finish before
    /// the shed flag cancels it, and then how long shed work gets to
    /// unwind cooperatively.
    pub drain_ms: u64,
    /// The retry hint attached to `overloaded` responses.
    pub retry_after_ms: u64,
    /// Ops that get per-endpoint counters and latency histograms; unknown
    /// ops are counted under `other` to bound metric cardinality.
    pub metric_ops: &'static [&'static str],
    /// Ring-buffer capacity of the slow-query log served by `GET /slow`.
    pub slow_log_capacity: usize,
    /// Per-op latency objectives in microseconds. A request slower than
    /// its op's objective counts as `obs_slo_bad_<op>` (otherwise
    /// `obs_slo_good_<op>`) and lands in the slow-query log. Ops without
    /// an entry fall back to the `"other"` row.
    pub slo_us: &'static [(&'static str, u64)],
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_connections: 64,
            max_inflight: 8,
            frame_cap_bytes: 1 << 20,
            max_depth: 32,
            read_timeout_ms: 10_000,
            write_timeout_ms: 5_000,
            drain_ms: 2_000,
            retry_after_ms: 100,
            metric_ops: &["ping", "route", "ratio", "provision", "replay", "sweep", "corpus"],
            slow_log_capacity: 128,
            slo_us: &[
                ("ping", 1_000),
                ("corpus", 50_000),
                ("route", 250_000),
                ("ratio", 2_000_000),
                ("provision", 30_000_000),
                ("replay", 30_000_000),
                ("sweep", 30_000_000),
                ("other", 1_000_000),
            ],
        }
    }
}

impl ServeConfig {
    /// The latency objective for `op` in microseconds: the op's row in
    /// [`slo_us`](ServeConfig::slo_us), else the `"other"` row, else 1 s.
    pub fn slo_for(&self, op: &str) -> u64 {
        self.slo_us
            .iter()
            .find(|(o, _)| *o == op)
            .or_else(|| self.slo_us.iter().find(|(o, _)| *o == "other"))
            .map_or(1_000_000, |&(_, us)| us)
    }
}

/// Per-request context the transport hands to the handler.
#[derive(Debug, Clone)]
pub struct QueryCx {
    /// The daemon's shed flag. Handlers must wire it into the request's
    /// `WorkBudget` (via `with_cancel`) so a drain past its deadline sheds
    /// in-flight work at the next stage boundary as a typed partial.
    pub cancel: Arc<AtomicBool>,
}

/// Query semantics, injected by the embedding binary. Implementations are
/// called from connection threads — one call per admitted request — and
/// must be panic-tolerant only in the sense that a panic fails that
/// request alone (the transport catches it).
pub trait QueryHandler: Send + Sync {
    /// Answer one request. The returned [`Reply`] is rendered verbatim.
    fn handle(&self, request: &Request, cx: &QueryCx) -> Reply;
}

/// What the drain observed, returned by [`Server::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Connections accepted over the daemon's lifetime.
    pub connections_total: u64,
    /// Requests admitted to a handler over the daemon's lifetime.
    pub requests_total: u64,
    /// Whether the shed flag had to be flipped (in-flight work outlived
    /// the first drain window).
    pub shed: bool,
    /// Whether connections were still active when the shed grace window
    /// closed — their threads are detached and the process should exit
    /// with the forced-drain code.
    pub forced: bool,
    /// How many connections were abandoned by a forced drain.
    pub abandoned_connections: usize,
}

struct State {
    draining: AtomicBool,
    shed: Arc<AtomicBool>,
    active_conns: AtomicUsize,
    inflight: AtomicUsize,
    connections_total: AtomicU64,
    requests_total: AtomicU64,
}

impl State {
    fn new() -> State {
        State {
            draining: AtomicBool::new(false),
            shed: Arc::new(AtomicBool::new(false)),
            active_conns: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            connections_total: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
        }
    }
}

/// A clonable handle that triggers drain from outside the listener loop
/// (tests, or an embedding binary's signal story).
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<State>,
}

impl ShutdownHandle {
    /// Begin graceful drain: stop accepting, let in-flight work finish or
    /// be shed within the configured windows.
    pub fn drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
    }

    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Listener {
    fn set_nonblocking(&self, v: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(v),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(v),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

impl Conn {
    fn set_nonblocking(&self, v: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(v),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(v),
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

struct Shared {
    state: Arc<State>,
    handler: Arc<dyn QueryHandler>,
    config: ServeConfig,
    slow_log: SlowLog,
}

/// The daemon. Bind, then [`run`](Server::run) on the current thread or
/// [`spawn`](Server::spawn) for in-process embedding (tests).
pub struct Server {
    listener: Listener,
    addr: Option<SocketAddr>,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind a TCP listener (use port 0 for an ephemeral port; the resolved
    /// address is available via [`local_addr`](Server::local_addr)).
    ///
    /// # Errors
    /// Any bind failure, verbatim.
    pub fn bind_tcp(
        addr: &str,
        handler: Arc<dyn QueryHandler>,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr().ok();
        register_latency_histograms(&config);
        Ok(Server {
            listener: Listener::Tcp(listener),
            addr,
            shared: Arc::new(Shared {
                state: Arc::new(State::new()),
                handler,
                slow_log: SlowLog::new(config.slow_log_capacity),
                config,
            }),
        })
    }

    /// Bind a Unix-domain socket listener at `path` (removed first if it
    /// is a stale socket file).
    ///
    /// # Errors
    /// Any bind failure, verbatim.
    #[cfg(unix)]
    pub fn bind_unix(
        path: &str,
        handler: Arc<dyn QueryHandler>,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        register_latency_histograms(&config);
        Ok(Server {
            listener: Listener::Unix(listener),
            addr: None,
            shared: Arc::new(Shared {
                state: Arc::new(State::new()),
                handler,
                slow_log: SlowLog::new(config.slow_log_capacity),
                config,
            }),
        })
    }

    /// The resolved TCP address (None for Unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// A handle that can trigger drain from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.shared.state),
        }
    }

    /// Run the accept loop on the current thread until drain completes.
    pub fn run(self) -> DrainReport {
        let Server {
            listener, shared, ..
        } = self;
        // Nonblocking accept + sleep keeps drain responsive without any
        // platform signal machinery.
        if listener.set_nonblocking(true).is_err() {
            // Extremely unlikely; degrade to an immediate forced drain
            // rather than risking an unbreakable blocking accept.
            shared.state.draining.store(true, Ordering::SeqCst);
        }
        let state = Arc::clone(&shared.state);
        while !state.draining.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok(conn) => accept_connection(conn, &shared),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                // Transient accept errors (ECONNABORTED etc.) must not
                // kill the daemon.
                Err(_) => thread::sleep(Duration::from_millis(2)),
            }
        }
        drain(&shared)
    }

    /// Run on a background thread; returns once the listener is live.
    pub fn spawn(self) -> SpawnedServer {
        let addr = self.addr;
        let handle = self.shutdown_handle();
        let join = thread::spawn(move || self.run());
        SpawnedServer { addr, handle, join }
    }
}

/// An in-process daemon started by [`Server::spawn`].
pub struct SpawnedServer {
    /// The resolved TCP address (None for Unix sockets).
    pub addr: Option<SocketAddr>,
    handle: ShutdownHandle,
    join: thread::JoinHandle<DrainReport>,
}

impl SpawnedServer {
    /// A drain trigger for this daemon.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.handle.clone()
    }

    /// Trigger drain and wait for the listener thread to finish.
    pub fn drain_and_join(self) -> DrainReport {
        self.handle.drain();
        self.join_inner()
    }

    /// Wait for a drain that is already underway (e.g. after a protocol
    /// `shutdown` request).
    pub fn join(self) -> DrainReport {
        self.join_inner()
    }

    fn join_inner(self) -> DrainReport {
        self.join.join().unwrap_or(DrainReport {
            connections_total: 0,
            requests_total: 0,
            shed: false,
            forced: true,
            abandoned_connections: 0,
        })
    }
}

fn counter(name: &str) {
    riskroute_obs::counter_add(name, 1);
}

/// Pre-register the µs-scaled request and queue-wait histograms so a
/// scrape before the first admitted request still exports complete
/// zero-observation series with sensible bucket bounds. No-op while the
/// collector is disabled (the embedding binary enables it before binding).
fn register_latency_histograms(config: &ServeConfig) {
    use riskroute_obs::Histogram;
    for family in ["serve_request_us", "serve_queue_wait_us"] {
        riskroute_obs::histogram_register(family, Histogram::micros_default());
        for op in config.metric_ops.iter().chain(std::iter::once(&"other")) {
            riskroute_obs::histogram_register(&format!("{family}_{op}"), Histogram::micros_default());
        }
    }
}

fn accept_connection(conn: Conn, shared: &Arc<Shared>) {
    let state = &shared.state;
    state.connections_total.fetch_add(1, Ordering::Relaxed);
    counter("serve_connections_total");
    let admitted = state
        .active_conns
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.config.max_connections).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        counter("serve_connections_rejected");
        let mut conn = conn;
        let _ = conn.set_nonblocking(false);
        let _ = conn.set_write_timeout(Some(Duration::from_millis(
            shared.config.write_timeout_ms.max(1),
        )));
        let mut line = render_overloaded(None, shared.config.retry_after_ms);
        line.push('\n');
        let _ = conn.write_all(line.as_bytes());
        return;
    }
    let shared = Arc::clone(shared);
    // Detached on purpose: drain tracks liveness through active_conns, and
    // a stuck thread must never wedge shutdown (forced drain abandons it).
    let _ = thread::Builder::new()
        .name("riskroute-serve-conn".to_string())
        .spawn(move || {
            let _guard = ConnGuard(Arc::clone(&shared.state));
            connection_loop(conn, &shared);
        });
}

struct ConnGuard(Arc<State>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

struct InflightGuard(Arc<State>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The read tick: short enough that drain and stall checks stay
/// responsive, independent of the configured stall timeout.
const READ_TICK_MS: u64 = 25;

fn connection_loop(mut conn: Conn, shared: &Arc<Shared>) {
    let config = &shared.config;
    let state = &shared.state;
    // Accepted sockets inherit the listener's nonblocking flag on some
    // platforms; normalize to blocking-with-timeout semantics.
    if conn.set_nonblocking(false).is_err() {
        return;
    }
    let tick = Duration::from_millis(READ_TICK_MS.min(config.read_timeout_ms.max(1)));
    if conn.set_read_timeout(Some(tick)).is_err() {
        return;
    }
    let _ = conn.set_write_timeout(Some(Duration::from_millis(config.write_timeout_ms.max(1))));

    let mut buf: Vec<u8> = Vec::new();
    let mut idle = Duration::ZERO;
    let mut first_frame = true;
    let mut chunk = [0u8; 4096];
    // Stamped at the read that completed each frame, so a pipelined frame's
    // queue wait includes the time it sat buffered behind its predecessors.
    let mut received = Instant::now();
    loop {
        // Drain complete frames already buffered.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = buf.drain(..=nl).collect();
            line.pop(); // newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if first_frame && line.starts_with(b"GET ") {
                serve_http(&mut conn, &line, shared);
                return;
            }
            first_frame = false;
            if line.is_empty() {
                continue;
            }
            if !handle_frame(&mut conn, &line, shared, received) {
                return;
            }
        }
        if buf.len() > config.frame_cap_bytes {
            counter("serve_frames_oversized");
            write_line(
                &mut conn,
                &render_reply(
                    None,
                    &Reply::Err {
                        kind: "oversized-frame".to_string(),
                        exit_code: 2,
                        message: format!(
                            "frame exceeds cap of {} bytes",
                            config.frame_cap_bytes
                        ),
                    },
                ),
                state,
            );
            return;
        }
        if state.draining.load(Ordering::SeqCst) {
            // Stop taking new frames; in-flight work (other connections)
            // finishes under the drain windows.
            return;
        }
        match conn.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    counter("serve_frames_truncated");
                }
                return;
            }
            Ok(n) => {
                idle = Duration::ZERO;
                received = Instant::now();
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                idle += tick;
                if idle.as_millis() as u64 >= config.read_timeout_ms {
                    counter("serve_clients_stalled");
                    if !buf.is_empty() {
                        counter("serve_frames_truncated");
                    }
                    return;
                }
            }
            Err(_) => {
                counter("serve_clients_disconnected");
                return;
            }
        }
    }
}

/// Handle one complete frame; returns false when the connection must close.
fn handle_frame(conn: &mut Conn, line: &[u8], shared: &Arc<Shared>, received: Instant) -> bool {
    let config = &shared.config;
    let state = &shared.state;
    let text = match std::str::from_utf8(line) {
        Ok(t) => t,
        Err(_) => {
            counter("serve_frames_malformed");
            return write_line(
                conn,
                &render_reply(
                    None,
                    &Reply::Err {
                        kind: "malformed-frame".to_string(),
                        exit_code: 2,
                        message: "frame is not valid UTF-8".to_string(),
                    },
                ),
                state,
            );
        }
    };
    let limits = ParseLimits {
        max_depth: config.max_depth,
        max_bytes: config.frame_cap_bytes,
    };
    let request = match parse_request(text, limits) {
        Ok(r) => r,
        Err(e) => {
            match e {
                crate::protocol::FrameError::Oversized { .. } => counter("serve_frames_oversized"),
                _ => counter("serve_frames_malformed"),
            }
            return write_line(
                conn,
                &render_reply(
                    None,
                    &Reply::Err {
                        kind: e.kind().to_string(),
                        exit_code: 2,
                        message: e.message(),
                    },
                ),
                state,
            );
        }
    };
    match request.op.as_str() {
        "shutdown" => {
            counter("serve_shutdown_requests");
            state.draining.store(true, Ordering::SeqCst);
            write_line(conn, &render_draining(request.id), state);
            false
        }
        _ => execute(conn, &request, shared, received),
    }
}

/// Admission-check, execute, and answer one query; returns false when the
/// connection must close.
///
/// Each admitted request runs under its own [`riskroute_obs::ObsScope`]
/// trace, so engine counters (SSSP runs, cache traffic, adopted trees) are
/// attributed per request. Trace IDs never appear in reply bytes —
/// responses stay byte-identical with tracing on or off.
fn execute(conn: &mut Conn, request: &Request, shared: &Arc<Shared>, received: Instant) -> bool {
    let config = &shared.config;
    let state = &shared.state;
    let admitted = state
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < config.max_inflight).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        counter("serve_requests_overloaded");
        return write_line(
            conn,
            &render_overloaded(request.id, config.retry_after_ms),
            state,
        );
    }
    let _guard = InflightGuard(Arc::clone(state));
    state.requests_total.fetch_add(1, Ordering::Relaxed);
    counter("serve_requests_total");
    let op_metric = if config.metric_ops.contains(&request.op.as_str()) {
        request.op.as_str()
    } else {
        "other"
    };
    riskroute_obs::counter_add(&format!("serve_op_{op_metric}"), 1);
    let queue_us = received.elapsed().as_micros() as u64;
    riskroute_obs::histogram_observe("serve_queue_wait_us", queue_us as f64);
    riskroute_obs::histogram_observe(&format!("serve_queue_wait_us_{op_metric}"), queue_us as f64);
    let cx = QueryCx {
        cancel: Arc::clone(&state.shed),
    };
    let scope = riskroute_obs::ObsScope::begin(op_metric);
    let start = Instant::now();
    let outcome = {
        let _obs = scope.enter();
        // `ping` is answered here, not by the handler — it is a protocol
        // liveness probe, but it still rides the full accounting path
        // (admission, queue wait, latency histograms, SLO counters).
        if request.op.as_str() == "ping" {
            Ok(Reply::Ok {
                output: "pong".to_string(),
            })
        } else {
            catch_unwind(AssertUnwindSafe(|| shared.handler.handle(request, &cx)))
        }
    };
    let wall_us = start.elapsed().as_micros() as u64;
    riskroute_obs::histogram_observe("serve_request_us", wall_us as f64);
    riskroute_obs::histogram_observe(&format!("serve_request_us_{op_metric}"), wall_us as f64);
    let (reply, stop) = match outcome {
        Ok(reply) => {
            let class = match &reply {
                Reply::Ok { .. } => "serve_requests_ok",
                Reply::Partial { .. } => "serve_requests_partial",
                Reply::Err { .. } => "serve_requests_error",
            };
            counter(class);
            let stop = match &reply {
                Reply::Ok { .. } => "-".to_string(),
                Reply::Partial { stopped, .. } => stopped.clone(),
                Reply::Err { kind, .. } => format!("error:{kind}"),
            };
            (reply, stop)
        }
        Err(_) => {
            counter("serve_requests_panicked");
            (
                Reply::Err {
                    kind: "panic".to_string(),
                    exit_code: 7,
                    message: "worker panicked while answering this request".to_string(),
                },
                "error:panic".to_string(),
            )
        }
    };
    let line = render_reply(request.id, &reply);
    let slo_us = config.slo_for(op_metric);
    if wall_us <= slo_us {
        riskroute_obs::counter_add(&format!("obs_slo_good_{op_metric}"), 1);
    } else {
        riskroute_obs::counter_add(&format!("obs_slo_bad_{op_metric}"), 1);
        // The slow log is the daemon's own accounting — it works even with
        // the obs collector disabled (per-trace counters are then zero).
        let traced = riskroute_obs::trace_counters(scope.trace_id());
        let attributed = |name: &str| traced.get(name).copied().unwrap_or(0);
        shared.slow_log.push(SlowQuery {
            trace_id: scope.trace_id(),
            op: op_metric.to_string(),
            lambda_h: request.body.field("lambda_h").ok().and_then(|v| v.as_f64().ok()),
            lambda_f: request.body.field("lambda_f").ok().and_then(|v| v.as_f64().ok()),
            wall_us,
            queue_us,
            slo_us,
            sssp_runs: attributed("risk_sssp_runs"),
            cache_hits: attributed("route_cache_hits"),
            cache_misses: attributed("route_cache_misses"),
            trees_adopted: attributed("scenario_trees_adopted"),
            bytes: line.len() as u64 + 1,
            stop,
        });
    }
    write_line(conn, &line, state)
}

/// Write one response line; returns false (close connection) on failure.
fn write_line(conn: &mut Conn, line: &str, _state: &Arc<State>) -> bool {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    match conn.write_all(&bytes).and_then(|()| conn.flush()) {
        Ok(()) => true,
        Err(e)
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
        {
            counter("serve_clients_stalled");
            false
        }
        Err(_) => {
            counter("serve_clients_disconnected");
            false
        }
    }
}

/// Answer a `GET` first line as HTTP: `/metrics` scrapes the obs registry
/// in Prometheus text exposition, `/slow` serves the slow-query log as
/// JSON (newest breach first); anything else is 404. The connection closes
/// after the response (HTTP/1.0 semantics).
fn serve_http(conn: &mut Conn, request_line: &[u8], shared: &Arc<Shared>) {
    counter("serve_scrapes_total");
    let path = std::str::from_utf8(request_line)
        .ok()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = if path == "/metrics" {
        let snap = riskroute_obs::snapshot();
        (
            "200 OK",
            "text/plain; version=0.0.4",
            riskroute_obs::export::to_prometheus(&snap),
        )
    } else if path == "/slow" {
        let mut body = shared.slow_log.render_json();
        body.push('\n');
        ("200 OK", "application/json", body)
    } else {
        (
            "404 Not Found",
            "text/plain; version=0.0.4",
            String::from("not found\n"),
        )
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = conn.write_all(response.as_bytes());
    let _ = conn.flush();
}

fn drain(shared: &Arc<Shared>) -> DrainReport {
    let state = &shared.state;
    let window = Duration::from_millis(shared.config.drain_ms.max(1));
    // Window one: let in-flight work finish untouched.
    let deadline = Instant::now() + window;
    while state.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(2));
    }
    let mut shed = false;
    if state.active_conns.load(Ordering::SeqCst) > 0 {
        // Window two: shed — every budget wired to the shed flag stops at
        // its next stage boundary and the request answers `partial`.
        shed = true;
        counter("serve_drain_shed");
        state.shed.store(true, Ordering::SeqCst);
        let grace = Instant::now() + window;
        while state.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
            thread::sleep(Duration::from_millis(2));
        }
    }
    let abandoned = state.active_conns.load(Ordering::SeqCst);
    if abandoned > 0 {
        counter("serve_drain_forced");
    }
    DrainReport {
        connections_total: state.connections_total.load(Ordering::Relaxed),
        requests_total: state.requests_total.load(Ordering::Relaxed),
        shed,
        forced: abandoned > 0,
        abandoned_connections: abandoned,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    struct EchoHandler;

    impl QueryHandler for EchoHandler {
        fn handle(&self, request: &Request, _cx: &QueryCx) -> Reply {
            match request.op.as_str() {
                "boom" => panic!("induced worker panic"),
                "slow" => {
                    thread::sleep(Duration::from_millis(300));
                    Reply::Ok {
                        output: "slow done".to_string(),
                    }
                }
                "slowboom" => {
                    thread::sleep(Duration::from_millis(60));
                    panic!("induced slow worker panic")
                }
                other => Reply::Ok {
                    output: format!("echo:{other}"),
                },
            }
        }
    }

    fn fast_config() -> ServeConfig {
        ServeConfig {
            max_inflight: 2,
            frame_cap_bytes: 1 << 12,
            read_timeout_ms: 200,
            write_timeout_ms: 200,
            drain_ms: 400,
            ..ServeConfig::default()
        }
    }

    fn start() -> (SpawnedServer, SocketAddr) {
        let server = Server::bind_tcp("127.0.0.1:0", Arc::new(EchoHandler), fast_config())
            .expect("bind");
        let addr = server.local_addr().expect("tcp addr");
        (server.spawn(), addr)
    }

    fn roundtrip(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut out = String::new();
        reader.read_line(&mut out).unwrap();
        out.trim_end().to_string()
    }

    #[test]
    fn answers_ping_and_echoes_ids() {
        let (server, addr) = start();
        let line = roundtrip(addr, r#"{"id":9,"op":"ping"}"#);
        let doc = riskroute_json::parse(&line).unwrap();
        assert_eq!(doc.field("status").unwrap().as_str().unwrap(), "ok");
        assert_eq!(doc.field("output").unwrap().as_str().unwrap(), "pong");
        assert_eq!(doc.field("id").unwrap().as_usize().unwrap(), 9);
        let report = server.drain_and_join();
        assert!(!report.forced);
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_resync() {
        let (server, addr) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{ not json\n{\"op\":\"ping\"}\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        let doc = riskroute_json::parse(first.trim_end()).unwrap();
        assert_eq!(doc.field("status").unwrap().as_str().unwrap(), "error");
        assert_eq!(doc.field("kind").unwrap().as_str().unwrap(), "malformed-frame");
        // The same connection resyncs at the newline and answers the ping.
        let mut second = String::new();
        reader.read_line(&mut second).unwrap();
        let doc = riskroute_json::parse(second.trim_end()).unwrap();
        assert_eq!(doc.field("output").unwrap().as_str().unwrap(), "pong");
        server.drain_and_join();
    }

    #[test]
    fn worker_panic_fails_only_that_request() {
        let (server, addr) = start();
        let line = roundtrip(addr, r#"{"id":1,"op":"boom"}"#);
        let doc = riskroute_json::parse(&line).unwrap();
        assert_eq!(doc.field("kind").unwrap().as_str().unwrap(), "panic");
        assert_eq!(doc.field("exit_code").unwrap().as_usize().unwrap(), 7);
        // The daemon is still alive.
        let line = roundtrip(addr, r#"{"op":"ping"}"#);
        assert!(line.contains("pong"));
        let report = server.drain_and_join();
        assert!(!report.forced);
    }

    #[test]
    fn saturation_sheds_with_retry_hint() {
        let (server, addr) = start();
        // Two slow requests occupy both inflight slots…
        let busy: Vec<_> = (0..2)
            .map(|_| {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(b"{\"op\":\"slow\"}\n").unwrap();
                s
            })
            .collect();
        thread::sleep(Duration::from_millis(80));
        // …so the third is refused with a retry hint.
        let line = roundtrip(addr, r#"{"id":3,"op":"slow"}"#);
        let doc = riskroute_json::parse(&line).unwrap();
        assert_eq!(doc.field("status").unwrap().as_str().unwrap(), "overloaded");
        assert!(doc.field("retry_after_ms").unwrap().as_usize().unwrap() > 0);
        for s in busy {
            let mut reader = BufReader::new(s);
            let mut out = String::new();
            reader.read_line(&mut out).unwrap();
            assert!(out.contains("slow done"));
        }
        server.drain_and_join();
    }

    #[test]
    fn shutdown_request_drains_cleanly() {
        let (server, addr) = start();
        let line = roundtrip(addr, r#"{"op":"shutdown"}"#);
        assert!(line.contains("draining"));
        let report = server.join();
        assert!(!report.forced);
        assert!(!report.shed);
        // The listener is gone.
        thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(addr).is_err() || {
            // A lingering accept queue entry may connect but must see EOF.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"{\"op\":\"ping\"}\n").unwrap();
            let mut out = String::new();
            BufReader::new(s).read_line(&mut out).unwrap_or(0) == 0
        });
    }

    #[test]
    fn slo_breaches_feed_the_slow_log_endpoint() {
        riskroute_obs::enable();
        let config = ServeConfig {
            slo_us: &[("ping", 1_000), ("other", 10_000)],
            slow_log_capacity: 4,
            ..fast_config()
        };
        let server =
            Server::bind_tcp("127.0.0.1:0", Arc::new(EchoHandler), config).expect("bind");
        let addr = server.local_addr().expect("tcp addr");
        let server = server.spawn();
        let bad_before = riskroute_obs::counter_value("obs_slo_bad_other");
        let line = roundtrip(addr, r#"{"id":1,"op":"slow","lambda_h":250000.0}"#);
        assert!(line.contains("slow done"), "{line}");
        let line = roundtrip(addr, r#"{"id":2,"op":"slowboom"}"#);
        assert!(line.contains("panic"), "{line}");
        assert!(
            riskroute_obs::counter_value("obs_slo_bad_other") >= bad_before + 2,
            "both breaches must count against the objective"
        );
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /slow HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        BufReader::new(stream).read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.0 200 OK"), "{body}");
        assert!(body.contains("application/json"), "{body}");
        let json = body.split("\r\n\r\n").nth(1).unwrap().trim();
        let doc = riskroute_json::parse(json).unwrap();
        let rows = doc.field("slow_queries").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2, "{json}");
        // Newest breach first: the panicked request, then the slow one.
        assert_eq!(
            rows[0].field("stop").unwrap().as_str().unwrap(),
            "error:panic"
        );
        assert_eq!(rows[1].field("stop").unwrap().as_str().unwrap(), "-");
        assert_eq!(rows[1].field("op").unwrap().as_str().unwrap(), "other");
        let lh = rows[1].field("lambda_h").unwrap().as_f64().unwrap();
        assert!((lh - 250_000.0).abs() < 1e-9, "{lh}");
        assert!(rows[1].field("trace_id").unwrap().as_usize().unwrap() > 0);
        assert!(rows[1].field("wall_us").unwrap().as_usize().unwrap() > 10_000);
        assert!(rows[1].field("bytes").unwrap().as_usize().unwrap() > 0);
        server.drain_and_join();
    }

    #[test]
    fn metrics_endpoint_scrapes_prometheus_text() {
        riskroute_obs::enable();
        let (server, addr) = start();
        roundtrip(addr, r#"{"op":"ping"}"#);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        BufReader::new(stream).read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.0 200 OK"), "{body}");
        assert!(body.contains("riskroute_serve_connections_total"), "{body}");
        server.drain_and_join();
    }
}
