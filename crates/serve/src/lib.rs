//! Std-only query-daemon transport for RiskRoute (`riskroute serve`).
//!
//! This crate owns everything about serving **except** the queries
//! themselves: listener management (TCP and, on Unix, a Unix-domain
//! socket), newline-delimited-JSON framing with per-connection size and
//! depth caps, admission control and load shedding, slow-client read/write
//! timeouts, per-request panic isolation, a Prometheus scrape endpoint
//! multiplexed on the same listener, and graceful drain with a shed
//! deadline. Query semantics are injected through [`QueryHandler`] — the
//! CLI crate implements it over its warm engine context, which is how
//! serve responses stay byte-identical to one-shot CLI invocations.
//!
//! ## Wire protocol
//!
//! One request per line, one response line per request, both compact JSON:
//!
//! ```text
//! → {"id":1,"op":"route","network":"Sprint","src":"0","dst":"5"}
//! ← {"id":1,"output":"…","status":"ok"}
//! ```
//!
//! Responses carry a `status` of `ok`, `partial` (budget ran out — the
//! `output` is the typed partial report and `stopped` names the limit),
//! `error` (typed `kind` + CLI-compatible `exit_code`), `overloaded`
//! (admission refused; `retry_after_ms` hints when to retry), or
//! `draining` (shutdown acknowledged). A first line starting with `GET `
//! is answered as HTTP: `GET /metrics` serves the obs registry in
//! Prometheus text exposition, `GET /slow` serves the slow-query log as
//! JSON (newest SLO breach first), and either closes.
//!
//! ## Tracing and attribution
//!
//! Every admitted request runs under its own [`riskroute_obs::ObsScope`]
//! trace: engine counters the handler touches (SSSP runs, route-cache
//! traffic, adopted trees) are attributed to that request, per-op latency
//! and queue-wait histograms (`serve_request_us_*`,
//! `serve_queue_wait_us_*`) are recorded in microseconds, and requests
//! slower than their per-op objective count as `obs_slo_bad_<op>` and land
//! in the ring-buffer slow-query log ([`SlowLog`]). Trace IDs never appear
//! in reply bytes, so responses stay byte-identical with tracing on or
//! off.
//!
//! ## Robustness contract
//!
//! Every failure mode degrades one request or one connection, never the
//! process: malformed frames get typed error responses and the connection
//! resyncs at the next newline; oversized or over-deep frames are rejected
//! by limit (never by allocation); clients that stall mid-frame or stop
//! reading are timed out and disconnected; a panicking worker fails only
//! its request (`serve_requests_panicked`); saturation sheds with
//! `overloaded` instead of queueing without bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod protocol;
pub mod server;
pub mod slowlog;

pub use protocol::{FrameError, Reply, Request};
pub use server::{DrainReport, QueryCx, QueryHandler, ServeConfig, Server, ShutdownHandle, SpawnedServer};
pub use slowlog::{SlowLog, SlowQuery};
