//! Ring-buffer slow-query log: the last N requests that blew their
//! per-op latency objective, with enough attribution (trace ID, per-trace
//! engine counters, bytes, stop reason) to answer "which query burned the
//! budget" without re-running anything. Served as JSON by `GET /slow`.

use riskroute_json::Json;
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// One request that exceeded its latency objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQuery {
    /// Trace ID assigned by the daemon (0 when collection was disabled).
    pub trace_id: u64,
    /// Normalized op (unknown ops appear as `other`).
    pub op: String,
    /// Request-level λ_h override, when the request carried one.
    pub lambda_h: Option<f64>,
    /// Request-level λ_f override, when the request carried one.
    pub lambda_f: Option<f64>,
    /// Handler wall time in microseconds.
    pub wall_us: u64,
    /// Time between frame completion and handler dispatch in microseconds.
    pub queue_us: u64,
    /// The latency objective the request was judged against.
    pub slo_us: u64,
    /// β-scaled SSSP runs attributed to this request's trace.
    pub sssp_runs: u64,
    /// Route-tree cache hits attributed to this request's trace.
    pub cache_hits: u64,
    /// Route-tree cache misses attributed to this request's trace.
    pub cache_misses: u64,
    /// Scenario-fork route trees adopted under this request's trace.
    pub trees_adopted: u64,
    /// Response size in bytes (rendered line + newline).
    pub bytes: u64,
    /// `-` for a clean completion, the budget stop reason for partials,
    /// `error:<kind>` for typed failures (including `error:panic`).
    pub stop: String,
}

fn opt_num(v: Option<f64>) -> Json {
    match v {
        Some(x) => Json::Num(x),
        None => Json::Null,
    }
}

impl SlowQuery {
    /// The entry as one JSON object (the `GET /slow` row shape).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::Num(self.trace_id as f64)),
            ("op", Json::Str(self.op.clone())),
            ("lambda_h", opt_num(self.lambda_h)),
            ("lambda_f", opt_num(self.lambda_f)),
            ("wall_us", Json::Num(self.wall_us as f64)),
            ("queue_us", Json::Num(self.queue_us as f64)),
            ("slo_us", Json::Num(self.slo_us as f64)),
            ("sssp_runs", Json::Num(self.sssp_runs as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("cache_misses", Json::Num(self.cache_misses as f64)),
            ("trees_adopted", Json::Num(self.trees_adopted as f64)),
            ("bytes", Json::Num(self.bytes as f64)),
            ("stop", Json::Str(self.stop.clone())),
        ])
    }
}

/// Fixed-capacity ring buffer of [`SlowQuery`] entries; pushing past
/// capacity evicts the oldest. Independent of the obs collector's enabled
/// flag — the daemon's own latency accounting always works.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    evicted: Mutex<u64>,
    entries: Mutex<VecDeque<SlowQuery>>,
}

impl SlowLog {
    /// An empty log holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            evicted: Mutex::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<SlowQuery>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record one slow query, evicting the oldest entry when full.
    pub fn push(&self, entry: SlowQuery) {
        let mut entries = self.lock();
        while entries.len() >= self.capacity {
            entries.pop_front();
            *self.evicted.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        }
        entries.push_back(entry);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Render the whole log as one JSON document, newest entry first:
    /// `{"capacity":N,"evicted":M,"slow_queries":[...]}`.
    pub fn render_json(&self) -> String {
        let rows: Vec<Json> = self.lock().iter().rev().map(SlowQuery::to_json).collect();
        let evicted = *self.evicted.lock().unwrap_or_else(PoisonError::into_inner);
        Json::obj([
            ("capacity", Json::Num(self.capacity as f64)),
            ("evicted", Json::Num(evicted as f64)),
            ("slow_queries", Json::Arr(rows)),
        ])
        .to_string_compact()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn entry(trace: u64, op: &str) -> SlowQuery {
        SlowQuery {
            trace_id: trace,
            op: op.to_string(),
            lambda_h: trace.is_multiple_of(2).then_some(1e5),
            lambda_f: None,
            wall_us: 10 * trace,
            queue_us: trace,
            slo_us: 5,
            sssp_runs: 3,
            cache_hits: 2,
            cache_misses: 1,
            trees_adopted: 0,
            bytes: 128,
            stop: "-".to_string(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_renders_newest_first() {
        let log = SlowLog::new(3);
        assert!(log.is_empty());
        for i in 1..=5 {
            log.push(entry(i, "route"));
        }
        assert_eq!(log.len(), 3);
        let doc = riskroute_json::parse(&log.render_json()).unwrap();
        assert_eq!(doc.field("capacity").unwrap().as_usize().unwrap(), 3);
        assert_eq!(doc.field("evicted").unwrap().as_usize().unwrap(), 2);
        let rows = doc.field("slow_queries").unwrap().as_arr().unwrap();
        let ids: Vec<usize> = rows
            .iter()
            .map(|r| r.field("trace_id").unwrap().as_usize().unwrap())
            .collect();
        assert_eq!(ids, vec![5, 4, 3]);
        // Null λ override survives the JSON round trip as null.
        assert!(matches!(
            rows[0].field("lambda_f").unwrap(),
            riskroute_json::Json::Null
        ));
        assert_eq!(rows[0].field("stop").unwrap().as_str().unwrap(), "-");
    }
}
