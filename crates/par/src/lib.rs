//! A zero-dependency scoped thread pool for RiskRoute's embarrassingly
//! parallel sweeps (all-pairs routing, candidate scoring, replay ticks).
//!
//! # Determinism contract
//!
//! The pool exists to make parallel runs **bit-identical** to sequential
//! ones, so its one reduction primitive is *ordered*:
//! [`par_map_collect`] returns `f(0, &items[0]), f(1, &items[1]), …` in
//! input order no matter which worker computed which element or in what
//! order they finished. Callers that fold floating-point sums therefore
//! replay the exact sequential addition order, and downstream sorts and
//! greedy argmax tie-breaks see the same element order either way.
//!
//! # Scheduling
//!
//! Work is distributed by chunked self-stealing: the item range is split
//! into contiguous chunks and idle workers steal the next unclaimed chunk
//! from a shared cursor. Chunk *assignment* is timing-dependent; chunk
//! *placement* in the output is not — each result lands in its input slot.
//!
//! # Budget check-in
//!
//! Budget-aware callers (the replay sweep) drive the pool in fixed-size
//! waves and consult their `WorkBudget` between waves; inside a wave the
//! pool never outruns the items it was handed. A deterministic (max-work)
//! cut therefore lands on the same stage boundary regardless of thread
//! count — the caller computes the wave quota from the budget *before*
//! dispatch rather than racing workers against the counter.
//!
//! # Panic poisoning
//!
//! A panicking task poisons the pool: the panic is caught on the worker,
//! remaining chunks are abandoned, every worker drains, and the call
//! returns a typed [`PoolError`] instead of aborting the process (callers
//! in `riskroute` convert it to their own error taxonomy).
//!
//! # Observability
//!
//! Each worker accumulates plain local counters (tasks executed, chunk
//! steals, idle parks) and the pool merges them into the global
//! `riskroute-obs` registry once at drain, so the hot loop never touches
//! the shared registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on spawned workers, far above any sane `--threads` value;
/// protects against absurd requests turning into fork bombs.
pub const MAX_WORKERS: usize = 256;

/// How many chunks each worker's fair share is split into: small enough to
/// amortize the cursor contention, large enough that uneven tasks (early
/// sources have longer inner loops) still balance by stealing.
const CHUNKS_PER_WORKER: usize = 4;

/// The parallelism knob threaded from the CLI's global `--threads` flag
/// down to every hot path.
///
/// `Sequential` is not "one worker": callers keep their original
/// single-threaded code path untouched, so it is also the bit-exact
/// reference the equivalence suite compares parallel runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run the caller's original sequential code path (the default).
    #[default]
    Sequential,
    /// Spawn exactly this many workers (clamped to `1..=`[`MAX_WORKERS`]).
    Threads(usize),
    /// Spawn one worker per available hardware thread.
    Auto,
}

impl Parallelism {
    /// The number of workers this knob resolves to.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.clamp(1, MAX_WORKERS),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(MAX_WORKERS),
        }
    }

    /// Whether this is the sequential reference path.
    pub fn is_sequential(self) -> bool {
        matches!(self, Parallelism::Sequential)
    }

    /// Map a `--threads N` count to a knob: `0` and `1` mean the sequential
    /// reference path, anything larger a pool of `n` workers.
    pub fn from_worker_count(n: usize) -> Self {
        if n <= 1 {
            Parallelism::Sequential
        } else {
            Parallelism::Threads(n)
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Sequential => write!(f, "sequential"),
            Parallelism::Threads(n) => write!(f, "{n} threads"),
            Parallelism::Auto => write!(f, "auto"),
        }
    }
}

/// A poisoned pool: the typed replacement for a parallel abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// One or more tasks panicked. The panics were caught on their
    /// workers, the remaining work was abandoned, and the pool drained.
    WorkerPanicked {
        /// Number of tasks whose panic was caught.
        panicked: usize,
    },
    /// A worker died without completing its claimed chunk and without a
    /// caught panic — defensive; unreachable through safe task code.
    WorkerLost,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::WorkerPanicked { panicked } => {
                write!(f, "parallel pool poisoned: {panicked} task(s) panicked")
            }
            PoolError::WorkerLost => {
                write!(f, "parallel pool poisoned: a worker died mid-chunk")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Map `f` over `items` with the given parallelism, returning results in
/// **input order** (see the module docs' determinism contract).
///
/// Task panics are caught in every mode — including `Sequential`, so the
/// contract is uniform — and surface as [`PoolError::WorkerPanicked`].
///
/// # Errors
/// [`PoolError`] when any task panicked (the pool is drained first).
pub fn try_par_map_collect<T, R, F>(
    par: Parallelism,
    items: &[T],
    f: F,
) -> Result<Vec<R>, PoolError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = par.workers().min(n);
    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, item) in items.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                Ok(r) => out.push(r),
                Err(_) => return Err(PoolError::WorkerPanicked { panicked: 1 }),
            }
        }
        return Ok(out);
    }
    run_pool(workers, items, &f)
}

/// [`try_par_map_collect`] for infallible pipelines: a poisoned pool
/// re-raises as a panic on the caller's thread (exactly what the same task
/// panic would have done sequentially).
///
/// # Panics
/// Panics when any task panicked.
pub fn par_map_collect<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_par_map_collect(par, items, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// What one worker brings home at drain.
struct WorkerOutcome<R> {
    /// `(input index, result)` pairs, later placed into ordered slots.
    results: Vec<(usize, R)>,
    tasks: u64,
    steals: u64,
    panicked: usize,
}

fn run_pool<T, R, F>(workers: usize, items: &[T], f: &F) -> Result<Vec<R>, PoolError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let chunk = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicUsize::new(0);
    let mut outcomes: Vec<WorkerOutcome<R>> = Vec::with_capacity(workers);
    let mut lost = 0usize;
    // Capture the dispatching thread's attribution scope so every worker
    // reports counters and spans to the same trace (one load + branch
    // when collection is disabled: the scope is NONE and enter() no-ops).
    let obs_scope = riskroute_obs::ObsScope::current();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let _obs = obs_scope.enter();
                let mut results: Vec<(usize, R)> = Vec::new();
                let mut tasks = 0u64;
                let mut steals = 0u64;
                let mut panicked = 0usize;
                loop {
                    if poisoned.load(Ordering::Relaxed) > 0 {
                        break;
                    }
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    steals += 1;
                    let end = (start + chunk).min(n);
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                            Ok(r) => {
                                results.push((i, r));
                                tasks += 1;
                            }
                            Err(_) => {
                                panicked += 1;
                                poisoned.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
                WorkerOutcome {
                    results,
                    tasks,
                    steals,
                    panicked,
                }
            }));
        }
        for h in handles {
            match h.join() {
                Ok(o) => outcomes.push(o),
                // A panic escaping the per-task catch is unreachable through
                // safe code; drain defensively rather than re-raising.
                Err(_) => lost += 1,
            }
        }
    });

    // Merge per-worker counters into the global registry once, at drain.
    if riskroute_obs::is_enabled() {
        let tasks: u64 = outcomes.iter().map(|o| o.tasks).sum();
        let steals: u64 = outcomes.iter().map(|o| o.steals).sum();
        let parks = outcomes.iter().filter(|o| o.steals == 0).count() as u64;
        riskroute_obs::counter_add("par_pool_drains", 1);
        riskroute_obs::counter_add("par_tasks_executed", tasks);
        riskroute_obs::counter_add("par_chunk_steals", steals);
        riskroute_obs::counter_add("par_idle_parks", parks);
        riskroute_obs::gauge_max("par_pool_workers", workers as f64);
    }

    let panicked: usize = outcomes.iter().map(|o| o.panicked).sum();
    if panicked > 0 {
        return Err(PoolError::WorkerPanicked { panicked });
    }
    if lost > 0 {
        return Err(PoolError::WorkerLost);
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for o in outcomes {
        for (i, r) in o.results {
            slots[i] = Some(r);
        }
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot {
            Some(r) => out.push(r),
            None => return Err(PoolError::WorkerLost),
        }
    }
    Ok(out)
}

/// Most reusable scratch objects a pool will hold onto; checked-in items
/// beyond this are dropped instead of stacked (a worker count far above
/// this is already clamped by [`MAX_WORKERS`], so the cap only matters if
/// callers leak guards across wildly bursty scopes).
const SCRATCH_POOL_CAP: usize = 64;

/// A lock-guarded stack of reusable worker scratch state.
///
/// `riskroute-par` spawns scoped workers per drain, so `thread_local!`
/// scratch dies with each scope. This pool outlives the scopes: a worker
/// checks an item out with [`ScratchPool::with`], mutates it, and the item
/// returns to the stack for the next drain — steady-state runs reuse the
/// same buffers instead of reallocating per task. Intended for `static`
/// use (`new` is `const`).
///
/// Checkout/check-in each hold the lock only to pop/push, so contention is
/// bounded by two short critical sections per task. If the closure panics
/// the item is dropped, never returned dirty.
pub struct ScratchPool<T> {
    name: &'static str,
    stack: Mutex<Vec<T>>,
}

impl<T> ScratchPool<T> {
    /// A new empty pool; `name` prefixes the obs counters
    /// (`{name}_reuses` / `{name}_allocs`).
    pub const fn named(name: &'static str) -> Self {
        ScratchPool {
            name,
            stack: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<T>> {
        // A panic can never happen inside the push/pop critical sections,
        // but recover from poisoning defensively anyway.
        self.stack.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Run `f` with a pooled scratch item, creating one via `make` when the
    /// pool is empty. The item is returned to the pool afterwards (dropped
    /// if `f` panics or the pool is at capacity).
    pub fn with<R>(&self, make: impl FnOnce() -> T, f: impl FnOnce(&mut T) -> R) -> R {
        let pooled = self.lock().pop();
        let reused = pooled.is_some();
        if riskroute_obs::is_enabled() {
            let counter = if reused {
                format!("{}_reuses", self.name)
            } else {
                format!("{}_allocs", self.name)
            };
            riskroute_obs::counter_add(&counter, 1);
        }
        let mut item = pooled.unwrap_or_else(make);
        let out = f(&mut item);
        let mut stack = self.lock();
        if stack.len() < SCRATCH_POOL_CAP {
            stack.push(item);
        }
        out
    }
}

impl<T> fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchPool")
            .field("name", &self.name)
            .field("pooled", &self.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn sequential_knob_resolves_to_one_worker() {
        assert_eq!(Parallelism::Sequential.workers(), 1);
        assert!(Parallelism::Sequential.is_sequential());
        assert!(!Parallelism::Threads(4).is_sequential());
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn worker_counts_clamp() {
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(7).workers(), 7);
        assert_eq!(Parallelism::Threads(1 << 20).workers(), MAX_WORKERS);
    }

    #[test]
    fn from_worker_count_maps_one_to_sequential() {
        assert_eq!(Parallelism::from_worker_count(0), Parallelism::Sequential);
        assert_eq!(Parallelism::from_worker_count(1), Parallelism::Sequential);
        assert_eq!(Parallelism::from_worker_count(4), Parallelism::Threads(4));
    }

    #[test]
    fn knob_displays() {
        assert_eq!(Parallelism::Sequential.to_string(), "sequential");
        assert_eq!(Parallelism::Threads(4).to_string(), "4 threads");
        assert_eq!(Parallelism::Auto.to_string(), "auto");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u32; 0] = [];
        let out = par_map_collect(Parallelism::Threads(4), &items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs() {
        let out = par_map_collect(Parallelism::Threads(8), &[41], |i, &x| x + i + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_preserve_input_order_under_many_workers() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_collect(Parallelism::Threads(8), &items, |i, &x| {
            assert_eq!(i, x, "index matches the item's position");
            x * 3
        });
        let expect: Vec<usize> = (0..1000).map(|x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn uneven_task_durations_still_come_back_ordered() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_collect(Parallelism::Threads(4), &items, |_, &x| {
            // Early items spin longest so late chunks finish first.
            let spins = (64 - x) * 1000;
            let mut acc = 0u64;
            for s in 0..spins {
                acc = acc.wrapping_add(s);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn panicking_task_poisons_the_pool() {
        let items: Vec<usize> = (0..128).collect();
        let err = try_par_map_collect(Parallelism::Threads(4), &items, |_, &x| {
            assert!(x != 77, "seeded failure");
            x
        })
        .unwrap_err();
        let PoolError::WorkerPanicked { panicked } = err else {
            panic!("expected WorkerPanicked, got {err:?}");
        };
        assert!(panicked >= 1);
        assert!(err.to_string().contains("poisoned"));
    }

    #[test]
    fn sequential_mode_reports_panics_too() {
        let err = try_par_map_collect(Parallelism::Sequential, &[1, 2, 3], |_, &x| {
            assert!(x != 2);
            x
        })
        .unwrap_err();
        assert_eq!(err, PoolError::WorkerPanicked { panicked: 1 });
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn infallible_wrapper_reraises_poison() {
        let _ = par_map_collect(Parallelism::Threads(2), &[0, 1], |_, &x: &i32| {
            assert!(x != 1);
            x
        });
    }

    #[test]
    fn scratch_pool_reuses_checked_in_items() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::named("test_scratch");
        let mut allocs = 0;
        pool.with(
            || {
                allocs += 1;
                vec![1]
            },
            |v| v.push(2),
        );
        pool.with(
            || {
                allocs += 1;
                Vec::new()
            },
            |v| assert_eq!(v, &[1, 2], "the mutated item came back"),
        );
        assert_eq!(allocs, 1, "second checkout reused the pooled item");
    }

    #[test]
    fn scratch_pool_drops_items_on_panic() {
        let pool: ScratchPool<u32> = ScratchPool::named("test_scratch_panic");
        let poisoned = catch_unwind(AssertUnwindSafe(|| {
            pool.with(|| 7, |_| panic!("seeded"));
        }));
        assert!(poisoned.is_err());
        // The panicking checkout was dropped, not returned dirty.
        let mut allocs = 0;
        pool.with(
            || {
                allocs += 1;
                9
            },
            |v| assert_eq!(*v, 9),
        );
        assert_eq!(allocs, 1);
    }

    #[test]
    fn obs_counters_merge_at_drain() {
        riskroute_obs::enable();
        let before = riskroute_obs::counter_value("par_tasks_executed");
        let items: Vec<u32> = (0..100).collect();
        let _ = par_map_collect(Parallelism::Threads(2), &items, |_, &x| x);
        let after = riskroute_obs::counter_value("par_tasks_executed");
        assert!(after >= before + 100, "before {before}, after {after}");
    }

    #[test]
    fn workers_inherit_the_dispatching_scope() {
        riskroute_obs::enable();
        let scope = riskroute_obs::ObsScope::begin("pool-test");
        let _g = scope.enter();
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map_collect(Parallelism::Threads(4), &items, |_, &x| {
            riskroute_obs::counter_add("pool_scope_probe", 1);
            x
        });
        drop(_g);
        let attributed = riskroute_obs::trace_counters(scope.trace_id());
        assert_eq!(attributed.get("pool_scope_probe"), Some(&64));
        // The drain-time pool counters land on the same trace: the pool
        // drains on the dispatching thread while the scope is installed.
        assert!(attributed.get("par_tasks_executed").copied().unwrap_or(0) >= 64);
    }
}
