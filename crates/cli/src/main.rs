//! The `riskroute` binary: argument I/O around the testable library.

use riskroute_cli::{parse_args, run, CliError};
use std::io::Write;

/// Write to stdout, exiting quietly when the consumer (e.g. `head`) closed
/// the pipe — standard CLI hygiene.
fn emit(text: &str) {
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = writeln!(stdout, "{text}") {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error writing output: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(CliError::Help(usage)) => {
            emit(usage.trim_end());
            return;
        }
        Err(err @ CliError::Bad(_)) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };
    match run(&cli) {
        Ok(output) => emit(output.trim_end()),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
