//! The `riskroute` binary: argument I/O around the testable library.

use riskroute_cli::{parse_args, run, CliError};
use std::io::Write;

/// Write to stdout, exiting quietly when the consumer (e.g. `head`) closed
/// the pipe — standard CLI hygiene.
fn emit(text: &str) {
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = writeln!(stdout, "{text}") {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error writing output: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(CliError::Help(usage)) => {
            emit(usage.trim_end());
            return;
        }
        Err(err) => fail(&err),
    };
    match run(&cli) {
        Ok(output) => emit(output.trim_end()),
        Err(err) => fail(&err),
    }
}

/// Print `err` (with its cause chain — see [`riskroute::render_chain`],
/// which [`CliError`]'s `Display` delegates to for core errors) and exit
/// with the family's code. The write is unchecked: `eprintln!` would panic
/// on a closed stderr pipe (`riskroute chaos 2>&1 | head`), turning every
/// exit code into 101 — the exit code is the contract, not the text.
fn fail(err: &CliError) -> ! {
    let mut stderr = std::io::stderr().lock();
    let _ = writeln!(stderr, "{err}");
    std::process::exit(err.exit_code());
}
