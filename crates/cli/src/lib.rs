//! Implementation of the `riskroute` command-line tool.
//!
//! Every subcommand is a pure function from parsed arguments to an output
//! string, so the whole surface is unit-testable without spawning
//! processes; `main.rs` only does I/O.
//!
//! ```text
//! riskroute corpus                                # list the 23 networks
//! riskroute route Sprint "Seattle" "Miami"        # bit-risk vs shortest
//! riskroute backup Sprint "Seattle" "Miami" -k 3  # ranked alternates
//! riskroute provision Sprint -k 5                 # best new links
//! riskroute replay Telepak katrina                # advisory replay
//! riskroute critical "Deutsche Telekom"           # criticality ranking
//! riskroute failure Telepak katrina               # failure injection
//! riskroute export Sprint                         # topology as JSON
//! riskroute --graphml map.graphml --name MyNet route MyNet 0 5
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse_args, Cli, CliError, Command};

use riskroute::prelude::*;
use riskroute_hazard::HistoricalRisk;
use riskroute_topology::import::network_from_graphml;
use riskroute_topology::{Network, NetworkKind};

/// Seed and substrate sizes the CLI uses (documented in `--help`).
pub const CLI_SEED: u64 = 42;
const CLI_BLOCKS: usize = 20_000;
const CLI_EVENT_CAP: usize = 3_000;

/// Everything a command needs: corpus (plus any imported networks),
/// population, and hazards.
pub struct CliContext {
    /// The standard 23-network corpus.
    pub corpus: Corpus,
    /// Networks imported from GraphML files.
    pub imported: Vec<Network>,
    /// Census model.
    pub population: PopulationModel,
    /// Hazard model.
    pub hazards: HistoricalRisk,
}

impl CliContext {
    /// Build the context, importing any GraphML files requested.
    ///
    /// # Errors
    /// Propagates file and import errors as strings.
    pub fn build(graphml: &[(String, String)]) -> Result<Self, String> {
        let mut imported = Vec::new();
        for (path, name) in graphml {
            let xml =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let net = network_from_graphml(&xml, name, NetworkKind::Regional)
                .map_err(|e| format!("cannot import {path}: {e}"))?;
            imported.push(net);
        }
        Ok(CliContext {
            corpus: Corpus::standard(CLI_SEED),
            imported,
            population: PopulationModel::synthesize(CLI_SEED, CLI_BLOCKS),
            hazards: HistoricalRisk::standard(CLI_SEED, Some(CLI_EVENT_CAP)),
        })
    }

    /// Look up a network by name: imported networks shadow corpus members.
    pub fn network(&self, name: &str) -> Result<&Network, String> {
        self.imported
            .iter()
            .find(|n| n.name() == name)
            .or_else(|| self.corpus.network(name))
            .ok_or_else(|| {
                let mut names: Vec<&str> = self
                    .imported
                    .iter()
                    .map(Network::name)
                    .chain(self.corpus.all_networks().map(Network::name))
                    .collect();
                names.sort_unstable();
                format!("unknown network {name:?}; available: {}", names.join(", "))
            })
    }

    /// Planner for a network at the given weights.
    pub fn planner(&self, net: &Network, weights: RiskWeights) -> Planner {
        Planner::for_network(net, &self.population, &self.hazards, weights)
    }
}

/// Resolve a PoP selector: an index (`"12"`) or a case-insensitive name
/// substring (`"new orle"`); substring matches must be unique.
pub fn resolve_pop(net: &Network, selector: &str) -> Result<usize, String> {
    if let Ok(idx) = selector.parse::<usize>() {
        return if idx < net.pop_count() {
            Ok(idx)
        } else {
            Err(format!(
                "PoP index {idx} out of range ({} has {} PoPs)",
                net.name(),
                net.pop_count()
            ))
        };
    }
    let needle = selector.to_lowercase();
    let matches: Vec<usize> = net
        .pops()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.name.to_lowercase().contains(&needle))
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [one] => Ok(*one),
        [] => Err(format!("no PoP of {} matches {selector:?}", net.name())),
        many => Err(format!(
            "{selector:?} is ambiguous in {}: {}",
            net.name(),
            many.iter()
                .map(|&i| net.pops()[i].name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// Parse a storm name.
pub fn resolve_storm(name: &str) -> Result<Storm, String> {
    match name.to_lowercase().as_str() {
        "katrina" => Ok(Storm::Katrina),
        "irene" => Ok(Storm::Irene),
        "sandy" => Ok(Storm::Sandy),
        other => Err(format!(
            "unknown storm {other:?}; expected katrina, irene, or sandy"
        )),
    }
}

/// Run a parsed CLI invocation to an output string.
///
/// # Errors
/// Returns a user-facing error message.
pub fn run(cli: &Cli) -> Result<String, String> {
    let ctx = CliContext::build(&cli.graphml)?;
    match &cli.command {
        Command::Corpus => Ok(commands::corpus(&ctx)),
        Command::Route { network, src, dst } => {
            commands::route(&ctx, network, src, dst, cli.weights())
        }
        Command::Backup {
            network,
            src,
            dst,
            k,
        } => commands::backup(&ctx, network, src, dst, *k, cli.weights()),
        Command::Provision { network, k } => commands::provision(&ctx, network, *k, cli.weights()),
        Command::Replay {
            network,
            storm,
            stride,
        } => commands::replay(&ctx, network, storm, *stride, cli.weights()),
        Command::Critical { network } => commands::critical(&ctx, network),
        Command::Corridors { network } => commands::corridors(&ctx, network),
        Command::Ospf { network } => commands::ospf(&ctx, network, cli.weights()),
        Command::Failure { network, storm } => commands::failure(&ctx, network, storm),
        Command::Export { network, format } => commands::export(&ctx, network, format),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_pop_by_index_and_name() {
        let ctx = CliContext::build(&[]).unwrap();
        let net = ctx.network("Deutsche Telekom").unwrap();
        assert_eq!(resolve_pop(net, "0").unwrap(), 0);
        assert!(resolve_pop(net, "999").is_err());
        // Every PoP resolves by its own full name.
        for (i, p) in net.pops().iter().enumerate() {
            assert_eq!(resolve_pop(net, &p.name).unwrap(), i, "{}", p.name);
        }
        assert!(resolve_pop(net, "zzz-nowhere").is_err());
    }

    #[test]
    fn resolve_storm_accepts_any_case() {
        assert_eq!(resolve_storm("Katrina").unwrap(), Storm::Katrina);
        assert_eq!(resolve_storm("SANDY").unwrap(), Storm::Sandy);
        assert!(resolve_storm("bob").is_err());
    }

    #[test]
    fn unknown_network_lists_alternatives() {
        let ctx = CliContext::build(&[]).unwrap();
        let err = ctx.network("Nope").unwrap_err();
        assert!(err.contains("Level3"));
        assert!(err.contains("Telepak"));
    }
}
