//! Implementation of the `riskroute` command-line tool.
//!
//! Every subcommand is a pure function from parsed arguments to an output
//! string, so the whole surface is unit-testable without spawning
//! processes; `main.rs` only does I/O.
//!
//! ```text
//! riskroute corpus                                # list the 23 networks
//! riskroute route Sprint "Seattle" "Miami"        # bit-risk vs shortest
//! riskroute backup Sprint "Seattle" "Miami" -k 3  # ranked alternates
//! riskroute provision Sprint -k 5                 # best new links
//! riskroute replay Telepak katrina                # advisory replay
//! riskroute provision Level3 --deadline-ms 500 --checkpoint snap.txt
//! riskroute resume snap.txt                       # continue, bit-identically
//! riskroute critical "Deutsche Telekom"           # criticality ranking
//! riskroute failure Telepak katrina               # failure injection
//! riskroute export Sprint                         # topology as JSON
//! riskroute --graphml map.graphml --name MyNet route MyNet 0 5
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse_args, Cli, CliError, Command};

use riskroute::prelude::*;
use riskroute_hazard::HistoricalRisk;
use riskroute_topology::import::network_from_graphml;
use riskroute_topology::{Network, NetworkKind};

/// Seed and substrate sizes the CLI uses (documented in `--help`).
pub const CLI_SEED: u64 = 42;
const CLI_BLOCKS: usize = 20_000;
const CLI_EVENT_CAP: usize = 3_000;

/// Everything a command needs: corpus (plus any imported networks),
/// population, and hazards.
pub struct CliContext {
    /// The standard 23-network corpus.
    pub corpus: Corpus,
    /// Networks imported from GraphML files.
    pub imported: Vec<Network>,
    /// Census model.
    pub population: PopulationModel,
    /// Hazard model.
    pub hazards: HistoricalRisk,
    /// Worker-count knob applied to every planner the context hands out
    /// (`--threads`; byte-identical output at any setting).
    pub parallelism: Parallelism,
    /// Route-tree cache knob applied to every planner the context hands
    /// out (`--no-route-cache` clears it; byte-identical output either way).
    pub route_cache: bool,
    /// Delta-invalidation knob applied to every planner the context hands
    /// out (`--no-delta-invalidation` clears it; byte-identical output
    /// either way). On by default: cost mutations record a changed-edge log
    /// and cache misses repair parent-state trees incrementally.
    pub delta_invalidation: bool,
    /// Bucket-queue knob applied to every planner the context hands out
    /// (`--no-bucket-queue` clears it; byte-identical output either way).
    /// On by default: SSSP runs on the monotone bucket queue over
    /// quantized costs instead of the binary heap.
    pub bucket_queue: bool,
    /// Warm engine pool keyed by `(network, weights)`. One-shot commands
    /// build at most one entry; the `serve` daemon reuses entries across
    /// requests, which is its whole point.
    pub pool: PlannerPool,
}

impl CliContext {
    /// Build the context, importing any GraphML files requested.
    ///
    /// # Errors
    /// [`CliError::Io`] when a file cannot be read, [`CliError::Core`]
    /// (import family) when its contents do not parse.
    pub fn build(graphml: &[(String, String)]) -> Result<Self, CliError> {
        let mut imported = Vec::new();
        for (path, name) in graphml {
            let xml = std::fs::read_to_string(path)
                .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
            let net = network_from_graphml(&xml, name, NetworkKind::Regional)
                .map_err(riskroute::Error::from)?;
            imported.push(net);
        }
        Ok(CliContext {
            corpus: Corpus::standard(CLI_SEED),
            imported,
            population: PopulationModel::synthesize(CLI_SEED, CLI_BLOCKS),
            hazards: HistoricalRisk::standard(CLI_SEED, Some(CLI_EVENT_CAP)),
            parallelism: Parallelism::Sequential,
            route_cache: true,
            delta_invalidation: true,
            bucket_queue: true,
            pool: PlannerPool::new(),
        })
    }

    /// Look up a network by name: imported networks shadow corpus members.
    ///
    /// # Errors
    /// [`CliError::Unknown`] listing the available names.
    pub fn network(&self, name: &str) -> Result<&Network, CliError> {
        self.imported
            .iter()
            .find(|n| n.name() == name)
            .or_else(|| self.corpus.network(name))
            .ok_or_else(|| {
                let mut names: Vec<&str> = self
                    .imported
                    .iter()
                    .map(Network::name)
                    .chain(self.corpus.all_networks().map(Network::name))
                    .collect();
                names.sort_unstable();
                CliError::Unknown(format!(
                    "unknown network {name:?}; available: {}",
                    names.join(", ")
                ))
            })
    }

    /// Planner for a network at the given weights, carrying the context's
    /// parallelism knob. Pulled from the warm pool (built on first use);
    /// pooled reuse is byte-identical to a cold build because the shared
    /// route-tree cache is stamp-keyed and exact.
    pub fn planner(&self, net: &Network, weights: RiskWeights) -> Planner {
        self.pool
            .planner_for(net.name(), weights, || {
                Planner::for_network(net, &self.population, &self.hazards, weights)
            })
            .with_parallelism(self.parallelism)
            .with_route_cache(self.route_cache)
            .with_delta_invalidation(self.delta_invalidation)
            .with_bucket_queue(self.bucket_queue)
    }
}

/// Resolve a PoP selector: an index (`"12"`) or a case-insensitive name
/// substring (`"new orle"`); substring matches must be unique.
///
/// # Errors
/// [`CliError::Unknown`] when nothing (or more than one PoP) matches.
pub fn resolve_pop(net: &Network, selector: &str) -> Result<usize, CliError> {
    if let Ok(idx) = selector.parse::<usize>() {
        return if idx < net.pop_count() {
            Ok(idx)
        } else {
            Err(CliError::Unknown(format!(
                "PoP index {idx} out of range ({} has {} PoPs)",
                net.name(),
                net.pop_count()
            )))
        };
    }
    let needle = selector.to_lowercase();
    let matches: Vec<usize> = net
        .pops()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.name.to_lowercase().contains(&needle))
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [one] => Ok(*one),
        [] => Err(CliError::Unknown(format!(
            "no PoP of {} matches {selector:?}",
            net.name()
        ))),
        many => Err(CliError::Unknown(format!(
            "{selector:?} is ambiguous in {}: {}",
            net.name(),
            many.iter()
                .map(|&i| net.pops()[i].name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ))),
    }
}

/// Parse a storm name.
///
/// # Errors
/// [`CliError::Unknown`] for anything but katrina, irene, sandy.
pub fn resolve_storm(name: &str) -> Result<Storm, CliError> {
    match name.to_lowercase().as_str() {
        "katrina" => Ok(Storm::Katrina),
        "irene" => Ok(Storm::Irene),
        "sandy" => Ok(Storm::Sandy),
        other => Err(CliError::Unknown(format!(
            "unknown storm {other:?}; expected katrina, irene, or sandy"
        ))),
    }
}

/// Run a parsed CLI invocation to an output string.
///
/// When `--metrics-out` / `--trace-out` is given, the global collector is
/// enabled around the command and a snapshot is exported afterwards —
/// including on failure, so a budget-exhausted run (exit 9) still leaves
/// its metrics behind. An export failure surfaces as [`CliError::Io`] only
/// when the command itself succeeded; it never masks the command's error.
///
/// # Errors
/// A [`CliError`] whose family determines the process exit code
/// (see [`CliError::exit_code`]).
pub fn run(cli: &Cli) -> Result<String, CliError> {
    if !cli.obs.wants_collection() {
        return run_command(cli);
    }
    riskroute_obs::reset();
    riskroute_obs::enable();
    // One trace per invocation, labeled with the command name, so the
    // exported JSONL attributes every counter and span to this run.
    let scope = riskroute_obs::ObsScope::begin(cli.command.name());
    let result = {
        let _obs = scope.enter();
        run_command(cli)
    };
    riskroute_obs::disable();
    let snap = riskroute_obs::snapshot();
    let mut export_error: Option<CliError> = None;
    let outputs = [
        (&cli.obs.trace_out, riskroute_obs::export::to_jsonl(&snap)),
        (&cli.obs.metrics_out, riskroute_obs::export::to_prometheus(&snap)),
    ];
    for (path, payload) in &outputs {
        if let Some(path) = path {
            if let Err(e) = riskroute_obs::export::write_atomic(path, payload) {
                export_error.get_or_insert(CliError::Io(format!("cannot write {path}: {e}")));
            }
        }
    }
    match (result, export_error) {
        (Ok(_), Some(err)) => Err(err),
        (result, _) => result,
    }
}

fn run_command(cli: &Cli) -> Result<String, CliError> {
    // The chaos harness builds its own faulted substrates per plan; it does
    // not need (and must not share) the CLI context. obs-summary only reads
    // a trace file.
    if let Command::Chaos { plans, seed } = &cli.command {
        return commands::chaos(*plans, *seed);
    }
    if let Command::ObsSummary { path } = &cli.command {
        return commands::obs_summary(path);
    }
    if let Command::ObsTrace { path, out } = &cli.command {
        return commands::obs_trace(path, out);
    }
    if let Command::ObsLint { path } = &cli.command {
        return commands::obs_lint(path);
    }
    let mut ctx = CliContext::build(&cli.graphml)?;
    ctx.parallelism = cli.threads;
    ctx.route_cache = cli.route_cache;
    ctx.delta_invalidation = cli.delta_invalidation;
    ctx.bucket_queue = cli.bucket_queue;
    match &cli.command {
        Command::Corpus => Ok(commands::corpus(&ctx)),
        Command::Route { network, src, dst } => {
            commands::route(&ctx, network, src, dst, cli.weights())
        }
        Command::Backup {
            network,
            src,
            dst,
            k,
        } => commands::backup(&ctx, network, src, dst, *k, cli.weights()),
        Command::Provision { network, k, budget } => {
            commands::provision(&ctx, network, *k, cli.weights(), budget, cli.obs.progress)
        }
        Command::Replay {
            network,
            storm,
            stride,
            stream,
            budget,
        } => {
            if *stream {
                commands::replay_stream(&ctx, network, cli.weights())
            } else {
                commands::replay(
                    &ctx,
                    network,
                    storm,
                    *stride,
                    cli.weights(),
                    budget,
                    cli.obs.progress,
                )
            }
        }
        Command::Sweep {
            network,
            mode,
            samples,
            seed,
            budget,
        } => commands::sweep(
            &ctx,
            network,
            mode,
            *samples,
            *seed,
            cli.weights(),
            budget,
            cli.obs.progress,
        ),
        Command::Resume { snapshot, budget } => {
            commands::resume(&ctx, snapshot, budget, cli.obs.progress)
        }
        Command::Ratio {
            network,
            sample,
            seed,
        } => commands::ratio(&ctx, network, cli.weights(), *sample, *seed),
        Command::Synth { n, seed, out } => commands::synth(*n, *seed, out.as_deref()),
        Command::Serve {
            listen,
            unix,
            max_inflight,
            max_connections,
            frame_cap_bytes,
            read_timeout_ms,
            write_timeout_ms,
            drain_ms,
            deadline_ms,
        } => commands::serve(
            ctx,
            commands::ServeOptions {
                listen: listen.clone(),
                unix: unix.clone(),
                max_inflight: *max_inflight,
                max_connections: *max_connections,
                frame_cap_bytes: *frame_cap_bytes,
                read_timeout_ms: *read_timeout_ms,
                write_timeout_ms: *write_timeout_ms,
                drain_ms: *drain_ms,
                deadline_ms: *deadline_ms,
            },
            cli.weights(),
        ),
        Command::Critical { network } => commands::critical(&ctx, network),
        Command::Corridors { network } => commands::corridors(&ctx, network),
        Command::Ospf { network } => commands::ospf(&ctx, network, cli.weights()),
        Command::Failure { network, storm } => commands::failure(&ctx, network, storm),
        Command::Export {
            network,
            format,
            out,
        } => commands::export(&ctx, network, format, out.as_deref()),
        Command::Chaos { .. }
        | Command::ObsSummary { .. }
        | Command::ObsTrace { .. }
        | Command::ObsLint { .. } => {
            unreachable!("dispatched before context build")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_pop_by_index_and_name() {
        let ctx = CliContext::build(&[]).unwrap();
        let net = ctx.network("Deutsche Telekom").unwrap();
        assert_eq!(resolve_pop(net, "0").unwrap(), 0);
        assert!(resolve_pop(net, "999").is_err());
        // Every PoP resolves by its own full name.
        for (i, p) in net.pops().iter().enumerate() {
            assert_eq!(resolve_pop(net, &p.name).unwrap(), i, "{}", p.name);
        }
        assert!(resolve_pop(net, "zzz-nowhere").is_err());
    }

    #[test]
    fn resolve_storm_accepts_any_case() {
        assert_eq!(resolve_storm("Katrina").unwrap(), Storm::Katrina);
        assert_eq!(resolve_storm("SANDY").unwrap(), Storm::Sandy);
        assert!(resolve_storm("bob").is_err());
    }

    #[test]
    fn unknown_network_lists_alternatives() {
        let ctx = CliContext::build(&[]).unwrap();
        let err = ctx.network("Nope").unwrap_err();
        assert_eq!(err.exit_code(), 3);
        let text = err.to_string();
        assert!(text.contains("Level3"));
        assert!(text.contains("Telepak"));
    }

    #[test]
    fn selector_failures_are_unknown_family() {
        let ctx = CliContext::build(&[]).unwrap();
        let net = ctx.network("Sprint").unwrap();
        assert!(matches!(
            resolve_pop(net, "999"),
            Err(CliError::Unknown(_))
        ));
        assert!(matches!(resolve_storm("bob"), Err(CliError::Unknown(_))));
    }

    #[test]
    fn missing_graphml_file_is_io_family() {
        let Err(err) = CliContext::build(&[("/no/such/file.graphml".into(), "X".into())])
        else {
            panic!("expected an I/O error")
        };
        assert!(matches!(err, CliError::Io(_)));
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn bad_graphml_content_is_parse_family() {
        let dir = std::env::temp_dir().join("riskroute-cli-badxml");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.graphml");
        std::fs::write(&path, "<graphml><graph></graph>").unwrap();
        let Err(err) = CliContext::build(&[(path.display().to_string(), "X".into())]) else {
            panic!("expected an import error")
        };
        assert!(matches!(err, CliError::Core(riskroute::Error::Import(_))));
        assert_eq!(err.exit_code(), 5);
    }
}
