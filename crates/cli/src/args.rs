//! Argument parsing (hand-rolled; the CLI's surface is small and the
//! workspace stays dependency-light).

use riskroute::{Parallelism, RiskWeights};
use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// GraphML imports: `(path, network name)` pairs.
    pub graphml: Vec<(String, String)>,
    /// λ_h override (default 1e5).
    pub lambda_h: f64,
    /// λ_f override (default 1e3).
    pub lambda_f: f64,
    /// `--threads <N|auto>`: worker count for the parallel sweeps
    /// (default sequential). Every setting produces byte-identical output;
    /// the knob only trades wall-clock for cores.
    pub threads: Parallelism,
    /// `--no-route-cache` clears this (default `true`): disable the exact
    /// route-tree cache. A debugging knob — outputs are byte-identical
    /// either way; disabling only costs wall-clock.
    pub route_cache: bool,
    /// `--no-delta-invalidation` clears this (default `true`): fall back to
    /// blanket cache invalidation on any cost change instead of the
    /// changed-edge log + incremental SSSP repair. A debugging knob —
    /// outputs are byte-identical either way; disabling only costs
    /// wall-clock.
    pub delta_invalidation: bool,
    /// `--no-bucket-queue` clears this (default `true`): run every SSSP on
    /// the binary-heap frontier instead of the monotone bucket queue over
    /// quantized costs. A debugging knob — outputs are byte-identical
    /// either way; disabling only costs wall-clock at scale.
    pub bucket_queue: bool,
    /// Observability flags (metrics/trace export, progress heartbeat).
    pub obs: ObsArgs,
    /// The subcommand.
    pub command: Command,
}

impl Cli {
    /// The risk weights this invocation runs under.
    pub fn weights(&self) -> RiskWeights {
        RiskWeights::new(self.lambda_h, self.lambda_f)
    }
}

/// Observability flags, valid on any subcommand.
///
/// When either output path is set the global collector is enabled for the
/// run and a snapshot is exported on the way out — even when the command
/// fails, so a budget-exhausted run still leaves its metrics behind.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsArgs {
    /// `--metrics-out <path>`: Prometheus text exposition, written
    /// atomically at exit.
    pub metrics_out: Option<String>,
    /// `--trace-out <path>`: JSONL event stream (spans + metrics), written
    /// atomically at exit; feed it to `riskroute obs-summary`.
    pub trace_out: Option<String>,
    /// `--progress`: rate-limited stderr heartbeat with an ETA derived
    /// from stage counts and `WorkBudget::work_done`.
    pub progress: bool,
}

impl ObsArgs {
    /// Whether the run needs the collector enabled.
    pub fn wants_collection(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some()
    }
}

/// Execution-budget and checkpoint flags shared by the long-running
/// subcommands (`provision`, `replay`, `resume`).
#[derive(Debug, Clone, Default)]
pub struct BudgetArgs {
    /// `--deadline-ms N`: wall-clock cap; the run stops at the next clean
    /// stage boundary past the deadline and exits with code 9.
    pub deadline_ms: Option<u64>,
    /// `--max-work N`: cap on charged work units (candidate evaluations /
    /// replay ticks) — a deterministic, machine-independent budget.
    pub max_work: Option<u64>,
    /// `--checkpoint <path>`: write a crash-safe snapshot (atomic
    /// temp-file + rename) after every greedy iteration / replay tick
    /// batch, resumable with `riskroute resume <path>`.
    pub checkpoint: Option<String>,
    /// An externally owned cancel flag wired into the budget (no CLI flag;
    /// the serve daemon injects its drain-shed flag here so one store
    /// sheds every in-flight request at its next stage boundary).
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

// Manual impl: `Arc<AtomicBool>` has no `PartialEq`; two flags are the
// same exactly when they are the same allocation.
impl PartialEq for BudgetArgs {
    fn eq(&self, other: &Self) -> bool {
        let cancel_eq = match (&self.cancel, &other.cancel) {
            (None, None) => true,
            (Some(a), Some(b)) => std::sync::Arc::ptr_eq(a, b),
            _ => false,
        };
        self.deadline_ms == other.deadline_ms
            && self.max_work == other.max_work
            && self.checkpoint == other.checkpoint
            && cancel_eq
    }
}

impl BudgetArgs {
    /// Materialize the cooperative budget token these flags describe.
    pub fn to_budget(&self) -> riskroute::WorkBudget {
        let mut budget = riskroute::WorkBudget::unlimited();
        if let Some(ms) = self.deadline_ms {
            budget = budget.with_deadline_ms(ms);
        }
        if let Some(units) = self.max_work {
            budget = budget.with_max_work(units);
        }
        if let Some(cancel) = &self.cancel {
            budget = budget.with_cancel(std::sync::Arc::clone(cancel));
        }
        budget
    }
}

/// The subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the corpus (and imported) networks.
    Corpus,
    /// Compare RiskRoute and shortest-path for a PoP pair.
    Route {
        /// Network name.
        network: String,
        /// Source PoP selector (index or name substring).
        src: String,
        /// Destination PoP selector.
        dst: String,
    },
    /// Ranked backup paths for a PoP pair.
    Backup {
        /// Network name.
        network: String,
        /// Source PoP selector.
        src: String,
        /// Destination PoP selector.
        dst: String,
        /// Total paths to compute (primary + alternates).
        k: usize,
    },
    /// Best additional links (greedy Eq. 4).
    Provision {
        /// Network name.
        network: String,
        /// Number of links to propose.
        k: usize,
        /// Budget and checkpoint flags.
        budget: BudgetArgs,
    },
    /// Replay a hurricane against a network.
    Replay {
        /// Network name.
        network: String,
        /// Storm name (katrina, irene, sandy).
        storm: String,
        /// Advisory stride.
        stride: usize,
        /// `--stream`: ignore the recorded advisory series and instead
        /// consume NDJSON advisories from stdin continuously against the
        /// warm engine, emitting one NDJSON tick line each.
        stream: bool,
        /// Budget and checkpoint flags.
        budget: BudgetArgs,
    },
    /// Deterministic failure-scenario resilience sweep (N-1, sampled N-2,
    /// or a Monte-Carlo hazard ensemble).
    Sweep {
        /// Network name.
        network: String,
        /// Sweep mode: "n1", "n2", or "ensemble".
        mode: String,
        /// Scenario sample count (N-2 draws / ensemble members; ignored by
        /// the exhaustive N-1 mode).
        samples: usize,
        /// Sampling / ensemble master seed.
        seed: u64,
        /// Budget and checkpoint flags.
        budget: BudgetArgs,
    },
    /// Resume a provisioning or replay run from a checkpoint snapshot.
    Resume {
        /// Path to the snapshot file.
        snapshot: String,
        /// Budget and checkpoint flags for the continued run. When
        /// `--checkpoint` is omitted, new snapshots overwrite the input.
        budget: BudgetArgs,
    },
    /// Risk-weighted criticality ranking of a network's PoPs.
    Critical {
        /// Network name.
        network: String,
    },
    /// Link-corridor risk ranking and shared-risk link groups.
    Corridors {
        /// Network name.
        network: String,
    },
    /// The §7 aggregate ratio report (risk reduction / distance increase).
    Ratio {
        /// Network name.
        network: String,
        /// `--sample <K>`: score K seeded source/destination pairs instead
        /// of every pair — the only tractable mode on synthetic networks
        /// with tens of thousands of PoPs.
        sample: Option<usize>,
        /// `--seed <S>`: pair-sampling seed (only meaningful with
        /// `--sample`).
        seed: u64,
    },
    /// Generate a deterministic synthetic continental-scale network.
    Synth {
        /// Number of PoPs to generate.
        n: usize,
        /// `--seed <S>`: generation seed.
        seed: u64,
        /// `--out <path>`: write the network as GraphML (atomic rename)
        /// instead of just printing the summary; feed it back with
        /// `--graphml <path> --name <name>`.
        out: Option<String>,
    },
    /// Risk-aware OSPF link weights plus a fidelity evaluation.
    Ospf {
        /// Network name.
        network: String,
    },
    /// Run the warm-engine NDJSON query daemon.
    Serve {
        /// `--listen <addr>`: TCP bind address (port 0 picks an ephemeral
        /// port; the resolved address is printed on startup).
        listen: String,
        /// `--unix <path>`: serve on a Unix-domain socket instead of TCP
        /// (Unix only).
        unix: Option<String>,
        /// `--max-inflight N`: queries executing at once before admission
        /// control sheds with `overloaded`.
        max_inflight: usize,
        /// `--max-connections N`: open connections before accepts are
        /// refused.
        max_connections: usize,
        /// `--frame-cap-bytes N`: per-request frame size cap.
        frame_cap_bytes: usize,
        /// `--read-timeout-ms N`: stalled-writer disconnect timeout.
        read_timeout_ms: u64,
        /// `--write-timeout-ms N`: stalled-reader disconnect timeout.
        write_timeout_ms: u64,
        /// `--drain-ms N`: the finish window and then the shed window of a
        /// graceful drain.
        drain_ms: u64,
        /// `--deadline-ms N`: default per-request wall-clock deadline
        /// applied when a request does not set its own.
        deadline_ms: Option<u64>,
    },
    /// Storm failure injection.
    Failure {
        /// Network name.
        network: String,
        /// Storm name.
        storm: String,
    },
    /// Dump a network's topology as JSON or GraphML.
    Export {
        /// Network name.
        network: String,
        /// Output format: "json" (default) or "graphml".
        format: String,
        /// `--out <path>`: write to a file (atomic temp-file + rename)
        /// instead of stdout, so a mid-write kill never leaves a truncated
        /// export behind.
        out: Option<String>,
    },
    /// Seeded chaos-injection harness: fault plans against the full pipeline.
    Chaos {
        /// Number of fault plans to run.
        plans: usize,
        /// Base seed; plan `i` uses `seed + i`.
        seed: u64,
    },
    /// Summarize a `--trace-out` JSONL file: per-span latency table.
    ObsSummary {
        /// Path to the JSONL trace.
        path: String,
    },
    /// Convert a `--trace-out` JSONL file to Chrome trace-event JSON.
    ObsTrace {
        /// Path to the JSONL trace.
        path: String,
        /// Output path for the trace-event JSON.
        out: String,
    },
    /// Lint a Prometheus text-exposition file.
    ObsLint {
        /// Path to the exposition text.
        path: String,
    },
}

impl Command {
    /// The command's wire name, used as the trace label when observability
    /// collection is enabled.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Corpus => "corpus",
            Command::Route { .. } => "route",
            Command::Backup { .. } => "backup",
            Command::Provision { .. } => "provision",
            Command::Replay { .. } => "replay",
            Command::Sweep { .. } => "sweep",
            Command::Resume { .. } => "resume",
            Command::Critical { .. } => "critical",
            Command::Corridors { .. } => "corridors",
            Command::Ratio { .. } => "ratio",
            Command::Synth { .. } => "synth",
            Command::Ospf { .. } => "ospf",
            Command::Serve { .. } => "serve",
            Command::Failure { .. } => "failure",
            Command::Export { .. } => "export",
            Command::Chaos { .. } => "chaos",
            Command::ObsSummary { .. } => "obs-summary",
            Command::ObsTrace { .. } => "obs-trace",
            Command::ObsLint { .. } => "obs-lint",
        }
    }
}

/// Everything that can go wrong running the CLI, grouped by exit code.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// `--help` was requested; the payload is the usage text.
    Help(String),
    /// Malformed arguments (usage error).
    Bad(String),
    /// A name (network, PoP selector, storm) did not resolve.
    Unknown(String),
    /// Reading an input file failed.
    Io(String),
    /// A pipeline error from the unified core taxonomy.
    Core(riskroute::Error),
    /// The chaos harness observed invariant violations (the payload lists
    /// them, one per entry).
    Chaos(Vec<String>),
    /// The execution budget ran out before the computation finished. The
    /// report is the partial result plus resume instructions — the run's
    /// completed prefix is valid (and checkpointed when `--checkpoint` was
    /// given), it just is not the whole answer.
    Budget {
        /// The rendered partial report.
        report: String,
        /// Which limit stopped the run (the serve daemon forwards this as
        /// the typed `stopped` response field).
        stopped: riskroute::StopReason,
    },
    /// The serve daemon's drain deadline expired with work still stuck —
    /// in-flight connections were abandoned (their threads detached) so
    /// the process could exit instead of hanging.
    Drain(String),
}

impl CliError {
    /// The process exit code for this error family.
    ///
    /// `0` success/help, `2` usage, `3` unresolved name, `4` I/O,
    /// `5` parse/import/snapshot failures (GraphML, advisory, JSON,
    /// corrupt or stale checkpoint), `6` defined degradation surfaced as an
    /// error (unreachable pair, nothing left to aggregate), `7` invalid
    /// values or malformed structure (including a poisoned parallel worker
    /// pool), `8` chaos invariant violation, `9` execution budget exhausted
    /// (partial result, resumable), `10` forced serve drain (the daemon had
    /// to abandon stuck in-flight work to exit).
    pub fn exit_code(&self) -> i32 {
        use riskroute::Error as E;
        match self {
            CliError::Help(_) => 0,
            CliError::Bad(_) => 2,
            CliError::Unknown(_) => 3,
            CliError::Io(_) => 4,
            CliError::Core(e) => match e {
                E::Import(_)
                | E::Advisory(_)
                | E::Json(_)
                | E::SnapshotVersion { .. }
                | E::SnapshotIntegrity { .. } => 5,
                E::Unreachable { .. } | E::NoInformativePairs => 6,
                E::InvalidWeight { .. }
                | E::InvalidArgument { .. }
                | E::Graph(_)
                | E::Topology(_)
                | E::Geo(_)
                | E::NotAdjacent { .. }
                | E::UnknownNetwork(_)
                | E::WorkerPanic { .. } => 7,
            },
            CliError::Chaos(_) => 8,
            CliError::Budget { .. } => 9,
            CliError::Drain(_) => 10,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Help(u) => f.write_str(u),
            CliError::Bad(m) => write!(f, "error: {m}\n\n{USAGE}"),
            CliError::Unknown(m) => write!(f, "error: {m}"),
            CliError::Io(m) => write!(f, "I/O error: {m}"),
            CliError::Core(e) => write!(f, "error: {}", riskroute::render_chain(e)),
            CliError::Chaos(violations) => {
                write!(f, "chaos invariants violated:")?;
                for v in violations {
                    write!(f, "\n  - {v}")?;
                }
                Ok(())
            }
            CliError::Budget { report, .. } => f.write_str(report),
            CliError::Drain(m) => write!(f, "forced drain: {m}"),
        }
    }
}

impl From<riskroute::Error> for CliError {
    fn from(e: riskroute::Error) -> Self {
        CliError::Core(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
riskroute — bit-risk-mile routing and provisioning (CoNEXT'13 reproduction)

USAGE:
  riskroute [GLOBALS] <COMMAND> [ARGS]

COMMANDS:
  corpus                             list available networks
  route <net> <src> <dst>            RiskRoute vs shortest path for a pair
  backup <net> <src> <dst> [-k N]    ranked backup paths (default k = 3)
  provision <net> [-k N] [BUDGET]    best new links (default k = 5)
  replay <net> <storm> [--stride N]  hurricane replay (default stride 8);
          [--stream] [BUDGET]        accepts BUDGET flags. --stream reads
                                     NDJSON advisories from stdin against the
                                     warm engine (one NDJSON tick line each)
                                     instead of the recorded series
  sweep <net> [--mode M] [--samples N] deterministic resilience sweep: full
        [--seed S] [BUDGET]          N-1 (default), sampled N-2, or a seeded
                                     hazard ensemble; ranked criticality
                                     report, byte-identical at any --threads
  resume <snapshot> [BUDGET]         continue a checkpointed provision/replay/
                                     sweep run; falls back to a fresh run
                                     (with a notice) if only the job line
                                     survives
  critical <net>                     risk-weighted PoP criticality ranking
  corridors <net>                    link-corridor risk + shared-risk groups
  ratio <net> [--sample K] [--seed S] §7 aggregate ratio report (Eq. 5 /
                                     Eq. 6); --sample scores K seeded pairs
                                     instead of all pairs (the tractable mode
                                     on 10k+-PoP synthetic networks)
  synth <n> [--seed S] [--out P]     generate a deterministic n-PoP synthetic
                                     continental network (population-weighted
                                     placement around the real gazetteer);
                                     --out writes GraphML for --graphml reuse
  ospf <net>                         risk-aware OSPF weights + fidelity
  failure <net> <storm>              storm failure injection
  export <net> [--format F] [--out P] topology as json | graphml, on stdout
                                     or atomically written to a file
  chaos [--plans N] [--seed S]       seeded fault injection (default 8 plans,
                                     seed 42); nonzero exit on any violation;
                                     reports which faults actually fired
  obs-summary <trace.jsonl>          per-span latency table (count, total,
                                     p50, p99, p999) plus per-trace
                                     attribution from a --trace-out file
  obs trace <trace.jsonl> [--out P]  convert a --trace-out file to Chrome
                                     trace-event JSON (default out
                                     trace.json; open in chrome://tracing)
  obs lint <metrics.prom>            lint Prometheus text exposition (names,
                                     labels, bucket cumulativity); exit 5 on
                                     the first malformed line
  serve [--listen A] [--unix P]      warm-engine NDJSON query daemon (one
        [--max-inflight N]           request per line; ops: ping, route,
        [--max-connections N]        ratio, provision, replay, sweep, corpus,
        [--frame-cap-bytes N]        shutdown). Default --listen
        [--read-timeout-ms N]        127.0.0.1:4167; GET /metrics on the same
        [--write-timeout-ms N]       listener scrapes Prometheus text.
        [--drain-ms N]               Responses are byte-identical to the
        [--deadline-ms N]            one-shot CLI at any --threads setting;
                                     --deadline-ms sets a default per-request
                                     budget (typed partial responses)

BUDGET (provision, replay, sweep, resume):
  --deadline-ms <N>                  wall-clock budget; stop at the next
                                     clean stage boundary past it
  --max-work <N>                     cap candidate evaluations / replay
                                     ticks (deterministic budget)
  --checkpoint <path>                write a crash-safe snapshot (atomic
                                     rename) at every stage boundary;
                                     resume omits this to overwrite its
                                     input snapshot
  A budget-stopped run prints its completed prefix and exits with code 9.

GLOBALS:
  --graphml <file> --name <name>     import a Topology Zoo GraphML map
                                     (repeatable; imported names shadow corpus)
  --lambda-h <x>                     historical risk weight (default 1e5)
  --lambda-f <x>                     forecast risk weight (default 1e3)
  --threads <N|auto>                 worker threads for the pair sweeps,
                                     candidate scoring, and replay ticks
                                     (default 1 = sequential; auto = one per
                                     core). Output is byte-identical at any
                                     setting — parallel sweeps reduce in the
                                     sequential order
  --no-route-cache                   disable the exact route-tree cache
                                     (debugging; output is byte-identical,
                                     runs just recompute every tree)
  --no-delta-invalidation            blanket cache invalidation on any cost
                                     change instead of the changed-edge log +
                                     incremental SSSP repair (debugging;
                                     output is byte-identical, forecast ticks
                                     just rerun Dijkstra from scratch)
  --no-bucket-queue                  binary-heap SSSP frontier instead of the
                                     monotone bucket queue over quantized
                                     costs (debugging; output is
                                     byte-identical, large sweeps just run
                                     slower)
  -h, --help                         this text

OBSERVABILITY (any command):
  --metrics-out <path>               write Prometheus text exposition at exit
                                     (atomic rename; written even on failure)
  --trace-out <path>                 write a JSONL span/metric trace at exit;
                                     summarize with `riskroute obs-summary`
  --progress                         stderr heartbeat with ETA from stage
                                     counts and the work budget

PoP selectors are indices or unique case-insensitive name substrings.
Storms: katrina, irene, sandy. Everything is deterministic (seed 42).

EXIT CODES:
  0 ok/help   2 usage   3 unknown name   4 I/O   5 parse/import/snapshot
  6 unreachable or nothing to aggregate   7 invalid value   8 chaos violation
  9 budget exhausted (partial result; resumable from its checkpoint)
  10 forced serve drain (stuck in-flight work abandoned at shutdown)
";

/// Parse a raw argument vector (without the program name).
///
/// # Errors
/// [`CliError::Help`] for `-h`/`--help`, [`CliError::Bad`] otherwise.
pub fn parse_args(args: &[String]) -> Result<Cli, CliError> {
    let mut graphml = Vec::new();
    let mut lambda_h = 1e5;
    let mut lambda_f = 1e3;
    let mut threads = Parallelism::Sequential;
    let mut route_cache = true;
    let mut delta_invalidation = true;
    let mut bucket_queue = true;
    let mut obs = ObsArgs::default();
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    let bad = |m: String| CliError::Bad(m);
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => return Err(CliError::Help(USAGE.to_string())),
            "--metrics-out" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| bad("--metrics-out needs a file path".into()))?;
                obs.metrics_out = Some(path.clone());
                i += 2;
            }
            "--trace-out" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| bad("--trace-out needs a file path".into()))?;
                obs.trace_out = Some(path.clone());
                i += 2;
            }
            "--progress" => {
                obs.progress = true;
                i += 1;
            }
            "--graphml" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| bad("--graphml needs a file path".into()))?
                    .clone();
                if args.get(i + 2).map(String::as_str) != Some("--name") {
                    return Err(bad(
                        "--graphml <file> must be followed by --name <name>".into()
                    ));
                }
                let name = args
                    .get(i + 3)
                    .ok_or_else(|| bad("--name needs a value".into()))?
                    .clone();
                graphml.push((path, name));
                i += 4;
            }
            "--lambda-h" => {
                lambda_h = parse_f64(args.get(i + 1), "--lambda-h")?;
                i += 2;
            }
            "--lambda-f" => {
                lambda_f = parse_f64(args.get(i + 1), "--lambda-f")?;
                i += 2;
            }
            "--threads" => {
                threads = parse_threads(args.get(i + 1))?;
                i += 2;
            }
            "--no-route-cache" => {
                route_cache = false;
                i += 1;
            }
            "--no-delta-invalidation" => {
                delta_invalidation = false;
                i += 1;
            }
            "--no-bucket-queue" => {
                bucket_queue = false;
                i += 1;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    if !(lambda_h >= 0.0 && lambda_h.is_finite() && lambda_f >= 0.0 && lambda_f.is_finite()) {
        return Err(bad("lambda values must be finite and non-negative".into()));
    }

    let command = parse_command(&rest)?;
    Ok(Cli {
        graphml,
        lambda_h,
        lambda_f,
        threads,
        route_cache,
        delta_invalidation,
        bucket_queue,
        obs,
        command,
    })
}

fn parse_threads(v: Option<&String>) -> Result<Parallelism, CliError> {
    let v = v.ok_or_else(|| CliError::Bad("--threads needs a count or \"auto\"".into()))?;
    if v == "auto" {
        return Ok(Parallelism::Auto);
    }
    let n = v
        .parse::<usize>()
        .map_err(|_| CliError::Bad("--threads needs a positive integer or \"auto\"".into()))?;
    if n == 0 {
        return Err(CliError::Bad("--threads must be at least 1".into()));
    }
    Ok(Parallelism::from_worker_count(n))
}

fn parse_f64(v: Option<&String>, flag: &str) -> Result<f64, CliError> {
    v.ok_or_else(|| CliError::Bad(format!("{flag} needs a value")))?
        .parse::<f64>()
        .map_err(|_| CliError::Bad(format!("{flag} needs a number")))
}

fn parse_usize(v: Option<&String>, flag: &str) -> Result<usize, CliError> {
    let n = v
        .ok_or_else(|| CliError::Bad(format!("{flag} needs a value")))?
        .parse::<usize>()
        .map_err(|_| CliError::Bad(format!("{flag} needs a positive integer")))?;
    if n == 0 {
        return Err(CliError::Bad(format!("{flag} must be positive")));
    }
    Ok(n)
}

fn parse_u64(v: Option<&String>, flag: &str) -> Result<u64, CliError> {
    v.ok_or_else(|| CliError::Bad(format!("{flag} needs a value")))?
        .parse::<u64>()
        .map_err(|_| CliError::Bad(format!("{flag} needs a non-negative integer")))
}

fn parse_command(rest: &[String]) -> Result<Command, CliError> {
    let bad = |m: String| CliError::Bad(m);
    let Some(cmd) = rest.first() else {
        return Err(CliError::Help(USAGE.to_string()));
    };
    let positional: Vec<&String> = rest[1..]
        .iter()
        .take_while(|a| !a.starts_with('-'))
        .collect();
    let flag_of = |name: &str| -> Option<&String> {
        rest.iter()
            .position(|a| a == name)
            .and_then(|p| rest.get(p + 1))
    };
    let budget_flags = || -> Result<BudgetArgs, CliError> {
        Ok(BudgetArgs {
            deadline_ms: match flag_of("--deadline-ms") {
                Some(v) => Some(parse_u64(Some(v), "--deadline-ms")?),
                None => None,
            },
            max_work: match flag_of("--max-work") {
                Some(v) => Some(parse_u64(Some(v), "--max-work")?),
                None => None,
            },
            checkpoint: flag_of("--checkpoint").cloned(),
            cancel: None,
        })
    };
    match cmd.as_str() {
        "corpus" => Ok(Command::Corpus),
        "route" | "backup" => {
            let [network, src, dst] = positional.as_slice() else {
                return Err(bad(format!("{cmd} needs <network> <src> <dst>")));
            };
            if cmd == "route" {
                Ok(Command::Route {
                    network: (*network).clone(),
                    src: (*src).clone(),
                    dst: (*dst).clone(),
                })
            } else {
                Ok(Command::Backup {
                    network: (*network).clone(),
                    src: (*src).clone(),
                    dst: (*dst).clone(),
                    k: match flag_of("-k") {
                        Some(v) => parse_usize(Some(v), "-k")?,
                        None => 3,
                    },
                })
            }
        }
        "provision" => {
            let [network] = positional.as_slice() else {
                return Err(bad("provision needs <network>".into()));
            };
            Ok(Command::Provision {
                network: (*network).clone(),
                k: match flag_of("-k") {
                    Some(v) => parse_usize(Some(v), "-k")?,
                    None => 5,
                },
                budget: budget_flags()?,
            })
        }
        "replay" => {
            let [network, storm] = positional.as_slice() else {
                return Err(bad("replay needs <network> <storm>".into()));
            };
            Ok(Command::Replay {
                network: (*network).clone(),
                storm: (*storm).clone(),
                stride: match flag_of("--stride") {
                    Some(v) => parse_usize(Some(v), "--stride")?,
                    None => 8,
                },
                stream: rest.iter().any(|a| a == "--stream"),
                budget: budget_flags()?,
            })
        }
        "sweep" => {
            let [network] = positional.as_slice() else {
                return Err(bad("sweep needs <network>".into()));
            };
            let mode = flag_of("--mode").cloned().unwrap_or_else(|| "n1".into());
            if !matches!(mode.as_str(), "n1" | "n2" | "ensemble") {
                return Err(bad(format!(
                    "unknown sweep mode {mode:?} (expected n1, n2, or ensemble)"
                )));
            }
            Ok(Command::Sweep {
                network: (*network).clone(),
                mode,
                samples: match flag_of("--samples") {
                    Some(v) => parse_usize(Some(v), "--samples")?,
                    None => 64,
                },
                seed: match flag_of("--seed") {
                    Some(v) => parse_u64(Some(v), "--seed")?,
                    None => crate::CLI_SEED,
                },
                budget: budget_flags()?,
            })
        }
        "resume" => {
            let [snapshot] = positional.as_slice() else {
                return Err(bad("resume needs <snapshot>".into()));
            };
            Ok(Command::Resume {
                snapshot: (*snapshot).clone(),
                budget: budget_flags()?,
            })
        }
        "critical" => {
            let [network] = positional.as_slice() else {
                return Err(bad("critical needs <network>".into()));
            };
            Ok(Command::Critical {
                network: (*network).clone(),
            })
        }
        "corridors" => {
            let [network] = positional.as_slice() else {
                return Err(bad("corridors needs <network>".into()));
            };
            Ok(Command::Corridors {
                network: (*network).clone(),
            })
        }
        "ratio" => {
            let [network] = positional.as_slice() else {
                return Err(bad("ratio needs <network>".into()));
            };
            Ok(Command::Ratio {
                network: (*network).clone(),
                sample: match flag_of("--sample") {
                    Some(v) => Some(parse_usize(Some(v), "--sample")?),
                    None => None,
                },
                seed: match flag_of("--seed") {
                    Some(v) => parse_u64(Some(v), "--seed")?,
                    None => crate::CLI_SEED,
                },
            })
        }
        "synth" => {
            let [n] = positional.as_slice() else {
                return Err(bad("synth needs <n> (PoP count)".into()));
            };
            Ok(Command::Synth {
                n: parse_usize(Some(n), "synth <n>")?,
                seed: match flag_of("--seed") {
                    Some(v) => parse_u64(Some(v), "--seed")?,
                    None => crate::CLI_SEED,
                },
                out: flag_of("--out").cloned(),
            })
        }
        "ospf" => {
            let [network] = positional.as_slice() else {
                return Err(bad("ospf needs <network>".into()));
            };
            Ok(Command::Ospf {
                network: (*network).clone(),
            })
        }
        "serve" => {
            if !positional.is_empty() {
                return Err(bad("serve takes only flags (see usage)".into()));
            }
            let max_inflight = match flag_of("--max-inflight") {
                Some(v) => parse_usize(Some(v), "--max-inflight")?,
                None => 8,
            };
            let max_connections = match flag_of("--max-connections") {
                Some(v) => parse_usize(Some(v), "--max-connections")?,
                None => 64,
            };
            if max_inflight == 0 || max_connections == 0 {
                return Err(bad(
                    "serve needs --max-inflight and --max-connections of at least 1".into(),
                ));
            }
            Ok(Command::Serve {
                listen: flag_of("--listen")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:4167".into()),
                unix: flag_of("--unix").cloned(),
                max_inflight,
                max_connections,
                frame_cap_bytes: match flag_of("--frame-cap-bytes") {
                    Some(v) => parse_usize(Some(v), "--frame-cap-bytes")?,
                    None => 1 << 20,
                },
                read_timeout_ms: match flag_of("--read-timeout-ms") {
                    Some(v) => parse_u64(Some(v), "--read-timeout-ms")?,
                    None => 10_000,
                },
                write_timeout_ms: match flag_of("--write-timeout-ms") {
                    Some(v) => parse_u64(Some(v), "--write-timeout-ms")?,
                    None => 5_000,
                },
                drain_ms: match flag_of("--drain-ms") {
                    Some(v) => parse_u64(Some(v), "--drain-ms")?,
                    None => 2_000,
                },
                deadline_ms: match flag_of("--deadline-ms") {
                    Some(v) => Some(parse_u64(Some(v), "--deadline-ms")?),
                    None => None,
                },
            })
        }
        "failure" => {
            let [network, storm] = positional.as_slice() else {
                return Err(bad("failure needs <network> <storm>".into()));
            };
            Ok(Command::Failure {
                network: (*network).clone(),
                storm: (*storm).clone(),
            })
        }
        "export" => {
            let [network] = positional.as_slice() else {
                return Err(bad("export needs <network>".into()));
            };
            let format = flag_of("--format")
                .cloned()
                .unwrap_or_else(|| "json".into());
            if format != "json" && format != "graphml" {
                return Err(bad(format!("unknown export format {format:?}")));
            }
            Ok(Command::Export {
                network: (*network).clone(),
                format,
                out: flag_of("--out").cloned(),
            })
        }
        "obs-summary" => {
            let [path] = positional.as_slice() else {
                return Err(bad("obs-summary needs <trace.jsonl>".into()));
            };
            Ok(Command::ObsSummary {
                path: (*path).clone(),
            })
        }
        "obs" => match positional.as_slice() {
            [sub, path] if sub.as_str() == "trace" => Ok(Command::ObsTrace {
                path: (*path).clone(),
                out: flag_of("--out")
                    .cloned()
                    .unwrap_or_else(|| "trace.json".into()),
            }),
            [sub, path] if sub.as_str() == "lint" => Ok(Command::ObsLint {
                path: (*path).clone(),
            }),
            _ => Err(bad(
                "obs needs a subcommand: trace <trace.jsonl> [--out <path>] \
                 or lint <metrics.prom>"
                    .into(),
            )),
        },
        "chaos" => {
            if !positional.is_empty() {
                return Err(bad("chaos takes only --plans and --seed flags".into()));
            }
            Ok(Command::Chaos {
                plans: match flag_of("--plans") {
                    Some(v) => parse_usize(Some(v), "--plans")?,
                    None => 8,
                },
                seed: match flag_of("--seed") {
                    Some(v) => parse_u64(Some(v), "--seed")?,
                    None => crate::CLI_SEED,
                },
            })
        }
        other => Err(bad(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_route() {
        let cli = parse_args(&args("route Sprint 0 5")).unwrap();
        assert_eq!(
            cli.command,
            Command::Route {
                network: "Sprint".into(),
                src: "0".into(),
                dst: "5".into()
            }
        );
        assert_eq!(cli.lambda_h, 1e5);
        assert_eq!(cli.lambda_f, 1e3);
    }

    #[test]
    fn parses_globals_anywhere() {
        let cli = parse_args(&args("--lambda-h 1e6 route Sprint 0 5 --lambda-f 0")).unwrap();
        assert_eq!(cli.lambda_h, 1e6);
        assert_eq!(cli.lambda_f, 0.0);
        assert!(matches!(cli.command, Command::Route { .. }));
    }

    #[test]
    fn parses_k_flags() {
        let cli = parse_args(&args("backup Sprint 0 5 -k 7")).unwrap();
        assert_eq!(
            cli.command,
            Command::Backup {
                network: "Sprint".into(),
                src: "0".into(),
                dst: "5".into(),
                k: 7
            }
        );
        let cli = parse_args(&args("provision Sprint")).unwrap();
        assert!(matches!(cli.command, Command::Provision { k: 5, .. }));
    }

    #[test]
    fn parses_graphml_imports() {
        let cli = parse_args(&args("--graphml zoo.graphml --name Abilene corpus")).unwrap();
        assert_eq!(cli.graphml, vec![("zoo.graphml".into(), "Abilene".into())]);
        assert_eq!(cli.command, Command::Corpus);
    }

    #[test]
    fn help_and_empty_return_usage() {
        assert!(matches!(
            parse_args(&args("--help")),
            Err(CliError::Help(_))
        ));
        assert!(matches!(parse_args(&[]), Err(CliError::Help(_))));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            parse_args(&args("explode")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("route Sprint 0")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("--lambda-h banana corpus")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("backup Sprint 0 5 -k 0")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("--graphml x.graphml corpus")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("--lambda-h -5 corpus")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn export_format_parses_and_validates() {
        let cli = parse_args(&args("export NTT")).unwrap();
        assert_eq!(
            cli.command,
            Command::Export {
                network: "NTT".into(),
                format: "json".into(),
                out: None
            }
        );
        let cli = parse_args(&args("export NTT --format graphml")).unwrap();
        assert!(matches!(cli.command, Command::Export { ref format, .. } if format == "graphml"));
        let cli = parse_args(&args("export NTT --out topo.json")).unwrap();
        assert!(matches!(
            cli.command,
            Command::Export { ref out, .. } if out.as_deref() == Some("topo.json")
        ));
        assert!(matches!(
            parse_args(&args("export NTT --format yaml")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn budget_flags_parse_on_provision_and_replay() {
        let cli = parse_args(&args(
            "provision Sprint -k 3 --deadline-ms 250 --max-work 10 --checkpoint snap.txt",
        ))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Provision {
                network: "Sprint".into(),
                k: 3,
                budget: BudgetArgs {
                    deadline_ms: Some(250),
                    max_work: Some(10),
                    checkpoint: Some("snap.txt".into()),
                    cancel: None,
                },
            }
        );
        let cli = parse_args(&args("replay Telepak katrina --max-work 0")).unwrap();
        let Command::Replay { budget, .. } = cli.command else {
            panic!("expected replay");
        };
        // 0 is a legal budget: exhaust at the first stage boundary.
        assert_eq!(budget.max_work, Some(0));
        assert_eq!(budget.deadline_ms, None);
        assert!(matches!(
            parse_args(&args("provision Sprint --deadline-ms soon")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn resume_takes_a_snapshot_path() {
        let cli = parse_args(&args("resume snap.txt --deadline-ms 100")).unwrap();
        assert_eq!(
            cli.command,
            Command::Resume {
                snapshot: "snap.txt".into(),
                budget: BudgetArgs {
                    deadline_ms: Some(100),
                    max_work: None,
                    checkpoint: None,
                    cancel: None,
                },
            }
        );
        assert!(matches!(parse_args(&args("resume")), Err(CliError::Bad(_))));
    }

    #[test]
    fn sweep_defaults_and_flags() {
        let cli = parse_args(&args("sweep Level3")).unwrap();
        assert_eq!(
            cli.command,
            Command::Sweep {
                network: "Level3".into(),
                mode: "n1".into(),
                samples: 64,
                seed: crate::CLI_SEED,
                budget: BudgetArgs::default(),
            }
        );
        let cli = parse_args(&args(
            "sweep Level3 --mode ensemble --samples 32 --seed 7 \
             --max-work 5 --checkpoint sweep.snap --threads 4",
        ))
        .unwrap();
        assert_eq!(cli.threads, Parallelism::Threads(4));
        assert_eq!(
            cli.command,
            Command::Sweep {
                network: "Level3".into(),
                mode: "ensemble".into(),
                samples: 32,
                seed: 7,
                budget: BudgetArgs {
                    deadline_ms: None,
                    max_work: Some(5),
                    checkpoint: Some("sweep.snap".into()),
                    cancel: None,
                },
            }
        );
        assert!(matches!(
            parse_args(&args("sweep Level3 --mode n3")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("sweep")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("sweep Level3 --samples 0")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn chaos_defaults_and_flags() {
        let cli = parse_args(&args("chaos")).unwrap();
        assert_eq!(
            cli.command,
            Command::Chaos {
                plans: 8,
                seed: crate::CLI_SEED
            }
        );
        let cli = parse_args(&args("chaos --plans 12 --seed 7")).unwrap();
        assert_eq!(
            cli.command,
            Command::Chaos {
                plans: 12,
                seed: 7
            }
        );
        assert!(matches!(
            parse_args(&args("chaos extra")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("chaos --plans 0")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("chaos --seed -3")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn obs_flags_parse_anywhere_and_default_off() {
        let cli = parse_args(&args("corpus")).unwrap();
        assert_eq!(cli.obs, ObsArgs::default());
        assert!(!cli.obs.wants_collection());
        let cli = parse_args(&args(
            "--metrics-out m.prom replay Telepak katrina --trace-out t.jsonl --progress",
        ))
        .unwrap();
        assert_eq!(cli.obs.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(cli.obs.trace_out.as_deref(), Some("t.jsonl"));
        assert!(cli.obs.progress);
        assert!(cli.obs.wants_collection());
        assert!(matches!(cli.command, Command::Replay { .. }));
        assert!(matches!(
            parse_args(&args("corpus --metrics-out")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("corpus --trace-out")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn threads_flag_parses_and_validates() {
        let cli = parse_args(&args("corpus")).unwrap();
        assert_eq!(cli.threads, Parallelism::Sequential, "default is sequential");
        let cli = parse_args(&args("--threads 1 corpus")).unwrap();
        assert_eq!(cli.threads, Parallelism::Sequential, "1 IS the sequential path");
        let cli = parse_args(&args("--threads 4 corpus")).unwrap();
        assert_eq!(cli.threads, Parallelism::Threads(4));
        let cli = parse_args(&args("--threads auto corpus")).unwrap();
        assert_eq!(cli.threads, Parallelism::Auto);
        let cli = parse_args(&args("provision Sprint -k 2 --threads 8")).unwrap();
        assert_eq!(cli.threads, Parallelism::Threads(8), "valid after the command too");
        assert!(matches!(
            parse_args(&args("--threads 0 corpus")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("--threads many corpus")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("corpus --threads")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn route_cache_flag_defaults_on_and_parses() {
        let cli = parse_args(&args("corpus")).unwrap();
        assert!(cli.route_cache, "cache is on by default");
        let cli = parse_args(&args("--no-route-cache corpus")).unwrap();
        assert!(!cli.route_cache);
        let cli = parse_args(&args("provision Sprint -k 2 --no-route-cache")).unwrap();
        assert!(!cli.route_cache, "valid after the command too");
    }

    #[test]
    fn delta_invalidation_flag_defaults_on_and_parses() {
        let cli = parse_args(&args("corpus")).unwrap();
        assert!(cli.delta_invalidation, "delta invalidation is on by default");
        let cli = parse_args(&args("--no-delta-invalidation corpus")).unwrap();
        assert!(!cli.delta_invalidation);
        let cli = parse_args(&args("replay Telepak katrina --no-delta-invalidation")).unwrap();
        assert!(!cli.delta_invalidation, "valid after the command too");
    }

    #[test]
    fn replay_stream_flag_parses() {
        let cli = parse_args(&args("replay Telepak katrina")).unwrap();
        assert!(matches!(cli.command, Command::Replay { stream: false, .. }));
        let cli = parse_args(&args("replay Telepak katrina --stream")).unwrap();
        assert!(matches!(cli.command, Command::Replay { stream: true, .. }));
    }

    #[test]
    fn obs_summary_takes_a_path() {
        let cli = parse_args(&args("obs-summary trace.jsonl")).unwrap();
        assert_eq!(
            cli.command,
            Command::ObsSummary {
                path: "trace.jsonl".into()
            }
        );
        assert!(matches!(
            parse_args(&args("obs-summary")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn obs_subcommands_parse_trace_and_lint() {
        let cli = parse_args(&args("obs trace trace.jsonl")).unwrap();
        assert_eq!(
            cli.command,
            Command::ObsTrace {
                path: "trace.jsonl".into(),
                out: "trace.json".into(),
            }
        );
        let cli = parse_args(&args("obs trace trace.jsonl --out chrome.json")).unwrap();
        assert_eq!(
            cli.command,
            Command::ObsTrace {
                path: "trace.jsonl".into(),
                out: "chrome.json".into(),
            }
        );
        let cli = parse_args(&args("obs lint metrics.prom")).unwrap();
        assert_eq!(
            cli.command,
            Command::ObsLint {
                path: "metrics.prom".into(),
            }
        );
        assert!(matches!(parse_args(&args("obs")), Err(CliError::Bad(_))));
        assert!(matches!(
            parse_args(&args("obs frobnicate x")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn command_names_label_traces() {
        assert_eq!(
            parse_args(&args("route Sprint 0 5")).unwrap().command.name(),
            "route"
        );
        assert_eq!(
            parse_args(&args("obs lint m.prom")).unwrap().command.name(),
            "obs-lint"
        );
    }

    #[test]
    fn serve_defaults_and_flags() {
        let cli = parse_args(&args("serve")).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                listen: "127.0.0.1:4167".into(),
                unix: None,
                max_inflight: 8,
                max_connections: 64,
                frame_cap_bytes: 1 << 20,
                read_timeout_ms: 10_000,
                write_timeout_ms: 5_000,
                drain_ms: 2_000,
                deadline_ms: None,
            }
        );
        let cli = parse_args(&args(
            "serve --listen 127.0.0.1:0 --max-inflight 2 --drain-ms 300 \
             --deadline-ms 250 --frame-cap-bytes 4096 --threads 4",
        ))
        .unwrap();
        assert_eq!(cli.threads, Parallelism::Threads(4));
        let Command::Serve {
            listen,
            max_inflight,
            drain_ms,
            deadline_ms,
            frame_cap_bytes,
            ..
        } = cli.command
        else {
            panic!("expected serve");
        };
        assert_eq!(listen, "127.0.0.1:0");
        assert_eq!(max_inflight, 2);
        assert_eq!(drain_ms, 300);
        assert_eq!(deadline_ms, Some(250));
        assert_eq!(frame_cap_bytes, 4096);
        assert!(matches!(
            parse_args(&args("serve extra")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("serve --max-inflight 0")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn ratio_takes_a_network() {
        let cli = parse_args(&args("ratio Sprint")).unwrap();
        assert_eq!(
            cli.command,
            Command::Ratio {
                network: "Sprint".into(),
                sample: None,
                seed: crate::CLI_SEED,
            }
        );
        assert!(matches!(parse_args(&args("ratio")), Err(CliError::Bad(_))));
    }

    #[test]
    fn ratio_sample_flags_parse() {
        let cli = parse_args(&args("ratio Sprint --sample 48 --seed 7")).unwrap();
        assert_eq!(
            cli.command,
            Command::Ratio {
                network: "Sprint".into(),
                sample: Some(48),
                seed: 7,
            }
        );
        assert!(matches!(
            parse_args(&args("ratio Sprint --sample 0")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn synth_defaults_and_flags() {
        let cli = parse_args(&args("synth 10000")).unwrap();
        assert_eq!(
            cli.command,
            Command::Synth {
                n: 10000,
                seed: crate::CLI_SEED,
                out: None,
            }
        );
        let cli = parse_args(&args("synth 1000 --seed 9 --out net.graphml")).unwrap();
        assert_eq!(
            cli.command,
            Command::Synth {
                n: 1000,
                seed: 9,
                out: Some("net.graphml".into()),
            }
        );
        assert!(matches!(parse_args(&args("synth")), Err(CliError::Bad(_))));
        assert!(matches!(
            parse_args(&args("synth zero")),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&args("synth 0")),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn bucket_queue_flag_defaults_on_and_parses() {
        let cli = parse_args(&args("corpus")).unwrap();
        assert!(cli.bucket_queue, "bucket queue is on by default");
        let cli = parse_args(&args("--no-bucket-queue corpus")).unwrap();
        assert!(!cli.bucket_queue);
        let cli = parse_args(&args("ratio Sprint --no-bucket-queue")).unwrap();
        assert!(!cli.bucket_queue, "valid after the command too");
    }

    #[test]
    fn usage_documents_exit_codes_and_obs() {
        assert!(USAGE.contains("EXIT CODES"));
        assert!(USAGE.contains("9 budget exhausted"));
        assert!(USAGE.contains("10 forced serve drain"));
        assert!(USAGE.contains("serve [--listen A]"));
        assert!(USAGE.contains("ratio <net>"));
        assert!(USAGE.contains("--threads"));
        assert!(USAGE.contains("--no-route-cache"));
        assert!(USAGE.contains("--no-delta-invalidation"));
        assert!(USAGE.contains("--no-bucket-queue"));
        assert!(USAGE.contains("synth <n>"));
        assert!(USAGE.contains("--stream"));
        assert!(USAGE.contains("--metrics-out"));
        assert!(USAGE.contains("--trace-out"));
        assert!(USAGE.contains("--progress"));
        assert!(USAGE.contains("obs-summary"));
        assert!(USAGE.contains("obs trace"));
        assert!(USAGE.contains("obs lint"));
    }

    #[test]
    fn exit_codes_partition_the_taxonomy() {
        use riskroute::Error as E;
        assert_eq!(CliError::Help(String::new()).exit_code(), 0);
        assert_eq!(CliError::Bad(String::new()).exit_code(), 2);
        assert_eq!(CliError::Unknown(String::new()).exit_code(), 3);
        assert_eq!(CliError::Io(String::new()).exit_code(), 4);
        assert_eq!(
            CliError::Core(E::Advisory(
                riskroute_forecast::ParseError::MissingCenter
            ))
            .exit_code(),
            5
        );
        assert_eq!(
            CliError::Core(E::Unreachable {
                network: "x".into(),
                src: 0,
                dst: 1
            })
            .exit_code(),
            6
        );
        assert_eq!(CliError::Core(E::NoInformativePairs).exit_code(), 6);
        assert_eq!(
            CliError::Core(E::InvalidWeight {
                context: "λ_h".into(),
                value: f64::NAN
            })
            .exit_code(),
            7
        );
        assert_eq!(
            CliError::Core(E::SnapshotVersion {
                found: 99,
                supported: 1
            })
            .exit_code(),
            5
        );
        assert_eq!(
            CliError::Core(E::SnapshotIntegrity {
                reason: "truncated".into()
            })
            .exit_code(),
            5
        );
        assert_eq!(
            CliError::Core(E::InvalidArgument {
                context: "stride".into(),
                message: "must be positive".into()
            })
            .exit_code(),
            7
        );
        assert_eq!(CliError::Core(E::WorkerPanic { panicked: 2 }).exit_code(), 7);
        assert_eq!(CliError::Chaos(vec!["v".into()]).exit_code(), 8);
        assert_eq!(
            CliError::Budget {
                report: "partial".into(),
                stopped: riskroute::StopReason::WorkExhausted,
            }
            .exit_code(),
            9
        );
        assert_eq!(CliError::Drain("2 connections stuck".into()).exit_code(), 10);
    }

    #[test]
    fn core_errors_render_their_cause_chain() {
        let err = CliError::Core(riskroute::Error::from(
            riskroute_topology::TopologyError::SelfLink(2),
        ));
        let text = err.to_string();
        assert!(text.contains("topology construction failed"));
        assert!(text.contains("caused by: self-link on PoP 2"));
    }

    #[test]
    fn replay_stride_default_and_override() {
        let cli = parse_args(&args("replay Telepak katrina")).unwrap();
        assert!(matches!(cli.command, Command::Replay { stride: 8, .. }));
        let cli = parse_args(&args("replay Telepak katrina --stride 2")).unwrap();
        assert!(matches!(cli.command, Command::Replay { stride: 2, .. }));
    }
}
