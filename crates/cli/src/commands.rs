//! Subcommand implementations: pure functions to output strings.

use crate::args::BudgetArgs;
use crate::{resolve_pop, resolve_storm, CliContext, CliError};
use riskroute::backup::backup_paths;
use riskroute::checkpoint::{self, LoadOutcome, Snapshot, SnapshotJob, SnapshotProgress};
use riskroute::failure::{criticality_ranking, storm_failure};
use riskroute::prelude::*;
use riskroute::provisioning::{greedy_links_budgeted, greedy_links_resume, GreedyLinks};
use riskroute::replay::{
    raw_advisories, replay_raw_advisories_budgeted, DisasterReplay, RawAdvisory, ReplaySession,
    ReplayTick,
};
use riskroute::scenario::{
    run_sweep_budgeted, scenario_specs, FailElement, SweepOutcome, SweepPrior,
};
use riskroute::{NodeRisk, RoutedPath};
use riskroute_forecast::{ForecastRisk, StormSwath};
use riskroute_obs::Heartbeat;
use riskroute_population::PopShares;
use riskroute_serve::{QueryCx, QueryHandler, Reply, Request, ServeConfig, Server};
use riskroute_topology::Network;
use std::fmt::Write as _;

/// `riskroute corpus`
pub fn corpus(ctx: &CliContext) -> String {
    let mut out = String::from("Available networks (seed 42):\n\n");
    let _ = writeln!(
        out,
        "{:<20} {:<10} {:>5} {:>6} {:>12} {:>7}",
        "Network", "Kind", "PoPs", "Links", "Footprint mi", "Peers"
    );
    out.push_str(&"-".repeat(66));
    out.push('\n');
    for net in ctx.imported.iter().chain(ctx.corpus.all_networks()) {
        let kind = if ctx.imported.iter().any(|n| n.name() == net.name()) {
            "imported"
        } else {
            match net.kind() {
                NetworkKind::Tier1 => "tier-1",
                NetworkKind::Regional => "regional",
            }
        };
        let _ = writeln!(
            out,
            "{:<20} {:<10} {:>5} {:>6} {:>12.0} {:>7}",
            net.name(),
            kind,
            net.pop_count(),
            net.link_count(),
            net.footprint_miles(),
            ctx.corpus.peering.peer_count(net.name()),
        );
    }
    out
}

fn describe_route(net: &Network, label: &str, r: &RoutedPath) -> String {
    let path: Vec<&str> = r
        .nodes
        .iter()
        .map(|&n| net.pops()[n].name.as_str())
        .collect();
    format!(
        "{label}: {:.0} bit-miles + {:.0} risk-miles = {:.0} bit-risk miles\n  {}\n",
        r.bit_miles,
        r.risk_miles,
        r.bit_risk_miles,
        path.join(" -> ")
    )
}

/// `riskroute route <net> <src> <dst>`
pub fn route(
    ctx: &CliContext,
    network: &str,
    src: &str,
    dst: &str,
    weights: RiskWeights,
) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let (s, d) = (resolve_pop(net, src)?, resolve_pop(net, dst)?);
    let planner = ctx.planner(net, weights);
    let unreachable = || riskroute::Error::Unreachable {
        network: net.name().to_string(),
        src: s,
        dst: d,
    };
    let sp = planner.shortest_route(s, d).ok_or_else(unreachable)?;
    let rr = planner.try_risk_route(s, d)?;
    let mut out = format!(
        "{}: {} -> {} (lambda_h {:.0e}, lambda_f {:.0e})\n\n",
        net.name(),
        net.pops()[s].name,
        net.pops()[d].name,
        weights.lambda_h,
        weights.lambda_f
    );
    out.push_str(&describe_route(net, "shortest path", &sp));
    out.push_str(&describe_route(net, "RiskRoute    ", &rr));
    let _ = writeln!(
        out,
        "\nrisk reduction {:.1}% for {:.1}% extra distance",
        100.0 * (1.0 - rr.bit_risk_miles / sp.bit_risk_miles),
        100.0 * (rr.bit_miles / sp.bit_miles - 1.0)
    );
    Ok(out)
}

/// `riskroute backup <net> <src> <dst> -k N`
pub fn backup(
    ctx: &CliContext,
    network: &str,
    src: &str,
    dst: &str,
    k: usize,
    weights: RiskWeights,
) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let (s, d) = (resolve_pop(net, src)?, resolve_pop(net, dst)?);
    let planner = ctx.planner(net, weights);
    let plan = backup_paths(&planner, net, s, d, k).ok_or_else(|| {
        riskroute::Error::Unreachable {
            network: net.name().to_string(),
            src: s,
            dst: d,
        }
    })?;
    let mut out = format!(
        "{}: ranked paths {} -> {}\n\n",
        net.name(),
        net.pops()[s].name,
        net.pops()[d].name
    );
    out.push_str(&describe_route(net, "primary ", &plan.primary));
    for (i, alt) in plan.alternates.iter().enumerate() {
        out.push_str(&describe_route(net, &format!("backup {}", i + 1), alt));
    }
    if plan.alternates.is_empty() {
        out.push_str("(no loopless alternates exist)\n");
    }
    Ok(out)
}

fn render_provision(net: &Network, result: &GreedyLinks) -> String {
    let mut out = format!(
        "{}: best additional links (greedy Eq. 4; original total bit-risk {:.3e})\n\n",
        net.name(),
        result.original_bit_risk
    );
    if result.added.is_empty() {
        out.push_str("no candidate links at any shortcut threshold\n");
    }
    for (i, link) in result.added.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}. {} <-> {} ({:.0} mi, filter >{:.0}%): total falls to {:.2}% of original",
            i + 1,
            net.pops()[link.a].name,
            net.pops()[link.b].name,
            link.miles,
            100.0 * link.shortcut_threshold,
            100.0 * link.total_bit_risk / result.original_bit_risk
        );
    }
    out
}

/// Append the budget-exhaustion tail shared by `provision` and `replay`:
/// what stopped the run, how far it got, and how to continue it.
fn push_budget_tail(
    report: &mut String,
    stopped: &riskroute::StopReason,
    done: usize,
    total: usize,
    unit: &str,
    checkpoint: Option<&str>,
) {
    let _ = writeln!(report, "\nbudget exhausted ({stopped}): {done} of {total} {unit}");
    match checkpoint {
        Some(path) => {
            let _ = writeln!(
                report,
                "checkpoint saved; continue with `riskroute resume {path}`"
            );
        }
        None => {
            report.push_str("no --checkpoint path was given, so this partial progress was not saved\n");
        }
    }
}

/// `riskroute provision <net> -k N [--deadline-ms N] [--max-work N]
/// [--checkpoint <path>] [--progress]`
pub fn provision(
    ctx: &CliContext,
    network: &str,
    k: usize,
    weights: RiskWeights,
    budget: &BudgetArgs,
    progress: bool,
) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let planner = ctx.planner(net, weights);
    provision_under_budget(net, &planner, k, weights, budget, None, String::new(), progress)
}

/// Shared engine for `provision` and `resume`: run (or continue) the greedy
/// search under the budget, snapshotting after every iteration. A budget
/// stop renders the completed prefix and surfaces as [`CliError::Budget`]
/// (exit code 9) after writing a final snapshot.
#[allow(clippy::too_many_arguments)]
fn provision_under_budget(
    net: &Network,
    planner: &Planner,
    k: usize,
    weights: RiskWeights,
    budget: &BudgetArgs,
    prior: Option<GreedyLinks>,
    notice: String,
    progress: bool,
) -> Result<String, CliError> {
    let work = budget.to_budget();
    let risk = planner.risk().clone();
    let shares = PopShares::from_shares(planner.shares().shares().to_vec());
    let rebuild = move |aug: &Network| Planner::new(aug, risk.clone(), shares.clone(), weights);
    let mut heartbeat = progress.then(|| Heartbeat::new(format!("provision {}", net.name())));
    let mut checkpoint_error: Option<String> = None;
    let save = |links: &GreedyLinks, err: &mut Option<String>| {
        if let Some(path) = &budget.checkpoint {
            let snap =
                Snapshot::provision(net.name(), k, weights.lambda_h, weights.lambda_f, links);
            if let Err(e) = checkpoint::write_atomic(path, &snap.to_text()) {
                err.get_or_insert(format!("cannot write checkpoint {path}: {e}"));
            }
        }
    };
    let mut on_iteration = |links: &GreedyLinks| {
        if let Some(hb) = &mut heartbeat {
            hb.tick(
                links.added.len() as u64,
                Some(k as u64),
                &format!("work {}", work.work_done()),
            );
        }
        save(links, &mut checkpoint_error);
    };
    let run = match prior {
        Some(p) => greedy_links_resume(net, planner, k, rebuild, p, &work, &mut on_iteration),
        None => greedy_links_budgeted(net, planner, k, rebuild, &work, &mut on_iteration),
    };
    let (result, stopped) = run.into_parts();
    if let Some(hb) = &mut heartbeat {
        hb.finish(
            result.added.len() as u64,
            Some(k as u64),
            &format!("work {}", work.work_done()),
        );
    }
    if let Some(stopped) = stopped {
        // A deadline can expire before the first iteration ever fires the
        // callback, so always write a final snapshot of the prefix.
        save(&result, &mut checkpoint_error);
        if let Some(msg) = checkpoint_error {
            return Err(CliError::Io(msg));
        }
        let mut report = notice;
        report.push_str(&render_provision(net, &result));
        push_budget_tail(
            &mut report,
            &stopped,
            result.added.len(),
            k,
            "links chosen",
            budget.checkpoint.as_deref(),
        );
        return Err(CliError::Budget { report, stopped });
    }
    if let Some(msg) = checkpoint_error {
        return Err(CliError::Io(msg));
    }
    Ok(format!("{notice}{}", render_provision(net, &result)))
}

fn render_replay(result: &DisasterReplay, stride: usize) -> String {
    let mut out = format!(
        "{} under Hurricane {} (every {}th advisory)\n\n",
        result.network, result.storm, stride
    );
    for tick in &result.ticks {
        let bar = "#".repeat(((tick.report.risk_reduction_ratio * 150.0).round() as usize).min(60));
        let _ = writeln!(
            out,
            "{:<24} rr {:>6.3}  in-scope {:>3}  hurricane-winds {:>3}  {}",
            tick.label,
            tick.report.risk_reduction_ratio,
            tick.pops_in_scope,
            tick.pops_in_hurricane_winds,
            bar
        );
    }
    if let Some(peak) = result.peak() {
        let _ = writeln!(
            out,
            "\npeak risk-reduction ratio {:.3} at {}",
            peak.report.risk_reduction_ratio, peak.label
        );
    }
    out
}

/// `riskroute replay <net> <storm> --stride N [--deadline-ms N]
/// [--max-work N] [--checkpoint <path>] [--progress]`
#[allow(clippy::too_many_arguments)]
pub fn replay(
    ctx: &CliContext,
    network: &str,
    storm: &str,
    stride: usize,
    weights: RiskWeights,
    budget: &BudgetArgs,
    progress: bool,
) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let storm = resolve_storm(storm)?;
    let planner = ctx.planner(net, weights);
    replay_under_budget(
        net,
        &planner,
        storm,
        stride,
        weights,
        budget,
        Vec::new(),
        String::new(),
        progress,
    )
}

/// Shared engine for `replay` and `resume`; see [`provision_under_budget`].
/// Each tick is independent (the forecast is rebuilt fresh per advisory),
/// which is what makes a resumed replay bit-identical to an uninterrupted
/// one.
#[allow(clippy::too_many_arguments)]
fn replay_under_budget(
    net: &Network,
    planner: &Planner,
    storm: Storm,
    stride: usize,
    weights: RiskWeights,
    budget: &BudgetArgs,
    prior_ticks: Vec<ReplayTick>,
    notice: String,
    progress: bool,
) -> Result<String, CliError> {
    let raws = raw_advisories(storm, stride)?;
    let total = raws.len();
    let locations: Vec<_> = net.pops().iter().map(|p| p.location).collect();
    let all: Vec<usize> = (0..net.pop_count()).collect();
    let storm_key = storm.name().to_lowercase();
    let work = budget.to_budget();
    let mut heartbeat =
        progress.then(|| Heartbeat::new(format!("replay {} {storm_key}", net.name())));
    let mut checkpoint_error: Option<String> = None;
    let save = |replay: &DisasterReplay, next: usize, err: &mut Option<String>| {
        if let Some(path) = &budget.checkpoint {
            let snap = Snapshot::replay(
                net.name(),
                &storm_key,
                stride,
                weights.lambda_h,
                weights.lambda_f,
                replay,
                next,
            );
            if let Err(e) = checkpoint::write_atomic(path, &snap.to_text()) {
                err.get_or_insert(format!("cannot write checkpoint {path}: {e}"));
            }
        }
    };
    let mut on_batch = |replay: &DisasterReplay, next: usize| {
        if let Some(hb) = &mut heartbeat {
            hb.tick(
                next as u64,
                Some(total as u64),
                &format!("work {}", work.work_done()),
            );
        }
        save(replay, next, &mut checkpoint_error);
    };
    let run = replay_raw_advisories_budgeted(
        planner,
        net.name(),
        &locations,
        storm.name(),
        &raws,
        &all,
        &all,
        prior_ticks,
        &work,
        &mut on_batch,
    )?;
    let (result, stopped) = run.into_parts();
    if let Some(hb) = &mut heartbeat {
        hb.finish(
            result.ticks.len() as u64,
            Some(total as u64),
            &format!("work {}", work.work_done()),
        );
    }
    if let Some(stopped) = stopped {
        // The batch callback only fires at batch boundaries; persist the
        // exact stopping point (ticks are a prefix, so next == len).
        save(&result, result.ticks.len(), &mut checkpoint_error);
        if let Some(msg) = checkpoint_error {
            return Err(CliError::Io(msg));
        }
        let mut report = notice;
        report.push_str(&render_replay(&result, stride));
        push_budget_tail(
            &mut report,
            &stopped,
            result.ticks.len(),
            total,
            "advisories replayed",
            budget.checkpoint.as_deref(),
        );
        return Err(CliError::Budget { report, stopped });
    }
    if let Some(msg) = checkpoint_error {
        return Err(CliError::Io(msg));
    }
    Ok(format!("{notice}{}", render_replay(&result, stride)))
}

/// `riskroute replay <net> <storm> --stream`: read NDJSON advisories from
/// stdin and answer each with one NDJSON tick line computed against the warm
/// engine. Unlike the recorded replay, the planner persists across ticks, so
/// consecutive forecasts flow through the delta-aware cost stamps and only
/// the affected route trees are repaired.
pub fn replay_stream(
    ctx: &CliContext,
    network: &str,
    weights: RiskWeights,
) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let planner = ctx.planner(net, weights);
    let locations: Vec<_> = net.pops().iter().map(|p| p.location).collect();
    let stdin = std::io::stdin();
    replay_stream_from(&planner, &locations, stdin.lock())
}

/// Testable core of [`replay_stream`]: one NDJSON advisory object
/// (`{"number":N,"label":"...","text":"..."}`) per input line, one NDJSON
/// tick object per output line, then a trailing summary object. Blank lines
/// are skipped; a malformed line aborts the stream with its line number.
fn replay_stream_from(
    planner: &Planner,
    locations: &[riskroute_geo::GeoPoint],
    input: impl std::io::BufRead,
) -> Result<String, CliError> {
    use riskroute_json::Json;
    let mut session = ReplaySession::all_pairs(planner, locations).map_err(CliError::Core)?;
    let mut out = String::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| CliError::Io(format!("stdin read failed: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let bad = |e: riskroute_json::JsonError| {
            CliError::Bad(format!("stdin line {}: {e}", lineno + 1))
        };
        let doc = riskroute_json::parse(&line).map_err(bad)?;
        let raw = RawAdvisory {
            number: doc.field("number").and_then(Json::as_usize).map_err(bad)?,
            label: doc
                .field("label")
                .and_then(Json::as_str)
                .map_err(bad)?
                .to_string(),
            text: doc
                .field("text")
                .and_then(Json::as_str)
                .map_err(bad)?
                .to_string(),
        };
        let tick = session.tick(&raw);
        let obj = Json::obj([
            ("advisory", Json::Num(tick.advisory as f64)),
            ("label", Json::Str(tick.label.clone())),
            ("pops_in_scope", Json::Num(tick.pops_in_scope as f64)),
            (
                "pops_in_hurricane_winds",
                Json::Num(tick.pops_in_hurricane_winds as f64),
            ),
            (
                "risk_reduction_ratio",
                Json::Num(tick.report.risk_reduction_ratio),
            ),
            (
                "distance_increase_ratio",
                Json::Num(tick.report.distance_increase_ratio),
            ),
            ("pairs", Json::Num(tick.report.pairs as f64)),
            ("stranded_pairs", Json::Num(tick.report.stranded_pairs as f64)),
            ("degraded", Json::Bool(tick.degraded)),
        ]);
        out.push_str(&obj.to_string_compact());
        out.push('\n');
    }
    let summary = Json::obj([
        ("summary", Json::Bool(true)),
        ("ticks", Json::Num(session.ticks_processed() as f64)),
        (
            "degraded_ticks",
            Json::Num(session.degraded_ticks() as f64),
        ),
    ]);
    out.push_str(&summary.to_string_compact());
    out.push('\n');
    Ok(out)
}

fn element_name(net: &Network, e: &FailElement) -> String {
    match *e {
        FailElement::Node(v) => net.pops()[v].name.clone(),
        FailElement::Link(a, b) => {
            format!("{} <-> {}", net.pops()[a].name, net.pops()[b].name)
        }
    }
}

fn render_sweep(net: &Network, outcome: &SweepOutcome) -> String {
    let mode_desc = match outcome.mode {
        SweepMode::N1 => "full N-1".to_string(),
        SweepMode::N2 { samples, seed } => {
            format!("sampled N-2 ({samples} draws, seed {seed})")
        }
        SweepMode::Ensemble { samples, seed } => {
            format!("hazard ensemble ({samples} members, seed {seed})")
        }
    };
    let mut out = format!(
        "{}: {mode_desc} resilience sweep, {} scenarios evaluated\n",
        outcome.network,
        outcome.records.len()
    );
    let _ = writeln!(
        out,
        "baseline: {:.4e} bit-risk miles, {} routable pairs, {} stranded\n",
        outcome.baseline.bit_risk_total,
        outcome.baseline.routable_pairs,
        outcome.baseline.stranded_pairs
    );
    let ranked = outcome.ranked();
    if ranked.is_empty() {
        out.push_str("(no scenarios evaluated)\n");
        return out;
    }
    out.push_str("criticality ranking (by stranded pairs, then bit-risk miles):\n");
    let _ = writeln!(
        out,
        "{:<4} {:<44} {:>14} {:>11}",
        "rank", "scenario", "d bit-risk", "d stranded"
    );
    out.push_str(&"-".repeat(76));
    out.push('\n');
    for (pos, (_, rec)) in ranked.iter().enumerate().take(15) {
        let _ = writeln!(
            out,
            "{:<4} {:<44} {:>+14.4e} {:>+11}",
            pos + 1,
            rec.label,
            outcome.delta_bit_risk(rec),
            outcome.delta_stranded(rec)
        );
    }
    if ranked.len() > 15 {
        let _ = writeln!(out, "… and {} more scenarios", ranked.len() - 15);
    }
    if matches!(outcome.mode, SweepMode::Ensemble { .. }) {
        if let Some((p5, p50, p95)) = outcome.risk_bands() {
            let _ = writeln!(
                out,
                "\nensemble bit-risk bands: p5 {p5:.4e}  p50 {p50:.4e}  p95 {p95:.4e}"
            );
        }
    }
    if matches!(outcome.mode, SweepMode::N2 { .. }) {
        out.push_str("\nworst-case fork per element:\n");
        for (e, dbr, dst) in outcome.worst_per_element().iter().take(10) {
            let _ = writeln!(
                out,
                "  {:<44} {:>+14.4e} {:>+6} stranded",
                element_name(net, e),
                dbr,
                dst
            );
        }
    }
    out
}

/// `riskroute sweep <net> [--mode n1|n2|ensemble] [--samples N] [--seed S]
/// [--deadline-ms N] [--max-work N] [--checkpoint <path>] [--progress]`
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    ctx: &CliContext,
    network: &str,
    mode_label: &str,
    samples: usize,
    seed: u64,
    weights: RiskWeights,
    budget: &BudgetArgs,
    progress: bool,
) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    // args.rs validates the label; this guards programmatic callers.
    let mode = SweepMode::from_parts(mode_label, samples, seed)
        .ok_or_else(|| CliError::Bad(format!("unknown sweep mode {mode_label:?}")))?;
    let planner = ctx.planner(net, weights);
    sweep_under_budget(net, &planner, mode, weights, budget, None, String::new(), progress)
}

/// Shared engine for `sweep` and `resume`; see [`provision_under_budget`].
/// Every scenario is an independent fork of the base planner, evaluated
/// in canonical order, which is what makes a resumed sweep bit-identical
/// to an uninterrupted one at any worker count.
#[allow(clippy::too_many_arguments)]
fn sweep_under_budget(
    net: &Network,
    planner: &Planner,
    mode: SweepMode,
    weights: RiskWeights,
    budget: &BudgetArgs,
    prior: Option<SweepPrior>,
    notice: String,
    progress: bool,
) -> Result<String, CliError> {
    let total = scenario_specs(net, mode).len();
    let work = budget.to_budget();
    let mut heartbeat =
        progress.then(|| Heartbeat::new(format!("sweep {} {}", net.name(), mode.label())));
    let mut checkpoint_error: Option<String> = None;
    let save = |outcome: &SweepOutcome, next: usize, err: &mut Option<String>| {
        if let Some(path) = &budget.checkpoint {
            let snap = Snapshot::sweep(
                net.name(),
                mode,
                weights.lambda_h,
                weights.lambda_f,
                outcome.baseline,
                &outcome.records,
                next,
            );
            if let Err(e) = checkpoint::write_atomic(path, &snap.to_text()) {
                err.get_or_insert(format!("cannot write checkpoint {path}: {e}"));
            }
        }
    };
    let mut on_batch = |outcome: &SweepOutcome, next: usize| {
        if let Some(hb) = &mut heartbeat {
            hb.tick(
                next as u64,
                Some(total as u64),
                &format!("work {}", work.work_done()),
            );
        }
        save(outcome, next, &mut checkpoint_error);
    };
    let run = run_sweep_budgeted(planner, net, mode, prior, &work, &mut on_batch)?;
    let (outcome, stopped) = run.into_parts();
    if let Some(hb) = &mut heartbeat {
        hb.finish(
            outcome.records.len() as u64,
            Some(total as u64),
            &format!("work {}", work.work_done()),
        );
    }
    if let Some(stopped) = stopped {
        // The batch callback only fires at batch boundaries; persist the
        // exact stopping point (records are a prefix, so next == len).
        save(&outcome, outcome.records.len(), &mut checkpoint_error);
        if let Some(msg) = checkpoint_error {
            return Err(CliError::Io(msg));
        }
        let mut report = notice;
        report.push_str(&render_sweep(net, &outcome));
        push_budget_tail(
            &mut report,
            &stopped,
            outcome.records.len(),
            total,
            "scenarios evaluated",
            budget.checkpoint.as_deref(),
        );
        return Err(CliError::Budget { report, stopped });
    }
    if let Some(msg) = checkpoint_error {
        return Err(CliError::Io(msg));
    }
    Ok(format!("{notice}{}", render_sweep(net, &outcome)))
}

fn kind_mismatch() -> CliError {
    CliError::Core(riskroute::Error::SnapshotIntegrity {
        reason: "job/progress kind mismatch".into(),
    })
}

/// `riskroute resume <snapshot> [--deadline-ms N] [--max-work N]
/// [--checkpoint <path>]`
///
/// Continues a checkpointed run, bit-identically to the uninterrupted one.
/// The snapshot's recorded λ weights are used (not the CLI globals), so a
/// resumed run cannot silently change the job it continues. When the
/// progress section is unusable but the job line survives — the common
/// shape of truncation — the job restarts from scratch under a degraded-mode
/// notice instead of failing. New snapshots overwrite the input snapshot
/// unless `--checkpoint` redirects them.
pub fn resume(
    ctx: &CliContext,
    snapshot_path: &str,
    budget: &BudgetArgs,
    show_progress: bool,
) -> Result<String, CliError> {
    let text = std::fs::read_to_string(snapshot_path)
        .map_err(|e| CliError::Io(format!("cannot read snapshot {snapshot_path}: {e}")))?;
    let mut budget = budget.clone();
    if budget.checkpoint.is_none() {
        budget.checkpoint = Some(snapshot_path.to_string());
    }
    let (job, progress, notice) = match checkpoint::load_snapshot_with_fallback(&text)? {
        LoadOutcome::Resume(snap) => (
            snap.job,
            Some(snap.progress),
            format!("resuming from {snapshot_path}\n\n"),
        ),
        LoadOutcome::Fallback { job, error } => {
            let notice = format!(
                "degraded mode: snapshot {snapshot_path} is not resumable ({error}); \
                 restarting the {} job from scratch\n\n",
                job.kind()
            );
            (job, None, notice)
        }
    };
    match job {
        SnapshotJob::Provision {
            network,
            k,
            lambda_h,
            lambda_f,
        } => {
            let weights = RiskWeights::new(lambda_h, lambda_f);
            let net = ctx.network(&network)?;
            let planner = ctx.planner(net, weights);
            let prior = match progress {
                Some(SnapshotProgress::Provision(links)) => Some(links),
                None => None,
                Some(_) => return Err(kind_mismatch()),
            };
            provision_under_budget(
                net,
                &planner,
                k,
                weights,
                &budget,
                prior,
                notice,
                show_progress,
            )
        }
        SnapshotJob::Replay {
            network,
            storm,
            stride,
            lambda_h,
            lambda_f,
        } => {
            let weights = RiskWeights::new(lambda_h, lambda_f);
            let net = ctx.network(&network)?;
            let storm = resolve_storm(&storm)?;
            let planner = ctx.planner(net, weights);
            let prior_ticks = match progress {
                Some(SnapshotProgress::Replay { replay, next_index }) => {
                    if next_index != replay.ticks.len() {
                        return Err(CliError::Core(riskroute::Error::SnapshotIntegrity {
                            reason: format!(
                                "next_index {next_index} does not match the {} stored ticks",
                                replay.ticks.len()
                            ),
                        }));
                    }
                    replay.ticks
                }
                None => Vec::new(),
                Some(_) => return Err(kind_mismatch()),
            };
            replay_under_budget(
                net,
                &planner,
                storm,
                stride,
                weights,
                &budget,
                prior_ticks,
                notice,
                show_progress,
            )
        }
        SnapshotJob::Sweep {
            network,
            mode,
            samples,
            seed,
            lambda_h,
            lambda_f,
        } => {
            let weights = RiskWeights::new(lambda_h, lambda_f);
            let net = ctx.network(&network)?;
            let mode = SweepMode::from_parts(&mode, samples, seed).ok_or_else(|| {
                CliError::Core(riskroute::Error::SnapshotIntegrity {
                    reason: format!("unknown sweep mode {mode:?} in snapshot"),
                })
            })?;
            let planner = ctx.planner(net, weights);
            let prior = match progress {
                Some(SnapshotProgress::Sweep {
                    baseline,
                    records,
                    next_index,
                }) => {
                    if next_index != records.len() {
                        return Err(CliError::Core(riskroute::Error::SnapshotIntegrity {
                            reason: format!(
                                "next_index {next_index} does not match the {} stored records",
                                records.len()
                            ),
                        }));
                    }
                    Some(SweepPrior { baseline, records })
                }
                None => None,
                Some(_) => return Err(kind_mismatch()),
            };
            sweep_under_budget(
                net,
                &planner,
                mode,
                weights,
                &budget,
                prior,
                notice,
                show_progress,
            )
        }
    }
}

/// Seeded sample of `k` ordered source/destination pairs over `n` PoPs
/// (`i ≠ j` by construction; duplicates allowed, like any bootstrap draw).
pub fn sampled_pairs(n: usize, k: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = riskroute_rng::StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n - 1);
            (i, if j >= i { j + 1 } else { j })
        })
        .collect()
}

/// `riskroute ratio <net> [--sample K] [--seed S]`
pub fn ratio(
    ctx: &CliContext,
    network: &str,
    weights: RiskWeights,
    sample: Option<usize>,
    seed: u64,
) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let planner = ctx.planner(net, weights);
    let report = match sample {
        Some(k) => {
            if net.pop_count() < 2 {
                return Err(CliError::Core(riskroute::Error::NoInformativePairs));
            }
            let pairs = sampled_pairs(net.pop_count(), k, seed);
            let sweep = planner.pair_list_sweep(&pairs);
            RatioReport::aggregate_with_stranded(sweep.outcomes.iter(), sweep.stranded.len())
        }
        None => planner.ratio_report(),
    };
    if !report.is_informative() {
        return Err(CliError::Core(riskroute::Error::NoInformativePairs));
    }
    let mut out = format!(
        "{}: network-wide RiskRoute ratios (lambda_h {:.0e}, lambda_f {:.0e})\n\n",
        net.name(),
        weights.lambda_h,
        weights.lambda_f
    );
    match sample {
        Some(k) => {
            let _ = writeln!(
                out,
                "pairs aggregated: {} of {k} sampled PoP pairs ({} stranded; seed {seed})",
                report.pairs, report.stranded_pairs
            );
        }
        None => {
            let _ = writeln!(
                out,
                "pairs aggregated: {} ordered PoP pairs ({} stranded)",
                report.pairs, report.stranded_pairs
            );
        }
    }
    let _ = writeln!(
        out,
        "risk reduction ratio (Eq. 5):    {:.4}",
        report.risk_reduction_ratio
    );
    let _ = writeln!(
        out,
        "distance increase ratio (Eq. 6): {:.4}",
        report.distance_increase_ratio
    );
    Ok(out)
}

/// Options for `riskroute serve`, mirrored from
/// [`Command::Serve`](crate::Command::Serve).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP listen address (ignored when `unix` is set).
    pub listen: String,
    /// Unix-domain socket path, when serving over a Unix socket.
    pub unix: Option<String>,
    /// Maximum queries executing at once.
    pub max_inflight: usize,
    /// Maximum concurrently open connections.
    pub max_connections: usize,
    /// Per-frame byte cap.
    pub frame_cap_bytes: usize,
    /// Mid-frame stall timeout.
    pub read_timeout_ms: u64,
    /// Response-write stall timeout.
    pub write_timeout_ms: u64,
    /// Drain window (finish, then shed) at shutdown.
    pub drain_ms: u64,
    /// Default per-request wall-clock deadline (requests may override).
    pub deadline_ms: Option<u64>,
}

/// The daemon's [`QueryHandler`]: answers queries with the same pure
/// command functions as one-shot invocations, over one warm context, which
/// is what makes serve responses byte-identical to the CLI.
pub struct ServeHandler {
    ctx: CliContext,
    weights: RiskWeights,
    default_deadline_ms: Option<u64>,
}

fn opt_field<'a>(request: &'a Request, name: &str) -> Option<&'a riskroute_json::Json> {
    request.body.as_obj().ok().and_then(|m| m.get(name))
}

fn req_str<'a>(request: &'a Request, name: &str) -> Result<&'a str, CliError> {
    let v = opt_field(request, name).ok_or_else(|| {
        CliError::Bad(format!("op {:?} needs a {name:?} field", request.op))
    })?;
    v.as_str()
        .map_err(|_| CliError::Bad(format!("field {name:?} must be a string")))
}

fn opt_usize(request: &Request, name: &str) -> Result<Option<usize>, CliError> {
    opt_field(request, name)
        .map(|v| {
            v.as_usize().map_err(|_| {
                CliError::Bad(format!("field {name:?} must be a non-negative integer"))
            })
        })
        .transpose()
}

fn opt_u64(request: &Request, name: &str) -> Result<Option<u64>, CliError> {
    Ok(opt_usize(request, name)?.map(|v| v as u64))
}

fn opt_f64(request: &Request, name: &str) -> Result<Option<f64>, CliError> {
    opt_field(request, name)
        .map(|v| {
            v.as_f64()
                .map_err(|_| CliError::Bad(format!("field {name:?} must be a number")))
        })
        .transpose()
}

/// The stable kebab-case `kind` a [`CliError`] maps to on the wire.
fn error_kind(err: &CliError) -> &'static str {
    match err {
        CliError::Help(_) => "help",
        CliError::Bad(_) => "bad-request",
        CliError::Unknown(_) => "unknown-name",
        CliError::Io(_) => "io-error",
        CliError::Core(_) => "engine-error",
        CliError::Chaos(_) => "chaos-violation",
        CliError::Budget { .. } => "budget-exhausted",
        CliError::Drain(_) => "forced-drain",
    }
}

impl ServeHandler {
    /// A handler answering over `ctx` at `weights`, with an optional
    /// daemon-wide default per-request deadline.
    pub fn new(ctx: CliContext, weights: RiskWeights, default_deadline_ms: Option<u64>) -> Self {
        ServeHandler {
            ctx,
            weights,
            default_deadline_ms,
        }
    }

    /// Per-request λ overrides fall back to the daemon's global weights.
    fn weights_for(&self, request: &Request) -> Result<RiskWeights, CliError> {
        let lh = opt_f64(request, "lambda_h")?;
        let lf = opt_f64(request, "lambda_f")?;
        if lh.is_none() && lf.is_none() {
            return Ok(self.weights);
        }
        Ok(RiskWeights::new(
            lh.unwrap_or(self.weights.lambda_h),
            lf.unwrap_or(self.weights.lambda_f),
        ))
    }

    /// Per-request budget: request fields override the daemon default
    /// deadline; every budget is wired to the daemon's shed flag so a
    /// drain past its deadline stops in-flight work at the next stage
    /// boundary as a typed partial. No checkpointing in serve.
    fn budget_for(&self, request: &Request, cx: &QueryCx) -> Result<BudgetArgs, CliError> {
        Ok(BudgetArgs {
            deadline_ms: opt_u64(request, "deadline_ms")?.or(self.default_deadline_ms),
            max_work: opt_u64(request, "max_work")?,
            checkpoint: None,
            cancel: Some(std::sync::Arc::clone(&cx.cancel)),
        })
    }

    /// Defaults for optional fields match the CLI flag defaults, so a
    /// field-free request answers exactly like the flag-free command.
    fn answer(&self, request: &Request, cx: &QueryCx) -> Result<String, CliError> {
        let weights = self.weights_for(request)?;
        match request.op.as_str() {
            "corpus" => Ok(corpus(&self.ctx)),
            "route" => route(
                &self.ctx,
                req_str(request, "network")?,
                req_str(request, "src")?,
                req_str(request, "dst")?,
                weights,
            ),
            "ratio" => ratio(
                &self.ctx,
                req_str(request, "network")?,
                weights,
                opt_usize(request, "sample")?,
                opt_u64(request, "seed")?.unwrap_or(crate::CLI_SEED),
            ),
            "provision" => {
                let budget = self.budget_for(request, cx)?;
                provision(
                    &self.ctx,
                    req_str(request, "network")?,
                    opt_usize(request, "k")?.unwrap_or(5),
                    weights,
                    &budget,
                    false,
                )
            }
            "replay" => {
                let budget = self.budget_for(request, cx)?;
                replay(
                    &self.ctx,
                    req_str(request, "network")?,
                    req_str(request, "storm")?,
                    opt_usize(request, "stride")?.unwrap_or(8),
                    weights,
                    &budget,
                    false,
                )
            }
            "sweep" => {
                let budget = self.budget_for(request, cx)?;
                sweep(
                    &self.ctx,
                    req_str(request, "network")?,
                    opt_field(request, "mode")
                        .map(|v| v.as_str().map(str::to_string))
                        .transpose()
                        .map_err(|_| CliError::Bad("field \"mode\" must be a string".into()))?
                        .as_deref()
                        .unwrap_or("n1"),
                    opt_usize(request, "samples")?.unwrap_or(64),
                    opt_u64(request, "seed")?.unwrap_or(crate::CLI_SEED),
                    weights,
                    &budget,
                    false,
                )
            }
            other => Err(CliError::Bad(format!(
                "unknown op {other:?} (expected ping, route, ratio, provision, \
                 replay, sweep, corpus, or shutdown)"
            ))),
        }
    }
}

impl QueryHandler for ServeHandler {
    fn handle(&self, request: &Request, cx: &QueryCx) -> Reply {
        match self.answer(request, cx) {
            Ok(output) => Reply::Ok { output },
            Err(CliError::Budget { report, stopped }) => Reply::Partial {
                output: report,
                stopped: stopped.to_string(),
            },
            Err(err) => Reply::Err {
                kind: error_kind(&err).to_string(),
                exit_code: i64::from(err.exit_code()),
                message: err.to_string(),
            },
        }
    }
}

#[cfg(unix)]
fn bind_unix_server(
    path: &str,
    handler: std::sync::Arc<dyn QueryHandler>,
    config: ServeConfig,
) -> Result<(Server, String), CliError> {
    let server = Server::bind_unix(path, handler, config)
        .map_err(|e| CliError::Io(format!("cannot bind {path}: {e}")))?;
    Ok((server, format!("unix:{path}")))
}

#[cfg(not(unix))]
fn bind_unix_server(
    path: &str,
    _handler: std::sync::Arc<dyn QueryHandler>,
    _config: ServeConfig,
) -> Result<(Server, String), CliError> {
    let _ = path;
    Err(CliError::Bad(
        "--unix is only available on Unix platforms".into(),
    ))
}

/// `riskroute serve [--listen A] [--unix P] [--max-inflight N] …`
///
/// Loads the engine once (the context moves into the handler), announces
/// the resolved endpoint on stdout, and runs the accept loop until a
/// protocol `shutdown` request drains it. A clean drain returns a summary;
/// a forced drain (in-flight work outlived both drain windows) surfaces as
/// [`CliError::Drain`] and exit code 10.
pub fn serve(
    ctx: CliContext,
    opts: ServeOptions,
    weights: RiskWeights,
) -> Result<String, CliError> {
    // The scrape endpoint must have live counters whether or not
    // --metrics-out asked for a file export.
    riskroute_obs::enable();
    let config = ServeConfig {
        max_connections: opts.max_connections,
        max_inflight: opts.max_inflight,
        frame_cap_bytes: opts.frame_cap_bytes,
        read_timeout_ms: opts.read_timeout_ms,
        write_timeout_ms: opts.write_timeout_ms,
        drain_ms: opts.drain_ms,
        ..ServeConfig::default()
    };
    let handler: std::sync::Arc<dyn QueryHandler> = std::sync::Arc::new(ServeHandler {
        ctx,
        weights,
        default_deadline_ms: opts.deadline_ms,
    });
    let (server, endpoint) = match &opts.unix {
        Some(path) => bind_unix_server(path, handler, config)?,
        None => {
            let server = Server::bind_tcp(&opts.listen, handler, config)
                .map_err(|e| CliError::Io(format!("cannot bind {}: {e}", opts.listen)))?;
            let endpoint = server
                .local_addr()
                .map_or_else(|| opts.listen.clone(), |a| a.to_string());
            (server, endpoint)
        }
    };
    // Announced and flushed before the accept loop blocks, so wrappers can
    // parse the resolved ephemeral port.
    println!("listening on {endpoint}");
    let _ = std::io::Write::flush(&mut std::io::stdout());
    let report = server.run();
    if report.forced {
        return Err(CliError::Drain(format!(
            "{} connection(s) still active at the end of the shed grace window \
             ({} connections, {} requests served before shutdown)",
            report.abandoned_connections, report.connections_total, report.requests_total
        )));
    }
    Ok(format!(
        "drained cleanly: {} connections, {} requests{}\n",
        report.connections_total,
        report.requests_total,
        if report.shed {
            " (in-flight work shed at the drain deadline)"
        } else {
            ""
        }
    ))
}

/// `riskroute critical <net>`
pub fn critical(ctx: &CliContext, network: &str) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let risk = NodeRisk::from_historical(net, &ctx.hazards);
    let ranking = criticality_ranking(net, &risk);
    let mut out = format!(
        "{}: PoPs by risk-weighted criticality (betweenness x historical risk)\n\n",
        net.name()
    );
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>10} {:>10}  SPOF",
        "PoP", "Betweenness", "Risk", "Exposure"
    );
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for c in ranking.iter().take(15) {
        let _ = writeln!(
            out,
            "{:<28} {:>12.1} {:>10.4} {:>10.2} {}",
            c.name,
            c.betweenness,
            c.historical_risk,
            c.exposure,
            if c.articulation { " YES" } else { "" }
        );
    }
    let spofs = ranking.iter().filter(|c| c.articulation).count();
    let _ = writeln!(
        out,
        "\n{} of {} PoPs are articulation points (structural single points of failure)",
        spofs,
        net.pop_count()
    );
    Ok(out)
}

/// `riskroute corridors <net>`
pub fn corridors(ctx: &CliContext, network: &str) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let risks = riskroute::corridor::corridor_risks(net, &ctx.hazards);
    let mut out = format!(
        "{}: link corridors by integrated risk (risk-miles = mean o_h x length)\n\n",
        net.name()
    );
    let _ = writeln!(
        out,
        "{:<44} {:>8} {:>10} {:>10} {:>11}",
        "Link", "Miles", "Mean risk", "Peak risk", "Risk-miles"
    );
    out.push_str(&"-".repeat(88));
    out.push('\n');
    for r in risks.iter().take(15) {
        let _ = writeln!(
            out,
            "{:<44} {:>8.0} {:>10.4} {:>10.4} {:>11.2}",
            format!(
                "{} <-> {}",
                net.pops()[r.endpoints.0].name,
                net.pops()[r.endpoints.1].name
            ),
            r.miles,
            r.mean_risk,
            r.peak_risk,
            r.risk_miles
        );
    }
    let mean_peak = risks.iter().map(|r| r.peak_risk).sum::<f64>() / risks.len().max(1) as f64;
    let groups = riskroute::corridor::shared_risk_link_groups(net, &ctx.hazards, mean_peak, 250.0);
    let _ = writeln!(
        out,
        "\nShared-risk link groups (peak > network mean {mean_peak:.3}, hot spots within 250 mi):"
    );
    for (i, g) in groups.iter().enumerate().take(6) {
        let names: Vec<String> = g
            .iter()
            .map(|&l| {
                let link = &net.links()[l];
                format!("{}<->{}", net.pops()[link.a].name, net.pops()[link.b].name)
            })
            .collect();
        let _ = writeln!(out, "  group {}: {}", i + 1, names.join(", "));
    }
    if groups.is_empty() {
        out.push_str("  (none above threshold)\n");
    }
    Ok(out)
}

/// `riskroute ospf <net>`
pub fn ospf(ctx: &CliContext, network: &str, weights: RiskWeights) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let planner = ctx.planner(net, weights);
    let beta = riskroute::ospf::mean_impact(&planner);
    let link_weights = riskroute::ospf::risk_aware_weights(net, &planner, beta);
    let eval = riskroute::ospf::evaluate_ospf(net, &planner, &link_weights);
    let exact = planner.ratio_report();
    let mut out = format!(
        "{}: risk-aware OSPF link weights (beta_ref = mean impact {:.4})\n\n",
        net.name(),
        beta
    );
    let _ = writeln!(out, "{:<44} {:>9} {:>12}", "Link", "Miles", "OSPF weight");
    out.push_str(&"-".repeat(68));
    out.push('\n');
    for (l, w) in net.links().iter().zip(&link_weights).take(20) {
        let _ = writeln!(
            out,
            "{:<44} {:>9.0} {:>12.0}",
            format!("{} <-> {}", net.pops()[l.a].name, net.pops()[l.b].name),
            l.miles,
            w
        );
    }
    if net.link_count() > 20 {
        let _ = writeln!(out, "… and {} more links", net.link_count() - 20);
    }
    let _ = writeln!(
        out,
        "\nfidelity vs exact RiskRoute: {:.1}% of paths identical; \
         mean excess bit-risk {:.2}%",
        100.0 * eval.path_fidelity,
        100.0 * eval.mean_excess_bit_risk
    );
    let captured = if exact.risk_reduction_ratio > 1e-9 {
        eval.report.risk_reduction_ratio / exact.risk_reduction_ratio
    } else {
        1.0
    };
    let _ = writeln!(
        out,
        "risk reduction captured: {:.0}% ({:.3} of {:.3})",
        100.0 * captured,
        eval.report.risk_reduction_ratio,
        exact.risk_reduction_ratio
    );
    Ok(out)
}

/// `riskroute failure <net> <storm>`
pub fn failure(ctx: &CliContext, network: &str, storm: &str) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let storm = resolve_storm(storm)?;
    let shares = PopShares::assign(&ctx.population, net, None);
    let swath = StormSwath::new(
        advisories_for(storm)
            .iter()
            .map(ForecastRisk::from_advisory)
            .collect(),
    );
    let report = storm_failure(net, &shares, &swath);
    let mut out = format!(
        "{} under Hurricane {}: failure injection (hurricane-force winds destroy PoPs)\n\n",
        net.name(),
        storm.name()
    );
    let _ = writeln!(
        out,
        "failed PoPs: {} of {}",
        report.failed_pops.len(),
        net.pop_count()
    );
    for &p in report.failed_pops.iter().take(12) {
        let _ = writeln!(out, "  - {}", net.pops()[p].name);
    }
    if report.failed_pops.len() > 12 {
        let _ = writeln!(out, "  … and {} more", report.failed_pops.len() - 12);
    }
    let _ = writeln!(out, "links lost: {}", report.lost_links);
    let _ = writeln!(out, "surviving components: {}", report.survivor_components);
    let _ = writeln!(
        out,
        "disconnected survivor pairs: {}",
        report.disconnected_pairs
    );
    let _ = writeln!(
        out,
        "population share affected: {:.1}% ({:.1}% on failed PoPs, {:.1}% isolated)",
        100.0 * report.total_affected_share(),
        100.0 * report.failed_population_share,
        100.0 * report.isolated_population_share
    );
    Ok(out)
}

/// `riskroute export <net> [--format json|graphml] [--out <path>]`
///
/// With `--out`, the export goes through the same atomic temp-file + rename
/// as checkpoint snapshots: a kill mid-write leaves the previous file (or
/// nothing), never a truncated export.
pub fn export(
    ctx: &CliContext,
    network: &str,
    format: &str,
    out: Option<&str>,
) -> Result<String, CliError> {
    let net = ctx.network(network)?;
    let payload = match format {
        "json" => riskroute_json::to_string_pretty(net),
        "graphml" => riskroute_topology::import::network_to_graphml(net),
        other => return Err(CliError::Bad(format!("unknown export format {other:?}"))),
    };
    match out {
        None => Ok(payload),
        Some(path) => {
            checkpoint::write_atomic(path, &payload)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            Ok(format!(
                "wrote {path} ({} bytes, {format}; atomic temp-file + rename)\n",
                payload.len()
            ))
        }
    }
}

/// `riskroute synth <n> [--seed S] [--out <path>]`
///
/// Generates a deterministic synthetic continental network (population-
/// weighted placement around the real gazetteer) and prints a summary;
/// `--out` additionally writes the network as GraphML through the atomic
/// temp-file + rename path, ready for `--graphml <path> --name <name>`.
pub fn synth(n: usize, seed: u64, out: Option<&str>) -> Result<String, CliError> {
    let net = riskroute_topology::scale::synth_network(n, seed).map_err(riskroute::Error::from)?;
    if riskroute_obs::is_enabled() {
        riskroute_obs::counter_add("synth_pops_generated", net.pop_count() as u64);
    }
    let mut summary = format!(
        "{}: {} PoPs, {} links, {:.0} footprint miles (seed {seed})\n",
        net.name(),
        net.pop_count(),
        net.link_count(),
        net.footprint_miles()
    );
    if let Some(path) = out {
        let payload = riskroute_topology::import::network_to_graphml(&net);
        checkpoint::write_atomic(path, &payload)
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(
            summary,
            "wrote {path} ({} bytes, graphml; atomic temp-file + rename); \
             query it with --graphml {path} --name {}",
            payload.len(),
            net.name()
        );
    }
    Ok(summary)
}

/// `riskroute chaos [--plans N] [--seed S]`
///
/// Runs `plans` deterministic fault plans (seeds `seed..seed+plans`) through
/// the full pipeline and prints one degradation summary per plan. Any
/// violated invariant — a panic would never get here — turns into
/// [`CliError::Chaos`] and exit code 8.
pub fn chaos(plans: usize, seed: u64) -> Result<String, CliError> {
    let reports = riskroute::chaos::run_chaos_suite(seed, plans)?;
    let mut out = format!(
        "chaos harness: {plans} fault plans, base seed {seed} \
         (faults: dropped links, garbled advisories, deleted hazard events,\n\
         zeroed population shares, poisoned entry costs)\n\n"
    );
    let mut all_violations = Vec::new();
    for report in &reports {
        let _ = writeln!(out, "{}", report.summary_line());
        let fired = report.fired_faults();
        let _ = writeln!(
            out,
            "  fired: {}",
            if fired.is_empty() {
                "none".to_string()
            } else {
                fired.join(", ")
            }
        );
        for v in riskroute::chaos::violations(report) {
            all_violations.push(format!("seed {}: {v}", report.seed));
        }
    }
    if !all_violations.is_empty() {
        return Err(CliError::Chaos(all_violations));
    }
    let degraded: usize = reports.iter().map(|r| r.degraded_ticks).sum();
    let stranded: usize = reports.iter().map(|r| r.stranded_pairs).sum();
    let _ = writeln!(
        out,
        "\n{} plans completed: no panics, every ratio finite, degradation \
         accounted for ({degraded} degraded ticks, {stranded} stranded pairs)",
        reports.len()
    );
    Ok(out)
}

/// `riskroute obs-summary <trace.jsonl>`
///
/// Reads a `--trace-out` JSONL file and prints a per-span latency table
/// (count, total, p50, p99, p999) sorted by total time, a per-trace
/// attribution table when the trace carries request scopes, and a warning
/// when the capture ring buffer dropped span events.
pub fn obs_summary(path: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read trace {path}: {e}")))?;
    let lines = riskroute_obs::export::parse_jsonl(&text)
        .map_err(|e| CliError::Core(riskroute::Error::Json(e)))?;
    let dropped: u64 = lines
        .iter()
        .map(|l| match l {
            riskroute_obs::export::ObsLine::Meta { dropped_events } => *dropped_events,
            _ => 0,
        })
        .sum();
    let warning = if dropped > 0 {
        format!(
            "warning: {dropped} span events were dropped at capture (ring \
             buffer full) — span totals undercount\n"
        )
    } else {
        String::new()
    };
    let rows = riskroute_obs::summary::summarize_lines(&lines);
    if rows.is_empty() {
        return Ok(format!(
            "{warning}{path}: no span events (was the run traced with --trace-out?)\n"
        ));
    }
    let mut out = warning;
    let _ = write!(out, "{path}: spans by total time\n\n");
    out.push_str(&riskroute_obs::summary::render_table(&rows));
    let traces = riskroute_obs::summary::summarize_traces(&lines);
    if !traces.is_empty() {
        out.push_str("\nper-trace attribution\n\n");
        out.push_str(&riskroute_obs::summary::render_trace_table(&traces));
    }
    Ok(out)
}

/// `riskroute obs trace <trace.jsonl> [--out <path>]`
///
/// Converts a `--trace-out` JSONL file to Chrome trace-event JSON (load it
/// in `chrome://tracing` or Perfetto). The output is written atomically.
pub fn obs_trace(path: &str, out: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read trace {path}: {e}")))?;
    let lines = riskroute_obs::export::parse_jsonl(&text)
        .map_err(|e| CliError::Core(riskroute::Error::Json(e)))?;
    let snap = riskroute_obs::export::snapshot_from_lines(&lines);
    let rendered = riskroute_obs::export::to_chrome_trace(&snap);
    riskroute_obs::export::write_atomic(out, &rendered)
        .map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;
    Ok(format!(
        "{out}: {} span events across {} traces (open in chrome://tracing)\n",
        snap.spans.len(),
        snap.traces.len(),
    ))
}

/// `riskroute obs lint <metrics.prom>`
///
/// Parses every line of a Prometheus text-exposition file, rejecting
/// malformed metric names, labels, values, and histogram `_bucket` series
/// that are missing `+Inf`, non-cumulative, or inconsistent with `_count`.
pub fn obs_lint(path: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read exposition {path}: {e}")))?;
    let samples = riskroute_obs::export::lint_prometheus(&text).map_err(|e| {
        CliError::Core(riskroute::Error::Json(riskroute_json::JsonError::Shape(
            format!("{path}: {e}"),
        )))
    })?;
    Ok(format!("{path}: {samples} samples, exposition format ok\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CliContext {
        CliContext::build(&[]).unwrap()
    }

    #[test]
    fn corpus_lists_everything() {
        let out = corpus(&ctx());
        assert!(out.contains("Level3"));
        assert!(out.contains("Telepak"));
        assert!(out.contains("tier-1"));
        assert!(out.contains("regional"));
    }

    #[test]
    fn route_compares_both_paths() {
        let out = route(
            &ctx(),
            "Sprint",
            "0",
            "5",
            RiskWeights::historical_only(1e5),
        )
        .unwrap();
        assert!(out.contains("shortest path"));
        assert!(out.contains("RiskRoute"));
        assert!(out.contains("risk reduction"));
    }

    #[test]
    fn route_rejects_unknown_network() {
        let err = route(&ctx(), "Nope", "0", "1", RiskWeights::PAPER).unwrap_err();
        assert!(matches!(err, CliError::Unknown(_)));
        assert!(err.to_string().contains("unknown network"));
    }

    #[test]
    fn chaos_command_summarizes_plans_and_reports_fired_faults() {
        let out = chaos(2, 0).unwrap();
        assert!(out.contains("chaos harness: 2 fault plans"));
        assert!(out.contains("seed "));
        assert!(out.contains("2 plans completed: no panics"));
        // Every plan line is followed by the list of faults that actually
        // landed (not just pass/fail).
        assert_eq!(out.matches("  fired: ").count(), 2, "{out}");
    }

    #[test]
    fn obs_summary_renders_a_latency_table() {
        let dir = tmp_dir("riskroute-cli-obs-summary");
        let path = dir.join("trace.jsonl");
        let path_s = path.display().to_string();
        // A trace with two spans of one name and one of another.
        std::fs::write(
            &path,
            "{\"type\":\"span\",\"name\":\"replay_tick\",\"depth\":0,\
             \"start_us\":0,\"dur_us\":100,\"fields\":[]}\n\
             {\"type\":\"span\",\"name\":\"replay_tick\",\"depth\":0,\
             \"start_us\":200,\"dur_us\":300,\"fields\":[]}\n\
             {\"type\":\"span\",\"name\":\"checkpoint_write\",\"depth\":1,\
             \"start_us\":50,\"dur_us\":10,\"fields\":[]}\n",
        )
        .unwrap();
        let out = obs_summary(&path_s).unwrap();
        assert!(out.contains("span"), "{out}");
        assert!(out.contains("count"), "{out}");
        assert!(out.contains("p50_us"), "{out}");
        assert!(out.contains("p99_us"), "{out}");
        assert!(out.contains("replay_tick"), "{out}");
        assert!(out.contains("checkpoint_write"), "{out}");
        // replay_tick has more total time, so it sorts first.
        assert!(
            out.find("replay_tick").unwrap() < out.find("checkpoint_write").unwrap(),
            "{out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_summary_error_families() {
        let missing = obs_summary("/no/such/trace.jsonl").unwrap_err();
        assert!(matches!(missing, CliError::Io(_)));
        assert_eq!(missing.exit_code(), 4);
        let dir = tmp_dir("riskroute-cli-obs-garbage");
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "not json at all\n").unwrap();
        let err = obs_summary(&path.display().to_string()).unwrap_err();
        assert!(matches!(
            err,
            CliError::Core(riskroute::Error::Json(_))
        ));
        assert_eq!(err.exit_code(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_summary_empty_trace_is_a_notice_not_an_error() {
        let dir = tmp_dir("riskroute-cli-obs-empty");
        let path = dir.join("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        let out = obs_summary(&path.display().to_string()).unwrap();
        assert!(out.contains("no span events"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_summary_warns_on_drops_and_attributes_traces() {
        let dir = tmp_dir("riskroute-cli-obs-drops");
        let path = dir.join("trace.jsonl");
        std::fs::write(
            &path,
            "{\"type\":\"meta\",\"dropped_events\":3}\n\
             {\"type\":\"span\",\"name\":\"replay_tick\",\"id\":2,\"parent\":0,\
             \"trace\":1,\"thread\":1,\"depth\":0,\"start_us\":0,\"dur_us\":100,\
             \"fields\":[]}\n\
             {\"type\":\"trace\",\"id\":1,\"label\":\"replay\",\
             \"counters\":[[\"risk_sssp_runs\",7]]}\n",
        )
        .unwrap();
        let out = obs_summary(&path.display().to_string()).unwrap();
        assert!(out.contains("warning: 3 span events were dropped"), "{out}");
        assert!(out.contains("per-trace attribution"), "{out}");
        assert!(out.contains("replay"), "{out}");
        assert!(out.contains("risk_sssp_runs"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_trace_converts_to_chrome_trace_events() {
        let dir = tmp_dir("riskroute-cli-obs-trace");
        let src = dir.join("trace.jsonl");
        std::fs::write(
            &src,
            "{\"type\":\"span\",\"name\":\"sssp\",\"id\":2,\"parent\":0,\
             \"trace\":1,\"thread\":1,\"depth\":0,\"start_us\":5,\"dur_us\":40,\
             \"fields\":[]}\n\
             {\"type\":\"trace\",\"id\":1,\"label\":\"route\",\"counters\":[]}\n",
        )
        .unwrap();
        let out = dir.join("trace.json");
        let out_s = out.display().to_string();
        let msg = obs_trace(&src.display().to_string(), &out_s).unwrap();
        assert!(msg.contains("1 span events across 1 traces"), "{msg}");
        let body = std::fs::read_to_string(&out).unwrap();
        let doc = riskroute_json::parse(&body).unwrap();
        let events = doc.field("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2, "{body}"); // process_name meta + span
        let missing = obs_trace("/no/such/trace.jsonl", &out_s).unwrap_err();
        assert_eq!(missing.exit_code(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_lint_accepts_good_and_rejects_bad_expositions() {
        let dir = tmp_dir("riskroute-cli-obs-lint");
        let good = dir.join("good.prom");
        std::fs::write(
            &good,
            "# TYPE riskroute_pops counter\nriskroute_pops 5\n",
        )
        .unwrap();
        let out = obs_lint(&good.display().to_string()).unwrap();
        assert!(out.contains("1 samples, exposition format ok"), "{out}");
        // A bucket series with no +Inf bound is malformed.
        let bad = dir.join("bad.prom");
        std::fs::write(
            &bad,
            "riskroute_h_bucket{le=\"1\"} 2\nriskroute_h_count 2\n",
        )
        .unwrap();
        let err = obs_lint(&bad.display().to_string()).unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err:?}");
        assert!(err.to_string().contains("+Inf"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backup_lists_ranked_paths() {
        let out = backup(
            &ctx(),
            "Sprint",
            "0",
            "5",
            3,
            RiskWeights::historical_only(1e5),
        )
        .unwrap();
        assert!(out.contains("primary"));
    }

    #[test]
    fn provision_reports_links_or_absence() {
        let out = provision(
            &ctx(),
            "Sprint",
            2,
            RiskWeights::historical_only(1e5),
            &BudgetArgs::default(),
            false,
        )
        .unwrap();
        assert!(out.contains("best additional links"));
    }

    #[test]
    fn replay_renders_ticks() {
        let out = replay(
            &ctx(),
            "Telepak",
            "katrina",
            20,
            RiskWeights::PAPER,
            &BudgetArgs::default(),
            false,
        )
        .unwrap();
        assert!(out.contains("KATRINA"));
        assert!(out.contains("rr "));
        assert!(out.contains("peak risk-reduction"));
    }

    #[test]
    fn replay_stream_emits_one_ndjson_tick_per_advisory() {
        use riskroute_json::Json;
        let ctx = ctx();
        let net = ctx.network("Telepak").unwrap();
        let planner = ctx.planner(net, RiskWeights::PAPER);
        let locations: Vec<_> = net.pops().iter().map(|p| p.location).collect();
        let raws = raw_advisories(Storm::Katrina, 20).unwrap();
        assert!(raws.len() >= 2, "need at least two advisories");
        let mut input = String::new();
        for raw in &raws {
            let obj = Json::obj([
                ("number", Json::Num(raw.number as f64)),
                ("label", Json::Str(raw.label.clone())),
                ("text", Json::Str(raw.text.clone())),
            ]);
            input.push_str(&obj.to_string_compact());
            input.push('\n');
        }
        // A blank line anywhere in the stream is skipped, not an error.
        input.push('\n');
        let out = replay_stream_from(&planner, &locations, input.as_bytes()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), raws.len() + 1, "{out}");
        for (raw, line) in raws.iter().zip(&lines) {
            let doc = riskroute_json::parse(line).unwrap();
            assert_eq!(doc.field("advisory").unwrap().as_usize().unwrap(), raw.number);
            assert_eq!(doc.field("label").unwrap().as_str().unwrap(), raw.label);
            assert!(doc.field("risk_reduction_ratio").unwrap().as_f64().is_ok());
            assert!(!doc.field("degraded").unwrap().as_bool().unwrap());
        }
        let summary = riskroute_json::parse(lines[lines.len() - 1]).unwrap();
        assert!(summary.field("summary").unwrap().as_bool().unwrap());
        assert_eq!(
            summary.field("ticks").unwrap().as_usize().unwrap(),
            raws.len()
        );
        assert_eq!(summary.field("degraded_ticks").unwrap().as_usize().unwrap(), 0);
        // The streamed ratios are bit-identical to the recorded replay at the
        // same stride: the warm engine's delta repairs change nothing.
        let recorded = replay(
            &ctx,
            "Telepak",
            "katrina",
            20,
            RiskWeights::PAPER,
            &BudgetArgs::default(),
            false,
        )
        .unwrap();
        let first = riskroute_json::parse(lines[0]).unwrap();
        let rr = first
            .field("risk_reduction_ratio")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(
            recorded.contains(&format!("rr {rr:>6.3}")),
            "streamed rr {rr} missing from recorded report:\n{recorded}"
        );
    }

    #[test]
    fn replay_stream_rejects_malformed_lines_with_line_numbers() {
        let ctx = ctx();
        let net = ctx.network("Telepak").unwrap();
        let planner = ctx.planner(net, RiskWeights::PAPER);
        let locations: Vec<_> = net.pops().iter().map(|p| p.location).collect();
        let err =
            replay_stream_from(&planner, &locations, "{\"number\":1}\n".as_bytes()).unwrap_err();
        let CliError::Bad(msg) = err else {
            panic!("expected usage error, got {err:?}");
        };
        assert!(msg.contains("stdin line 1"), "{msg}");
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn provision_budget_exhaustion_checkpoints_and_resumes() {
        let dir = tmp_dir("riskroute-cli-prov-resume");
        let path = dir.join("snap.txt");
        let path_s = path.display().to_string();
        let ctx = ctx();
        let weights = RiskWeights::historical_only(1e5);
        let budget = BudgetArgs {
            max_work: Some(0),
            checkpoint: Some(path_s.clone()),
            ..BudgetArgs::default()
        };
        let err = provision(&ctx, "Sprint", 2, weights, &budget, false).unwrap_err();
        assert_eq!(err.exit_code(), 9);
        let CliError::Budget { report, .. } = &err else {
            panic!("expected budget exhaustion, got {err:?}");
        };
        assert!(report.contains("budget exhausted"));
        assert!(report.contains("riskroute resume"));
        // The snapshot on disk validates and resumes to the exact
        // uninterrupted result.
        let text = std::fs::read_to_string(&path).unwrap();
        riskroute::checkpoint::load_snapshot(&text).unwrap();
        let resumed = resume(&ctx, &path_s, &BudgetArgs::default(), false).unwrap();
        let direct = provision(&ctx, "Sprint", 2, weights, &BudgetArgs::default(), false).unwrap();
        assert!(resumed.starts_with("resuming from "), "{resumed}");
        assert!(
            resumed.ends_with(&direct),
            "resumed:\n{resumed}\ndirect:\n{direct}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_budget_partial_resumes_bit_identically() {
        let dir = tmp_dir("riskroute-cli-replay-resume");
        let path = dir.join("snap.txt");
        let path_s = path.display().to_string();
        let ctx = ctx();
        let budget = BudgetArgs {
            max_work: Some(1),
            checkpoint: Some(path_s.clone()),
            ..BudgetArgs::default()
        };
        let err = replay(&ctx, "Telepak", "katrina", 20, RiskWeights::PAPER, &budget, false).unwrap_err();
        assert_eq!(err.exit_code(), 9);
        let resumed = resume(&ctx, &path_s, &BudgetArgs::default(), false).unwrap();
        let direct = replay(
            &ctx,
            "Telepak",
            "katrina",
            20,
            RiskWeights::PAPER,
            &BudgetArgs::default(),
            false,
        )
        .unwrap();
        assert!(resumed.starts_with("resuming from "), "{resumed}");
        assert!(
            resumed.ends_with(&direct),
            "resumed:\n{resumed}\ndirect:\n{direct}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_renders_a_ranked_criticality_report() {
        let out = sweep(
            &ctx(),
            "Telepak",
            "n1",
            0,
            0,
            RiskWeights::historical_only(1e5),
            &BudgetArgs::default(),
            false,
        )
        .unwrap();
        assert!(out.contains("full N-1 resilience sweep"), "{out}");
        assert!(out.contains("baseline:"), "{out}");
        assert!(out.contains("criticality ranking"), "{out}");
        assert!(out.contains("d stranded"), "{out}");
    }

    #[test]
    fn sweep_ensemble_reports_risk_bands() {
        let out = sweep(
            &ctx(),
            "Telepak",
            "ensemble",
            4,
            7,
            RiskWeights::PAPER,
            &BudgetArgs::default(),
            false,
        )
        .unwrap();
        assert!(out.contains("hazard ensemble (4 members, seed 7)"), "{out}");
        assert!(out.contains("ensemble bit-risk bands: p5"), "{out}");
    }

    #[test]
    fn sweep_n2_lists_worst_fork_per_element() {
        let out = sweep(
            &ctx(),
            "Telepak",
            "n2",
            6,
            42,
            RiskWeights::historical_only(1e5),
            &BudgetArgs::default(),
            false,
        )
        .unwrap();
        assert!(out.contains("sampled N-2 (6 draws, seed 42)"), "{out}");
        assert!(out.contains("worst-case fork per element:"), "{out}");
    }

    #[test]
    fn sweep_rejects_unknown_mode() {
        let err = sweep(
            &ctx(),
            "Telepak",
            "n3",
            0,
            0,
            RiskWeights::PAPER,
            &BudgetArgs::default(),
            false,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Bad(_)));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn sweep_budget_exhaustion_checkpoints_and_resumes() {
        let dir = tmp_dir("riskroute-cli-sweep-resume");
        let path = dir.join("snap.txt");
        let path_s = path.display().to_string();
        let ctx = ctx();
        let weights = RiskWeights::historical_only(1e5);
        let budget = BudgetArgs {
            max_work: Some(3),
            checkpoint: Some(path_s.clone()),
            ..BudgetArgs::default()
        };
        let err = sweep(&ctx, "Telepak", "n1", 0, 0, weights, &budget, false).unwrap_err();
        assert_eq!(err.exit_code(), 9);
        let CliError::Budget { report, .. } = &err else {
            panic!("expected budget exhaustion, got {err:?}");
        };
        assert!(report.contains("scenarios evaluated"));
        assert!(report.contains("riskroute resume"));
        let text = std::fs::read_to_string(&path).unwrap();
        riskroute::checkpoint::load_snapshot(&text).unwrap();
        let resumed = resume(&ctx, &path_s, &BudgetArgs::default(), false).unwrap();
        let direct = sweep(
            &ctx,
            "Telepak",
            "n1",
            0,
            0,
            weights,
            &BudgetArgs::default(),
            false,
        )
        .unwrap();
        assert!(resumed.starts_with("resuming from "), "{resumed}");
        assert!(
            resumed.ends_with(&direct),
            "resumed:\n{resumed}\ndirect:\n{direct}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_progress_falls_back_to_a_fresh_run() {
        let dir = tmp_dir("riskroute-cli-resume-fallback");
        let path = dir.join("snap.txt");
        let path_s = path.display().to_string();
        let ctx = ctx();
        let budget = BudgetArgs {
            max_work: Some(1),
            checkpoint: Some(path_s.clone()),
            ..BudgetArgs::default()
        };
        let _ = replay(&ctx, "Telepak", "katrina", 20, RiskWeights::PAPER, &budget, false).unwrap_err();
        // Truncate everything past the job line (the common shape of
        // disk-level damage: files lose their tails).
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.find("\nprogress ").unwrap() + 1;
        std::fs::write(&path, &text[..cut]).unwrap();
        let out = resume(&ctx, &path_s, &BudgetArgs::default(), false).unwrap();
        assert!(out.starts_with("degraded mode:"), "{out}");
        let direct = replay(
            &ctx,
            "Telepak",
            "katrina",
            20,
            RiskWeights::PAPER,
            &BudgetArgs::default(),
            false,
        )
        .unwrap();
        assert!(out.ends_with(&direct), "out:\n{out}\ndirect:\n{direct}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_snapshots_are_typed_errors() {
        let dir = tmp_dir("riskroute-cli-resume-garbage");
        let path = dir.join("snap.txt");
        std::fs::write(&path, "not a snapshot\n").unwrap();
        let ctx = ctx();
        let err =
            resume(&ctx, &path.display().to_string(), &BudgetArgs::default(), false).unwrap_err();
        assert!(matches!(
            err,
            CliError::Core(riskroute::Error::SnapshotIntegrity { .. })
        ));
        assert_eq!(err.exit_code(), 5);
        let missing =
            resume(&ctx, "/no/such/snapshot.txt", &BudgetArgs::default(), false).unwrap_err();
        assert!(matches!(missing, CliError::Io(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_out_writes_atomically() {
        let dir = tmp_dir("riskroute-cli-export-out");
        let path = dir.join("ntt.json");
        let path_s = path.display().to_string();
        let out = export(&ctx(), "NTT", "json", Some(&path_s)).unwrap();
        assert!(out.contains("wrote"), "{out}");
        let back: Network =
            riskroute_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.name(), "NTT");
        // No temp droppings from the atomic write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ratio_reports_network_wide_ratios() {
        let out = ratio(&ctx(), "Sprint", RiskWeights::historical_only(1e5), None, 42).unwrap();
        assert!(out.contains("risk reduction ratio (Eq. 5)"), "{out}");
        assert!(out.contains("distance increase ratio (Eq. 6)"), "{out}");
        assert!(out.contains("ordered PoP pairs"), "{out}");
    }

    #[test]
    fn ratio_sampled_mode_reports_sample_size_and_seed() {
        let out = ratio(
            &ctx(),
            "Sprint",
            RiskWeights::historical_only(1e5),
            Some(16),
            7,
        )
        .unwrap();
        assert!(out.contains("16 sampled PoP pairs"), "{out}");
        assert!(out.contains("seed 7"), "{out}");
        assert!(out.contains("risk reduction ratio (Eq. 5)"), "{out}");
    }

    #[test]
    fn sampled_pairs_are_deterministic_and_never_self_pairs() {
        let a = sampled_pairs(50, 200, 9);
        let b = sampled_pairs(50, 200, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(i, j)| i != j && i < 50 && j < 50));
        let c = sampled_pairs(50, 200, 10);
        assert_ne!(a, c, "different seeds draw different pairs");
    }

    #[test]
    fn synth_summary_and_graphml_round_trip() {
        let out = synth(300, 42, None).unwrap();
        assert!(out.contains("300 PoPs"), "{out}");
        assert!(out.contains("seed 42"), "{out}");
        let dir = std::env::temp_dir().join("riskroute-cli-synth");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("synth.graphml");
        let _ = synth(300, 42, Some(&path.display().to_string())).unwrap();
        let xml = std::fs::read_to_string(&path).unwrap();
        let net = riskroute_topology::import::network_from_graphml(
            &xml,
            "synth-300",
            NetworkKind::Regional,
        )
        .unwrap();
        assert_eq!(net.pop_count(), 300);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn critical_flags_spofs() {
        let out = critical(&ctx(), "Deutsche Telekom").unwrap();
        assert!(out.contains("criticality"));
        assert!(out.contains("articulation points"));
    }

    #[test]
    fn ospf_reports_weights_and_fidelity() {
        let out = ospf(&ctx(), "Sprint", RiskWeights::historical_only(1e5)).unwrap();
        assert!(out.contains("OSPF weight"));
        assert!(out.contains("risk reduction captured"));
    }

    #[test]
    fn corridors_ranks_links() {
        let out = corridors(&ctx(), "Telepak").unwrap();
        assert!(out.contains("Risk-miles"));
        assert!(out.contains("Shared-risk link groups"));
    }

    #[test]
    fn failure_reports_damage() {
        let out = failure(&ctx(), "Telepak", "katrina").unwrap();
        assert!(out.contains("failed PoPs"));
        assert!(out.contains("population share affected"));
    }

    #[test]
    fn export_round_trips_through_json() {
        let json = export(&ctx(), "NTT", "json", None).unwrap();
        let back: Network = riskroute_json::from_str(&json).unwrap();
        assert_eq!(back.name(), "NTT");
        assert_eq!(back.pop_count(), 12);
    }

    #[test]
    fn export_graphml_re_imports() {
        let xml = export(&ctx(), "NTT", "graphml", None).unwrap();
        let back = riskroute_topology::import::network_from_graphml(
            &xml,
            "NTT",
            riskroute_topology::NetworkKind::Tier1,
        )
        .unwrap();
        assert_eq!(back.pop_count(), 12);
        assert!(export(&ctx(), "NTT", "yaml", None).is_err());
    }
}
