//! Natural-disaster event corpora and historical outage risk for the
//! RiskRoute reproduction.
//!
//! Section 4.3 of the paper assembles 1970–2010 disaster records: FEMA
//! emergency declarations (2,805 hurricane, 6,437 tornado, 20,623 severe
//! storm) and NOAA events (2,267 earthquake, 143,847 damaging wind). §5.2
//! turns each corpus into a geo-spatial outage likelihood via Gaussian KDE
//! with 5-way cross-validated bandwidths (Table 1), and aggregates the five
//! likelihoods into a single historical risk `o_h(i)` per PoP.
//!
//! The federal archives are not redistributable, so [`events`] synthesizes
//! each corpus from a seeded mixture model matching the documented geography
//! (hurricanes → Gulf/Atlantic coasts, tornadoes → Tornado Alley, storms →
//! central plains, earthquakes → the Pacific seismic belt, wind → broad
//! eastern CONUS) with the paper's exact event counts.
//!
//! - [`events`] — event kinds, paper counts, and the seeded samplers.
//! - [`training`] — the Table-1 bandwidth training pipeline.
//! - [`surface`] — per-kind risk surfaces and the aggregate historical risk.
//! - [`seasonal`] — month-conditioned risk (the seasonal-correlation
//!   extension §5.2 defers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod events;
pub mod seasonal;
pub mod surface;
pub mod training;

pub use events::{
    sample_ensemble, sample_member_events, DisasterEvent, EventKind, ALL_EVENT_KINDS,
};
pub use seasonal::{seasonal_weight, SeasonalRisk};
pub use surface::{HistoricalRisk, RiskSurface};
pub use training::{train_bandwidth, TrainedBandwidth};
