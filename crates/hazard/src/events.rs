//! Disaster event kinds, paper counts, and seeded mixture samplers.

use riskroute_rng::StdRng;
use riskroute_geo::bbox::CONUS;
use riskroute_geo::distance::destination;
use riskroute_geo::GeoPoint;
use riskroute_stats::rng::derive_seed;
use std::fmt;

/// The five disaster corpora of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// FEMA hurricane emergency declarations.
    FemaHurricane,
    /// FEMA tornado emergency declarations.
    FemaTornado,
    /// FEMA severe-storm emergency declarations.
    FemaStorm,
    /// NOAA recorded earthquake events.
    NoaaEarthquake,
    /// NOAA recorded damaging-wind events.
    NoaaWind,
}

/// All five kinds, in Table-1 order.
pub const ALL_EVENT_KINDS: &[EventKind] = &[
    EventKind::FemaHurricane,
    EventKind::FemaTornado,
    EventKind::FemaStorm,
    EventKind::NoaaEarthquake,
    EventKind::NoaaWind,
];

impl EventKind {
    /// The 1970–2010 event count reported in §4.3 / Table 1.
    pub fn paper_count(self) -> usize {
        match self {
            EventKind::FemaHurricane => 2_805,
            EventKind::FemaTornado => 6_437,
            EventKind::FemaStorm => 20_623,
            EventKind::NoaaEarthquake => 2_267,
            EventKind::NoaaWind => 143_847,
        }
    }

    /// Table-1 row label.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::FemaHurricane => "FEMA Hurricane",
            EventKind::FemaTornado => "FEMA Tornado",
            EventKind::FemaStorm => "FEMA Storm",
            EventKind::NoaaEarthquake => "NOAA Earthquake",
            EventKind::NoaaWind => "NOAA Wind",
        }
    }

    /// The paper's trained kernel bandwidth for this corpus (Table 1),
    /// in miles. Used as the default when skipping the (expensive) CV
    /// training; [`crate::training::train_bandwidth`] recomputes it from the
    /// synthetic corpus.
    pub fn paper_bandwidth_miles(self) -> f64 {
        match self {
            EventKind::FemaHurricane => 71.56,
            EventKind::FemaTornado => 59.48,
            EventKind::FemaStorm => 24.38,
            EventKind::NoaaEarthquake => 298.82,
            EventKind::NoaaWind => 3.59,
        }
    }

    /// Damage radius of one event of this kind, in miles: infrastructure
    /// within this distance of the event is threatened. Hurricanes and
    /// major earthquakes damage across ~100-mile swaths; severe storms and
    /// tornado outbreaks act at county scale; an individual damaging-wind
    /// report is local.
    pub fn damage_radius_miles(self) -> f64 {
        match self {
            EventKind::FemaHurricane => 300.0,
            EventKind::FemaTornado => 90.0,
            EventKind::FemaStorm => 150.0,
            EventKind::NoaaEarthquake => 300.0,
            EventKind::NoaaWind => 30.0,
        }
    }

    /// Number of distinct recording *sites* for this kind.
    ///
    /// FEMA declarations are specified at county level (§4.3), so repeated
    /// declarations stack at a finite set of county centroids; NOAA wind
    /// reports are dense point events at damage sites. The site pool is what
    /// gives each corpus its granularity — and granularity (together with
    /// event count) is what drives the Table-1 bandwidth ordering.
    fn site_count(self) -> usize {
        match self {
            EventKind::FemaHurricane => 600,    // coastal counties
            EventKind::FemaTornado => 1_200,    // alley + Dixie counties
            EventKind::FemaStorm => 1_800,      // most counties east of the Rockies
            EventKind::NoaaEarthquake => 2_000, // nearly one site per event
            EventKind::NoaaWind => 2_500,       // dense damage-report sites
        }
    }

    /// Within-site scatter in miles (county extent / geocoding noise).
    ///
    /// Calibrated so the full-corpus CV of [`crate::training::train_all`]
    /// lands near the paper's Table-1 bandwidths (trained bandwidth tracks
    /// the within-site scatter for the high-repetition FEMA corpora).
    fn site_jitter_miles(self) -> f64 {
        match self {
            EventKind::FemaHurricane => 115.0,
            EventKind::FemaTornado => 70.0,
            EventKind::FemaStorm => 25.0,
            EventKind::NoaaEarthquake => 160.0,
            EventKind::NoaaWind => 6.0,
        }
    }

    /// The geographic mixture model for this kind:
    /// `(lat, lon, sigma_miles, weight)` clusters.
    fn clusters(self) -> &'static [(f64, f64, f64, f64)] {
        match self {
            // Gulf coast dominant, Atlantic coast secondary (§5.2: "hurricanes
            // are more prevalent along the Gulf Coast region").
            EventKind::FemaHurricane => &[
                (27.8, -97.4, 90.0, 1.2),  // south Texas coast
                (29.5, -94.5, 90.0, 1.6),  // Houston/Galveston
                (29.9, -91.5, 90.0, 1.8),  // Louisiana
                (30.4, -88.6, 90.0, 1.6),  // MS/AL coast
                (30.2, -85.7, 90.0, 1.3),  // Florida panhandle
                (27.0, -81.5, 110.0, 1.5), // Florida peninsula
                (25.9, -80.3, 70.0, 1.0),  // Miami
                (32.5, -80.5, 90.0, 0.8),  // SC/GA coast
                (35.0, -77.0, 90.0, 0.9),  // NC coast
                (37.5, -76.0, 90.0, 0.5),  // Chesapeake
                (40.5, -73.5, 110.0, 0.4), // NY/NJ (rare but real)
            ],
            // Tornado Alley plus Dixie Alley.
            EventKind::FemaTornado => &[
                (35.4, -97.5, 130.0, 1.8), // central Oklahoma
                (37.6, -97.3, 130.0, 1.5), // Kansas
                (33.8, -98.5, 130.0, 1.2), // north Texas
                (40.8, -96.7, 140.0, 1.0), // Nebraska
                (41.6, -93.6, 140.0, 0.9), // Iowa
                (38.5, -92.5, 140.0, 1.0), // Missouri
                (34.7, -92.3, 130.0, 0.9), // Arkansas
                (33.5, -87.0, 130.0, 1.1), // Alabama (Dixie Alley)
                (34.8, -89.5, 130.0, 1.0), // north Mississippi / Memphis
                (39.8, -89.6, 150.0, 0.7), // Illinois
            ],
            // Severe storms: "prevalent in the central plain states", with a
            // broad eastern tail.
            EventKind::FemaStorm => &[
                (38.5, -97.0, 220.0, 1.8), // Kansas core
                (41.0, -95.0, 220.0, 1.6), // NE/IA
                (36.0, -96.0, 200.0, 1.5), // Oklahoma
                (39.0, -90.5, 220.0, 1.4), // Missouri/Illinois
                (43.5, -93.0, 220.0, 1.1), // Minnesota/Iowa
                (35.5, -86.5, 220.0, 1.0), // Tennessee valley
                (33.0, -91.0, 200.0, 1.0), // lower Mississippi
                (40.5, -82.5, 220.0, 0.9), // Ohio valley
                (42.0, -75.5, 220.0, 0.7), // Northeast
                (33.5, -84.5, 200.0, 0.8), // Georgia
                (31.0, -98.0, 220.0, 1.0), // central Texas
            ],
            // Pacific seismic belt dominant; New Madrid and Wasatch minor.
            // Clusters are deliberately broad: recorded quake epicenters are
            // diffuse across the whole seismic west (the paper trained the
            // *widest* kernel, 298.8 miles, on this corpus).
            EventKind::NoaaEarthquake => &[
                (34.1, -117.5, 280.0, 2.2), // southern California
                (37.5, -121.9, 250.0, 2.0), // Bay Area
                (40.5, -124.2, 280.0, 1.2), // Cape Mendocino
                (47.5, -122.3, 300.0, 0.9), // Puget Sound
                (44.0, -121.0, 320.0, 0.5), // Oregon
                (38.8, -119.8, 300.0, 0.8), // Sierra Nevada / NV border
                (36.6, -89.5, 220.0, 0.4),  // New Madrid
                (40.8, -111.9, 280.0, 0.4), // Wasatch front
                (44.5, -110.5, 280.0, 0.3), // Yellowstone
            ],
            // Damaging wind: broad over the eastern two-thirds of CONUS with
            // a plains maximum — the tightest-grained corpus in Table 1.
            EventKind::NoaaWind => &[
                (38.0, -97.5, 260.0, 1.6),
                (41.5, -93.5, 260.0, 1.4),
                (35.5, -90.0, 260.0, 1.3),
                (33.5, -86.5, 260.0, 1.2),
                (40.0, -83.0, 260.0, 1.2),
                (36.0, -79.5, 260.0, 1.0),
                (42.5, -76.0, 260.0, 0.9),
                (31.5, -97.0, 260.0, 1.1),
                (44.5, -89.5, 260.0, 0.8),
                (33.5, -81.5, 240.0, 0.9),
                (30.5, -92.0, 240.0, 0.9),
                (39.5, -105.0, 160.0, 0.4), // Front Range chinook events
            ],
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One located disaster event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisasterEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Event location.
    pub location: GeoPoint,
}

/// Sample `count` events of `kind`, deterministic under `master_seed`.
///
/// Sampling is two-level, mirroring how the real archives are recorded:
/// 1. A fixed pool of recording **sites** (county centroids for FEMA,
///    damage-report sites for NOAA) is drawn once from the kind's
///    geographic cluster mixture. The pool depends on `master_seed` but not
///    on `count`.
/// 2. Each event picks a site uniformly and scatters within the site's
///    extent ([`EventKind`]'s jitter).
///
/// The finite site pool is what gives dense corpora (NOAA wind: 143,847
/// events over ~2,500 sites) the fine-grained clumping that trains the small
/// kernel bandwidths of Table 1.
pub fn sample_events(kind: EventKind, count: usize, master_seed: u64) -> Vec<DisasterEvent> {
    let seed = derive_seed(master_seed, kind.label());
    let mut rng = StdRng::seed_from_u64(seed);
    let sites = sample_sites(kind, &mut rng);
    let jitter = kind.site_jitter_miles();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let site = sites[rng.gen_range(0..sites.len())];
        let p = gaussian_offset(site, jitter, &mut rng);
        if CONUS.contains(p) {
            out.push(DisasterEvent { kind, location: p });
        }
    }
    out
}

/// Draw the kind's site pool from its cluster mixture.
fn sample_sites(kind: EventKind, rng: &mut StdRng) -> Vec<GeoPoint> {
    let clusters = kind.clusters();
    let total_weight: f64 = clusters.iter().map(|c| c.3).sum();
    let mut sites = Vec::with_capacity(kind.site_count());
    while sites.len() < kind.site_count() {
        let mut ticket = rng.gen_range(0.0..total_weight);
        let mut chosen = &clusters[0];
        for c in clusters {
            ticket -= c.3;
            if ticket <= 0.0 {
                chosen = c;
                break;
            }
        }
        let &(lat, lon, sigma, _) = chosen;
        let Ok(center) = GeoPoint::new(lat, lon) else {
            // Cluster centers are compile-time constants validated by tests.
            unreachable!("cluster centers are valid");
        };
        let p = gaussian_offset(center, sigma, rng);
        if CONUS.contains(p) {
            sites.push(p);
        }
    }
    sites
}

/// Isotropic Gaussian offset (σ in miles) via polar Box–Muller.
fn gaussian_offset(center: GeoPoint, sigma: f64, rng: &mut StdRng) -> GeoPoint {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let bearing: f64 = rng.gen_range(0.0..360.0);
    let r = sigma * (-2.0 * u1.ln()).sqrt();
    destination(center, bearing, r)
}

/// Sample the events of one Monte-Carlo ensemble member.
///
/// Member `member` of an ensemble seeded with `master_seed` draws from its
/// own decorrelated stream: the member seed is `master_seed` XOR-mixed with
/// a SplitMix64-style odd multiplier of `member + 1`, so member `m` sees
/// the same events regardless of how many members the ensemble has, and no
/// member shares a stream with the base corpus sampler for any seed.
pub fn sample_member_events(
    kind: EventKind,
    count: usize,
    master_seed: u64,
    member: usize,
) -> Vec<DisasterEvent> {
    let member_seed = master_seed ^ (member as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    sample_events(kind, count, member_seed)
}

/// Sample a full ensemble: `members` independent draws of `count` events.
///
/// Equivalent to calling [`sample_member_events`] for each index in
/// `0..members`; the per-member streams are stable under ensemble growth.
pub fn sample_ensemble(
    kind: EventKind,
    members: usize,
    count: usize,
    master_seed: u64,
) -> Vec<Vec<DisasterEvent>> {
    (0..members)
        .map(|m| sample_member_events(kind, count, master_seed, m))
        .collect()
}

/// Sample every corpus at the paper's exact counts (§4.3).
pub fn sample_paper_corpora(master_seed: u64) -> Vec<Vec<DisasterEvent>> {
    ALL_EVENT_KINDS
        .iter()
        .map(|&k| sample_events(k, k.paper_count(), master_seed))
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use riskroute_geo::distance::great_circle_miles;

    #[test]
    fn paper_counts_match_section_4_3() {
        assert_eq!(EventKind::FemaHurricane.paper_count(), 2_805);
        assert_eq!(EventKind::FemaTornado.paper_count(), 6_437);
        assert_eq!(EventKind::FemaStorm.paper_count(), 20_623);
        assert_eq!(EventKind::NoaaEarthquake.paper_count(), 2_267);
        assert_eq!(EventKind::NoaaWind.paper_count(), 143_847);
        let fema_total: usize = [
            EventKind::FemaHurricane,
            EventKind::FemaTornado,
            EventKind::FemaStorm,
        ]
        .iter()
        .map(|k| k.paper_count())
        .sum();
        assert_eq!(fema_total, 29_865, "paper: 29,865 FEMA declarations");
    }

    #[test]
    fn sampling_is_exact_count_and_deterministic() {
        let a = sample_events(EventKind::FemaHurricane, 500, 7);
        assert_eq!(a.len(), 500);
        let b = sample_events(EventKind::FemaHurricane, 500, 7);
        assert_eq!(a, b);
        let c = sample_events(EventKind::FemaHurricane, 500, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn kinds_use_independent_streams() {
        let h = sample_events(EventKind::FemaHurricane, 100, 7);
        let t = sample_events(EventKind::FemaTornado, 100, 7);
        assert_ne!(
            h.iter().map(|e| e.location).collect::<Vec<_>>(),
            t.iter().map(|e| e.location).collect::<Vec<_>>()
        );
    }

    #[test]
    fn events_stay_in_conus() {
        for &kind in ALL_EVENT_KINDS {
            for e in sample_events(kind, 300, 11) {
                assert!(CONUS.contains(e.location), "{kind}: {:?}", e.location);
            }
        }
    }

    fn mass_within(events: &[DisasterEvent], lat: f64, lon: f64, radius: f64) -> f64 {
        let c = GeoPoint::new(lat, lon).unwrap();
        events
            .iter()
            .filter(|e| great_circle_miles(e.location, c) < radius)
            .count() as f64
            / events.len() as f64
    }

    #[test]
    fn hurricanes_hug_the_gulf_and_atlantic() {
        let ev = sample_events(EventKind::FemaHurricane, 3000, 42);
        let gulf = mass_within(&ev, 29.8, -91.0, 350.0);
        let mountain_west = mass_within(&ev, 40.0, -110.0, 350.0);
        assert!(gulf > 0.25, "gulf mass {gulf}");
        assert!(mountain_west < 0.01, "mountain-west mass {mountain_west}");
    }

    #[test]
    fn tornadoes_center_on_the_alley() {
        let ev = sample_events(EventKind::FemaTornado, 3000, 42);
        let alley = mass_within(&ev, 36.5, -97.0, 400.0);
        let west_coast = mass_within(&ev, 37.0, -120.0, 400.0);
        assert!(alley > 0.3, "alley mass {alley}");
        assert!(west_coast < 0.01, "west-coast mass {west_coast}");
    }

    #[test]
    fn earthquakes_dominate_the_west_coast() {
        let ev = sample_events(EventKind::NoaaEarthquake, 3000, 42);
        let west = ev.iter().filter(|e| e.location.lon() < -105.0).count() as f64 / ev.len() as f64;
        assert!(west > 0.75, "west mass {west}");
    }

    #[test]
    fn storms_favor_the_central_plains() {
        let ev = sample_events(EventKind::FemaStorm, 3000, 42);
        let plains = mass_within(&ev, 39.0, -95.0, 500.0);
        let pacific = mass_within(&ev, 38.0, -121.0, 400.0);
        assert!(plains > 0.25, "plains mass {plains}");
        assert!(pacific < 0.03, "pacific mass {pacific}");
    }

    #[test]
    fn wind_is_broad_but_eastern() {
        let ev = sample_events(EventKind::NoaaWind, 4000, 42);
        let east = ev.iter().filter(|e| e.location.lon() > -105.0).count() as f64 / ev.len() as f64;
        assert!(east > 0.85, "east mass {east}");
    }

    #[test]
    fn ensemble_members_are_stable_under_ensemble_growth() {
        let small = sample_ensemble(EventKind::FemaHurricane, 2, 50, 42);
        let large = sample_ensemble(EventKind::FemaHurricane, 5, 50, 42);
        assert_eq!(small[0], large[0]);
        assert_eq!(small[1], large[1]);
        assert_ne!(large[0], large[1], "members must decorrelate");
        assert_eq!(
            sample_member_events(EventKind::FemaHurricane, 50, 42, 3),
            large[3]
        );
        // No member collides with the base sampler's stream.
        let base = sample_events(EventKind::FemaHurricane, 50, 42);
        for member in &large {
            assert_ne!(*member, base);
        }
    }

    #[test]
    fn paper_corpora_shapes() {
        // Keep this cheap: sample at reduced counts via sample_events, and
        // check only that the full-corpus helper wires kinds correctly by
        // sampling the two smallest corpora at paper scale.
        let eq = sample_events(
            EventKind::NoaaEarthquake,
            EventKind::NoaaEarthquake.paper_count(),
            42,
        );
        assert_eq!(eq.len(), 2_267);
        assert!(eq.iter().all(|e| e.kind == EventKind::NoaaEarthquake));
    }
}
