//! Per-kind risk surfaces and the aggregate historical outage risk `o_h`.
//!
//! Equation 2 of the paper defines the kernel likelihood with a `1/(σN)`
//! normalization:
//!
//! ```text
//! p̂(y) = 1/(σN) · Σᵢ K((xᵢ − y)/σ),   K(z) = 1/(2π)·exp(−zᵀz/2)
//! ```
//!
//! i.e. the proper 2-D density multiplied by σ (units 1/miles). The paper
//! never states the units its λ values assume, so this module exposes the
//! raw Eq.-2 likelihood for the Figure-4 surfaces and converts it to a
//! dimensionless per-event strike *probability* (via a county-scale damage
//! footprint per event kind) for the aggregate risk `o_h` that
//! enters the routing metric.
//!
//! §5.2: "we consider the aggregated historical risk to be the sum of all
//! five outage probabilities" — [`HistoricalRisk`] sums the five per-kind
//! surfaces, with optional user-defined per-kind weights (the extension the
//! paper explicitly leaves to operators).

use crate::events::{sample_events, DisasterEvent, EventKind, ALL_EVENT_KINDS};
use riskroute_geo::{GeoGrid, GeoPoint};
use riskroute_stats::GeoKde;
use std::collections::HashMap;
use std::f64::consts::PI;

// Per-kind damage radii live on `EventKind::damage_radius_miles`; an event
// striking within that distance of a PoP threatens its physical
// infrastructure, so `density · π·r²` is the probability that a given
// recorded event of the kind hits the PoP — §5.2's "prior on the likelihood
// that physical infrastructure at a specific location encounters an
// outage".

/// The fitted risk surface for one event kind.
#[derive(Debug, Clone)]
pub struct RiskSurface {
    kind: EventKind,
    kde: GeoKde,
}

impl RiskSurface {
    /// Fit a surface from events with the given kernel bandwidth (miles).
    ///
    /// # Panics
    /// Panics when `events` is empty, contains a foreign kind, or the
    /// bandwidth is invalid (see [`GeoKde::fit`]).
    pub fn fit(kind: EventKind, events: &[DisasterEvent], bandwidth_miles: f64) -> Self {
        assert!(
            events.iter().all(|e| e.kind == kind),
            "all events must be of kind {kind}"
        );
        let pts: Vec<GeoPoint> = events.iter().map(|e| e.location).collect();
        RiskSurface {
            kind,
            kde: GeoKde::fit(pts, bandwidth_miles),
        }
    }

    /// The event kind.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// The kernel bandwidth in miles.
    pub fn bandwidth_miles(&self) -> f64 {
        self.kde.bandwidth_miles()
    }

    /// The paper's Eq.-2 likelihood `p̂(y)` (units 1/miles; see module docs).
    pub fn likelihood(&self, y: GeoPoint) -> f64 {
        self.kde.density(y) * self.kde.bandwidth_miles()
    }

    /// Proper 2-D density in events per square mile (Eq. 2 divided by σ).
    pub fn density(&self, y: GeoPoint) -> f64 {
        self.kde.density(y)
    }

    /// §5.2's outage likelihood: the probability that a given recorded
    /// event of this kind strikes within the kind's damage radius of `y`
    /// (`density · π·r²`). This is the per-kind term of the aggregate
    /// historical risk `o_h`.
    pub fn outage_probability(&self, y: GeoPoint) -> f64 {
        let r = self.kind.damage_radius_miles();
        self.kde.density(y) * PI * r * r
    }

    /// Evaluate the Eq.-2 likelihood over a grid (Figure 4 rendering).
    ///
    /// Rides [`GeoKde::evaluate_grid`]'s binned fast path, then scales the
    /// densities by σ to get Eq.-2 likelihoods; large corpora render maps
    /// in `O(cells · kernel_width)` instead of `O(cells · events)`.
    pub fn likelihood_grid(&self, grid: GeoGrid) -> GeoGrid {
        let mut grid = self.kde.evaluate_grid(grid);
        let s = self.kde.bandwidth_miles();
        for row in 0..grid.rows() {
            for col in 0..grid.cols() {
                grid.set(row, col, grid.get(row, col) * s);
            }
        }
        grid
    }
}

/// The aggregate historical outage risk: `o_h(y) = Σ_kinds w_k · p̂_k(y)`.
#[derive(Debug, Clone)]
pub struct HistoricalRisk {
    surfaces: Vec<RiskSurface>,
    weights: HashMap<EventKind, f64>,
}

impl HistoricalRisk {
    /// Aggregate the given surfaces with unit weights (the paper's default).
    pub fn new(surfaces: Vec<RiskSurface>) -> Self {
        let weights = surfaces.iter().map(|s| (s.kind(), 1.0)).collect();
        HistoricalRisk { surfaces, weights }
    }

    /// Build the standard five-corpus risk model: paper event counts
    /// (optionally capped at `max_events_per_kind` to bound KDE cost — the
    /// density shape is insensitive to the cap well before 10k events) and
    /// paper Table-1 bandwidths.
    pub fn standard(master_seed: u64, max_events_per_kind: Option<usize>) -> Self {
        let surfaces = ALL_EVENT_KINDS
            .iter()
            .map(|&kind| {
                let n = kind
                    .paper_count()
                    .min(max_events_per_kind.unwrap_or(usize::MAX));
                let events = sample_events(kind, n, master_seed);
                RiskSurface::fit(kind, &events, kind.paper_bandwidth_miles())
            })
            .collect();
        HistoricalRisk::new(surfaces)
    }

    /// Override the weight of one kind (§5.2's operator extension, e.g.
    /// emphasizing flooding-prone event types).
    ///
    /// # Panics
    /// Panics on negative or non-finite weights.
    pub fn set_weight(&mut self, kind: EventKind, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weights must be finite and non-negative"
        );
        self.weights.insert(kind, weight);
    }

    /// The per-kind surfaces.
    pub fn surfaces(&self) -> &[RiskSurface] {
        &self.surfaces
    }

    /// Aggregate risk `o_h(y)`: the weighted sum of per-kind outage
    /// probabilities (§5.2: "the aggregate risk … is defined as the sum of
    /// all outage probabilities").
    pub fn risk(&self, y: GeoPoint) -> f64 {
        self.surfaces
            .iter()
            .map(|s| self.weights.get(&s.kind()).copied().unwrap_or(1.0) * s.outage_probability(y))
            .sum()
    }

    /// Aggregate risk at every location of `points`, in order.
    pub fn risk_at_all(&self, points: &[GeoPoint]) -> Vec<f64> {
        points.iter().map(|&p| self.risk(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn small_surface(kind: EventKind, n: usize) -> RiskSurface {
        let events = sample_events(kind, n, 42);
        RiskSurface::fit(kind, &events, kind.paper_bandwidth_miles())
    }

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn likelihood_is_density_times_bandwidth() {
        let s = small_surface(EventKind::FemaHurricane, 400);
        let y = pt(29.9, -90.1);
        assert!((s.likelihood(y) - s.density(y) * s.bandwidth_miles()).abs() < 1e-15);
    }

    #[test]
    fn hurricane_risk_higher_on_gulf_than_montana() {
        let s = small_surface(EventKind::FemaHurricane, 800);
        let gulf = s.likelihood(pt(29.9, -90.1)); // New Orleans
        let montana = s.likelihood(pt(47.0, -109.0));
        assert!(
            gulf > 50.0 * montana.max(1e-300),
            "gulf {gulf} montana {montana}"
        );
    }

    #[test]
    fn earthquake_risk_higher_in_california() {
        let s = small_surface(EventKind::NoaaEarthquake, 800);
        let la = s.likelihood(pt(34.05, -118.24));
        let atlanta = s.likelihood(pt(33.75, -84.39));
        assert!(la > 10.0 * atlanta.max(1e-300));
    }

    #[test]
    #[should_panic(expected = "all events must be of kind")]
    fn mixed_kinds_panic() {
        let mut events = sample_events(EventKind::FemaTornado, 10, 1);
        events.push(sample_events(EventKind::FemaStorm, 1, 1)[0]);
        let _ = RiskSurface::fit(EventKind::FemaTornado, &events, 50.0);
    }

    #[test]
    fn aggregate_sums_surfaces() {
        let h = small_surface(EventKind::FemaHurricane, 300);
        let e = small_surface(EventKind::NoaaEarthquake, 300);
        let y = pt(34.05, -118.24);
        let expect = h.outage_probability(y) + e.outage_probability(y);
        let agg = HistoricalRisk::new(vec![h, e]);
        assert!((agg.risk(y) - expect).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_contributions() {
        let h = small_surface(EventKind::FemaHurricane, 300);
        let y = pt(29.9, -90.1);
        let base = h.outage_probability(y);
        let mut agg = HistoricalRisk::new(vec![h]);
        agg.set_weight(EventKind::FemaHurricane, 3.0);
        assert!((agg.risk(y) - 3.0 * base).abs() < 1e-12);
        agg.set_weight(EventKind::FemaHurricane, 0.0);
        assert_eq!(agg.risk(y), 0.0);
    }

    #[test]
    #[should_panic(expected = "weights must be finite")]
    fn negative_weight_panics() {
        let h = small_surface(EventKind::FemaHurricane, 50);
        let mut agg = HistoricalRisk::new(vec![h]);
        agg.set_weight(EventKind::FemaHurricane, -1.0);
    }

    #[test]
    fn standard_model_is_deterministic_and_capped() {
        let a = HistoricalRisk::standard(42, Some(200));
        let b = HistoricalRisk::standard(42, Some(200));
        let y = pt(35.0, -90.0);
        assert_eq!(a.risk(y), b.risk(y));
        assert_eq!(a.surfaces().len(), 5);
    }

    #[test]
    fn standard_model_gulf_coast_riskier_than_northern_plains() {
        // North Dakota sits away from every major cluster (the Rockies are
        // not a clean control: the Yellowstone/Wasatch earthquake clusters
        // reach into Wyoming).
        let agg = HistoricalRisk::standard(42, Some(500));
        let new_orleans = agg.risk(pt(29.95, -90.07));
        let north_dakota = agg.risk(pt(47.5, -100.5));
        assert!(
            new_orleans > 3.0 * north_dakota,
            "NO {new_orleans} vs ND {north_dakota}"
        );
    }

    #[test]
    fn risk_at_all_matches_pointwise() {
        let agg = HistoricalRisk::standard(42, Some(100));
        let pts = vec![pt(29.9, -90.1), pt(40.0, -105.0)];
        let v = agg.risk_at_all(&pts);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], agg.risk(pts[0]));
        assert_eq!(v[1], agg.risk(pts[1]));
    }

    #[test]
    fn likelihood_grid_shape() {
        let s = small_surface(EventKind::FemaHurricane, 200);
        let grid = GeoGrid::new(riskroute_geo::bbox::CONUS, 10, 20).unwrap();
        let grid = s.likelihood_grid(grid);
        let (r, c, peak) = grid.argmax().unwrap();
        assert!(peak > 0.0);
        // Peak row should sit in the southern half of the map (Gulf coast).
        assert!(r < grid.rows() / 2, "peak at row {r}, col {c}");
    }
}
