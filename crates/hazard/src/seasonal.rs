//! Seasonal risk modulation — the §5.2 extension the paper defers.
//!
//! "While we acknowledge that many of the disaster events have strong
//! seasonal correlations (e.g., tornados, hurricanes), for simplicity, here
//! we only consider a single outage probability distribution for each
//! disaster event type." This module lifts that simplification: each event
//! kind carries a monthly activity profile (normalized so the *annual mean*
//! weight is 1, keeping yearly totals consistent with the paper's static
//! model), and [`SeasonalRisk`] evaluates `o_h` for a given month.
//!
//! Profiles follow the U.S. climatology the corpora describe: Atlantic
//! hurricanes peak Aug–Oct, tornado season peaks Apr–Jun, severe storms ride
//! the warm half of the year, damaging wind peaks with summer convection,
//! and earthquakes are aseasonal.

use crate::events::EventKind;
use crate::surface::HistoricalRisk;
use riskroute_geo::GeoPoint;

/// Months, 1-based like the calendar (1 = January).
pub type Month = u8;

/// Relative monthly activity (Jan..Dec) for one event kind. Each profile
/// averages to 1.0 over the year.
fn monthly_profile(kind: EventKind) -> [f64; 12] {
    let raw: [f64; 12] = match kind {
        // NHC climatology: essentially nothing before June, sharp Aug–Oct
        // peak (Sep ≈ ⅓ of annual activity).
        EventKind::FemaHurricane => [0.0, 0.0, 0.0, 0.0, 0.1, 0.6, 1.2, 2.8, 4.0, 2.4, 0.8, 0.1],
        // SPC climatology: spring peak, secondary late-fall Dixie season.
        EventKind::FemaTornado => [0.4, 0.5, 1.0, 2.2, 2.8, 1.8, 0.8, 0.6, 0.6, 0.7, 0.9, 0.7],
        // Severe storms: warm-season convection.
        EventKind::FemaStorm => [0.5, 0.5, 0.8, 1.2, 1.8, 2.0, 1.7, 1.4, 1.0, 0.7, 0.5, 0.9],
        // Earthquakes don't read the calendar.
        EventKind::NoaaEarthquake => [1.0; 12],
        // Damaging wind: summer thunderstorm peak, winter minimum.
        EventKind::NoaaWind => [0.5, 0.5, 0.8, 1.1, 1.5, 2.0, 2.2, 1.7, 1.0, 0.7, 0.5, 0.5],
    };
    // Normalize to annual mean 1.
    let mean: f64 = raw.iter().sum::<f64>() / 12.0;
    let mut out = [0.0; 12];
    for (o, r) in out.iter_mut().zip(raw.iter()) {
        *o = r / mean;
    }
    out
}

/// Seasonal weight of `kind` in `month` (annual mean = 1).
///
/// # Panics
/// Panics when `month` is outside `1..=12`.
pub fn seasonal_weight(kind: EventKind, month: Month) -> f64 {
    assert!((1..=12).contains(&month), "month {month} out of range");
    monthly_profile(kind)[usize::from(month) - 1]
}

/// A month-conditioned view over a [`HistoricalRisk`] model.
#[derive(Debug, Clone)]
pub struct SeasonalRisk<'a> {
    base: &'a HistoricalRisk,
    month: Month,
}

impl<'a> SeasonalRisk<'a> {
    /// Condition `base` on `month`.
    ///
    /// # Panics
    /// Panics when `month` is outside `1..=12`.
    pub fn new(base: &'a HistoricalRisk, month: Month) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        SeasonalRisk { base, month }
    }

    /// The conditioned month.
    pub fn month(&self) -> Month {
        self.month
    }

    /// Month-conditioned aggregate risk:
    /// `o_h(y | month) = Σ_kinds w_kind(month) · p_kind(y)`.
    pub fn risk(&self, y: GeoPoint) -> f64 {
        self.base
            .surfaces()
            .iter()
            .map(|s| seasonal_weight(s.kind(), self.month) * s.outage_probability(y))
            .sum()
    }

    /// Month-conditioned risk at every location, in order.
    pub fn risk_at_all(&self, points: &[GeoPoint]) -> Vec<f64> {
        points.iter().map(|&p| self.risk(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::events::ALL_EVENT_KINDS;

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn profiles_average_to_one() {
        for &kind in ALL_EVENT_KINDS {
            let mean: f64 = (1..=12).map(|m| seasonal_weight(kind, m)).sum::<f64>() / 12.0;
            assert!((mean - 1.0).abs() < 1e-12, "{kind}: mean {mean}");
        }
    }

    #[test]
    fn hurricane_season_peaks_in_september() {
        let sep = seasonal_weight(EventKind::FemaHurricane, 9);
        for m in 1..=12 {
            assert!(seasonal_weight(EventKind::FemaHurricane, m) <= sep);
        }
        assert_eq!(seasonal_weight(EventKind::FemaHurricane, 1), 0.0);
        assert_eq!(seasonal_weight(EventKind::FemaHurricane, 2), 0.0);
    }

    #[test]
    fn tornado_season_peaks_in_spring() {
        let may = seasonal_weight(EventKind::FemaTornado, 5);
        assert!(may > seasonal_weight(EventKind::FemaTornado, 1));
        assert!(may > seasonal_weight(EventKind::FemaTornado, 8));
    }

    #[test]
    fn earthquakes_are_aseasonal() {
        for m in 1..=12 {
            assert_eq!(seasonal_weight(EventKind::NoaaEarthquake, m), 1.0);
        }
    }

    #[test]
    fn gulf_coast_risk_swings_with_the_calendar() {
        let base = HistoricalRisk::standard(42, Some(500));
        let nola = pt(29.95, -90.07);
        let january = SeasonalRisk::new(&base, 1).risk(nola);
        let september = SeasonalRisk::new(&base, 9).risk(nola);
        assert!(
            september > 2.0 * january,
            "Sep {september} vs Jan {january}"
        );
        // California's quake-dominated risk barely moves.
        let la = pt(34.05, -118.24);
        let la_jan = SeasonalRisk::new(&base, 1).risk(la);
        let la_sep = SeasonalRisk::new(&base, 9).risk(la);
        assert!((la_sep / la_jan) < (september / january));
    }

    #[test]
    fn annual_mean_matches_static_model() {
        // Averaging the seasonal risk over all twelve months recovers the
        // paper's static o_h.
        let base = HistoricalRisk::standard(42, Some(500));
        let p = pt(35.0, -90.0);
        let annual_mean: f64 = (1..=12)
            .map(|m| SeasonalRisk::new(&base, m).risk(p))
            .sum::<f64>()
            / 12.0;
        assert!((annual_mean - base.risk(p)).abs() / base.risk(p) < 1e-9);
    }

    #[test]
    fn risk_at_all_matches_pointwise() {
        let base = HistoricalRisk::standard(42, Some(200));
        let seasonal = SeasonalRisk::new(&base, 9);
        let pts = vec![pt(29.9, -90.1), pt(40.0, -105.0)];
        let v = seasonal.risk_at_all(&pts);
        assert_eq!(v[0], seasonal.risk(pts[0]));
        assert_eq!(v[1], seasonal.risk(pts[1]));
        assert_eq!(seasonal.month(), 9);
    }

    #[test]
    #[should_panic(expected = "month 13")]
    fn invalid_month_panics() {
        let base = HistoricalRisk::standard(42, Some(100));
        let _ = SeasonalRisk::new(&base, 13);
    }
}
