//! The Table-1 bandwidth training pipeline.
//!
//! §5.2: "To determine the optimal bandwidth value, we use 5-way cross
//! validation (where the best bandwidth is found from 80 % of the observed
//! events to fit the remaining 20 %). The distance metric we consider is the
//! KL divergence." This module runs that pipeline over the full synthetic
//! corpora — including the 143,847-event NOAA wind corpus — using the
//! truncated, spatially-binned KDE from `riskroute-stats`, and reports one
//! trained bandwidth per event kind.
//!
//! The key *shape* of Table 1 is that trained bandwidth shrinks as corpus
//! size grows (wind ≪ storm < tornado < hurricane ≪ earthquake); training on
//! the full corpora is what reproduces it.

use crate::events::{sample_events, EventKind};
use riskroute_geo::GeoPoint;
use riskroute_stats::crossval::{log_space, select_bandwidth_binned};
use riskroute_stats::rng::derive_seed;

/// Held-out points scored per fold; beyond this the CV score is already
/// stable and extra points only add cost.
pub const DEFAULT_TEST_CAP: usize = 600;

/// Outcome of training one corpus.
#[derive(Debug, Clone)]
pub struct TrainedBandwidth {
    /// The event kind.
    pub kind: EventKind,
    /// Corpus size the CV ran over.
    pub corpus_size: usize,
    /// The winning bandwidth in miles.
    pub bandwidth_miles: f64,
    /// Mean held-out negative log-likelihood at the winning bandwidth
    /// (KL divergence up to a bandwidth-independent constant).
    pub score: f64,
}

/// Train the bandwidth for one kind via 5-way cross validation over the
/// full `events` corpus. Candidates sweep `[1, 600]` miles geometrically.
pub fn train_bandwidth(kind: EventKind, events: &[GeoPoint], master_seed: u64) -> TrainedBandwidth {
    assert!(!events.is_empty(), "cannot train on an empty corpus");
    let seed = derive_seed(derive_seed(master_seed, "bandwidth-training"), kind.label());
    let candidates = log_space(1.0, 600.0, 20);
    let report = select_bandwidth_binned(events, &candidates, 5, DEFAULT_TEST_CAP, seed);
    TrainedBandwidth {
        kind,
        corpus_size: events.len(),
        bandwidth_miles: report.best_bandwidth_miles,
        score: report.best_score,
    }
}

/// Run the full Table-1 pipeline: sample each corpus at the paper's count
/// and train its bandwidth.
pub fn train_all(master_seed: u64) -> Vec<TrainedBandwidth> {
    crate::events::ALL_EVENT_KINDS
        .iter()
        .map(|&kind| {
            let events = sample_events(kind, kind.paper_count(), master_seed);
            let pts: Vec<GeoPoint> = events.iter().map(|e| e.location).collect();
            train_bandwidth(kind, &pts, master_seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn pts(kind: EventKind, n: usize) -> Vec<GeoPoint> {
        sample_events(kind, n, 42)
            .into_iter()
            .map(|e| e.location)
            .collect()
    }

    #[test]
    fn training_is_deterministic() {
        let p = pts(EventKind::FemaHurricane, 400);
        let a = train_bandwidth(EventKind::FemaHurricane, &p, 1);
        let b = train_bandwidth(EventKind::FemaHurricane, &p, 1);
        assert_eq!(a.bandwidth_miles, b.bandwidth_miles);
        assert_eq!(a.corpus_size, 400);
    }

    #[test]
    fn bandwidths_are_within_candidate_range() {
        for kind in [EventKind::FemaHurricane, EventKind::NoaaEarthquake] {
            let p = pts(kind, 400);
            let t = train_bandwidth(kind, &p, 3);
            assert!(
                (1.0..=600.0).contains(&t.bandwidth_miles),
                "{kind}: {}",
                t.bandwidth_miles
            );
        }
    }

    #[test]
    fn denser_corpus_trains_tighter_kernel() {
        // Table 1's driving phenomenon, at reduced scale to stay fast: the
        // same storm geography with 10× the events supports a tighter kernel.
        let sparse = train_bandwidth(EventKind::FemaStorm, &pts(EventKind::FemaStorm, 400), 5);
        let dense = train_bandwidth(EventKind::FemaStorm, &pts(EventKind::FemaStorm, 4_000), 5);
        assert!(
            dense.bandwidth_miles < sparse.bandwidth_miles,
            "dense {} >= sparse {}",
            dense.bandwidth_miles,
            sparse.bandwidth_miles
        );
    }

    #[test]
    fn earthquake_trains_wider_than_full_rate_storm() {
        // Earthquake (2,267 diffuse western events) vs storm sampled at the
        // same per-area density it has in the full corpus: quake must train
        // wider. Use paper-proportional sizes scaled by 1/4 for speed.
        let quake = train_bandwidth(
            EventKind::NoaaEarthquake,
            &pts(EventKind::NoaaEarthquake, 2_267 / 4),
            5,
        );
        let storm = train_bandwidth(
            EventKind::FemaStorm,
            &pts(EventKind::FemaStorm, 20_623 / 4),
            5,
        );
        assert!(
            quake.bandwidth_miles > storm.bandwidth_miles,
            "quake {} <= storm {}",
            quake.bandwidth_miles,
            storm.bandwidth_miles
        );
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn empty_corpus_panics() {
        let _ = train_bandwidth(EventKind::FemaStorm, &[], 1);
    }
}
