//! Quick preview of the Table-1 bandwidth training pipeline at full corpus
//! scale. Run with `cargo run --release -p riskroute-hazard --example
//! table1_preview`.

fn main() {
    println!("Training kernel bandwidths (5-way CV, KL score) on full corpora…");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12}",
        "Event Type", "Entries", "Trained bw", "Paper bw", "CV score"
    );
    for t in riskroute_hazard::training::train_all(42) {
        println!(
            "{:<18} {:>10} {:>12.2} {:>12.2} {:>12.3}",
            t.kind.label(),
            t.corpus_size,
            t.bandwidth_miles,
            t.kind.paper_bandwidth_miles(),
            t.score
        );
    }
}
