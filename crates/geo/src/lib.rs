//! Geographic primitives for the RiskRoute reproduction.
//!
//! RiskRoute reasons about *physical* network infrastructure: Points of
//! Presence (PoPs) pinned to latitude/longitude coordinates, links whose
//! lengths are "air miles" between PoPs, disaster events located on the
//! surface of the Earth, and geo-spatial risk surfaces evaluated over the
//! continental United States. This crate provides the shared geographic
//! vocabulary for all of that:
//!
//! - [`GeoPoint`] — a validated latitude/longitude coordinate.
//! - [`distance`] — spherical geodesy: great-circle distance (haversine),
//!   bearings, destination points, cross-track distance.
//! - [`bbox`] — axis-aligned latitude/longitude bounding boxes, including the
//!   [`bbox::CONUS`] extent used throughout the evaluation.
//! - [`grid`] — uniform lat/lon evaluation grids for density surfaces and
//!   heat maps (Figures 3–6 of the paper).
//! - [`polyline`] — paths over the sphere and their cumulative lengths
//!   (the "bit-miles" of a routing path).
//!
//! All distances are in **miles** to match the paper's bit-*mile* metric.
//! Conversions to kilometres are provided where useful.
//!
//! # Example
//!
//! ```
//! use riskroute_geo::{GeoPoint, distance::great_circle_miles};
//!
//! let houston = GeoPoint::new(29.76, -95.37).unwrap();
//! let boston = GeoPoint::new(42.36, -71.06).unwrap();
//! let miles = great_circle_miles(houston, boston);
//! assert!((miles - 1597.0).abs() < 15.0); // ~1,600 air miles
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod bbox;
pub mod distance;
pub mod grid;
pub mod point;
pub mod polyline;

pub use bbox::BoundingBox;
pub use grid::GeoGrid;
pub use point::{GeoError, GeoPoint};
pub use polyline::Polyline;

/// Mean Earth radius in miles (IUGG mean radius R1, 6371.0088 km).
pub const EARTH_RADIUS_MILES: f64 = 3958.7613;

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Miles per kilometre.
pub const MILES_PER_KM: f64 = 0.621_371_192_237_334;

/// Convert kilometres to miles.
#[inline]
pub fn km_to_miles(km: f64) -> f64 {
    km * MILES_PER_KM
}

/// Convert miles to kilometres.
#[inline]
pub fn miles_to_km(miles: f64) -> f64 {
    miles / MILES_PER_KM
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn unit_conversion_round_trips() {
        let km = 415.0; // Irene's tropical-storm wind radius from the paper
        let miles = km_to_miles(km);
        assert!((miles - 257.9).abs() < 0.5);
        assert!((miles_to_km(miles) - km).abs() < 1e-9);
    }

    #[test]
    fn earth_radii_are_consistent() {
        assert!((km_to_miles(EARTH_RADIUS_KM) - EARTH_RADIUS_MILES).abs() < 1e-3);
    }
}
