//! Validated latitude/longitude coordinates.

use std::fmt;

/// Errors produced when constructing geographic values.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Latitude outside `[-90, 90]` or not finite.
    InvalidLatitude(f64),
    /// Longitude outside `[-180, 180]` or not finite.
    InvalidLongitude(f64),
    /// A bounding box whose south edge lies north of its north edge.
    InvertedBounds {
        /// Southern latitude supplied.
        south: f64,
        /// Northern latitude supplied.
        north: f64,
    },
    /// A grid with zero rows or columns.
    EmptyGrid,
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} out of range [-90, 90] or not finite")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "longitude {v} out of range [-180, 180] or not finite")
            }
            GeoError::InvertedBounds { south, north } => {
                write!(
                    f,
                    "bounding box south edge {south} is north of north edge {north}"
                )
            }
            GeoError::EmptyGrid => write!(f, "grid must have at least one row and one column"),
        }
    }
}

impl std::error::Error for GeoError {}

/// A point on the Earth's surface, validated on construction.
///
/// Latitude is in degrees north (`[-90, 90]`), longitude in degrees east
/// (`[-180, 180]`). Construction rejects NaN/infinite and out-of-range
/// values so the rest of the workspace never has to re-validate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

impl GeoPoint {
    /// Create a point from latitude and longitude in degrees.
    ///
    /// # Errors
    /// Returns [`GeoError::InvalidLatitude`] / [`GeoError::InvalidLongitude`]
    /// when a coordinate is non-finite or out of range.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(GeoError::InvalidLongitude(lon));
        }
        Ok(GeoPoint { lat, lon })
    }

    /// Latitude in degrees north.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in degrees east.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }

    /// Midpoint between `self` and `other` along the great circle.
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        let (lat1, lon1) = (self.lat_rad(), self.lon_rad());
        let (lat2, lon2) = (other.lat_rad(), other.lon_rad());
        let dlon = lon2 - lon1;
        let bx = lat2.cos() * dlon.cos();
        let by = lat2.cos() * dlon.sin();
        let lat3 = (lat1.sin() + lat2.sin()).atan2(((lat1.cos() + bx).powi(2) + by * by).sqrt());
        let lon3 = lon1 + by.atan2(lat1.cos() + bx);
        // Normalize longitude back into [-180, 180] and clamp latitude
        // against float drift at the poles; both coordinates are finite by
        // construction, so the direct struct build is safe.
        let lon_deg = (lon3.to_degrees() + 540.0).rem_euclid(360.0) - 180.0;
        GeoPoint {
            lat: lat3.to_degrees().clamp(-90.0, 90.0),
            lon: lon_deg.clamp(-180.0, 180.0),
        }
    }
}

impl riskroute_json::ToJson for GeoPoint {
    fn to_json(&self) -> riskroute_json::Json {
        use riskroute_json::Json;
        Json::obj([("lat", Json::Num(self.lat)), ("lon", Json::Num(self.lon))])
    }
}

impl riskroute_json::FromJson for GeoPoint {
    fn from_json(v: &riskroute_json::Json) -> Result<Self, riskroute_json::JsonError> {
        let lat = v.field("lat")?.as_f64()?;
        let lon = v.field("lon")?.as_f64()?;
        GeoPoint::new(lat, lon).map_err(|e| riskroute_json::JsonError::Shape(e.to_string()))
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = if self.lat >= 0.0 { 'N' } else { 'S' };
        let ew = if self.lon >= 0.0 { 'E' } else { 'W' };
        write!(f, "{:.4}{ns} {:.4}{ew}", self.lat.abs(), self.lon.abs())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn accepts_valid_coordinates() {
        let p = GeoPoint::new(35.2, -76.4).unwrap(); // Irene's center from §4.4
        assert_eq!(p.lat(), 35.2);
        assert_eq!(p.lon(), -76.4);
    }

    #[test]
    fn accepts_boundary_coordinates() {
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
        assert!(GeoPoint::new(-90.0, -180.0).is_ok());
        assert!(GeoPoint::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn rejects_out_of_range_latitude() {
        assert_eq!(
            GeoPoint::new(90.5, 0.0),
            Err(GeoError::InvalidLatitude(90.5))
        );
        assert_eq!(
            GeoPoint::new(-91.0, 0.0),
            Err(GeoError::InvalidLatitude(-91.0))
        );
    }

    #[test]
    fn rejects_out_of_range_longitude() {
        assert_eq!(
            GeoPoint::new(0.0, 181.0),
            Err(GeoError::InvalidLongitude(181.0))
        );
    }

    #[test]
    fn rejects_non_finite() {
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
        assert!(GeoPoint::new(0.0, f64::INFINITY).is_err());
        assert!(GeoPoint::new(f64::NEG_INFINITY, 0.0).is_err());
    }

    #[test]
    fn midpoint_of_identical_points_is_identity() {
        let p = GeoPoint::new(40.0, -100.0).unwrap();
        let m = p.midpoint(&p);
        assert!((m.lat() - 40.0).abs() < 1e-9);
        assert!((m.lon() + 100.0).abs() < 1e-9);
    }

    #[test]
    fn midpoint_on_equator() {
        let a = GeoPoint::new(0.0, 0.0).unwrap();
        let b = GeoPoint::new(0.0, 90.0).unwrap();
        let m = a.midpoint(&b);
        assert!(m.lat().abs() < 1e-9);
        assert!((m.lon() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats_hemispheres() {
        let p = GeoPoint::new(29.76, -95.37).unwrap();
        assert_eq!(format!("{p}"), "29.7600N 95.3700W");
    }

    #[test]
    fn json_round_trip() {
        let p = GeoPoint::new(42.36, -71.06).unwrap();
        let json = riskroute_json::to_string(&p);
        let back: GeoPoint = riskroute_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
