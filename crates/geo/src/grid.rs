//! Uniform latitude/longitude evaluation grids.
//!
//! The paper evaluates kernel density surfaces (Figure 4), population heat
//! maps (Figure 3), and forecast wind fields (Figures 5–6) over the
//! continental US. [`GeoGrid`] is the shared raster: a rectangular lattice of
//! cell centers over a [`BoundingBox`] with an `f64` value per cell.

use crate::{BoundingBox, GeoError, GeoPoint};

/// A uniform lat/lon raster with one `f64` value per cell.
///
/// Cells are indexed `(row, col)` with row 0 at the *southern* edge and
/// column 0 at the *western* edge. Values default to zero.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoGrid {
    bounds: BoundingBox,
    rows: usize,
    cols: usize,
    values: Vec<f64>,
}

impl GeoGrid {
    /// Create a zero-filled grid with `rows × cols` cells over `bounds`.
    ///
    /// # Errors
    /// Returns [`GeoError::EmptyGrid`] when either dimension is zero.
    pub fn new(bounds: BoundingBox, rows: usize, cols: usize) -> Result<Self, GeoError> {
        if rows == 0 || cols == 0 {
            return Err(GeoError::EmptyGrid);
        }
        Ok(GeoGrid {
            bounds,
            rows,
            cols,
            values: vec![0.0; rows * cols],
        })
    }

    /// The grid's bounding box.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// Number of rows (south → north).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (west → east).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Latitude step between adjacent rows, in degrees.
    pub fn lat_step(&self) -> f64 {
        self.bounds.lat_span() / self.rows as f64
    }

    /// Longitude step between adjacent columns, in degrees.
    pub fn lon_step(&self) -> f64 {
        self.bounds.lon_span() / self.cols as f64
    }

    /// Geographic center of cell `(row, col)`.
    ///
    /// # Panics
    /// Panics when the index is out of range.
    pub fn cell_center(&self, row: usize, col: usize) -> GeoPoint {
        assert!(
            row < self.rows && col < self.cols,
            "cell index out of range"
        );
        let lat = self.bounds.south() + (row as f64 + 0.5) * self.lat_step();
        let lon = self.bounds.west() + (col as f64 + 0.5) * self.lon_step();
        match GeoPoint::new(lat, lon) {
            Ok(p) => p,
            // Cell centers interpolate strictly inside the validated bounds.
            Err(_) => unreachable!("cell center of valid bounds is valid"),
        }
    }

    /// The cell containing point `p`, or `None` when `p` is outside bounds.
    pub fn cell_of(&self, p: GeoPoint) -> Option<(usize, usize)> {
        if !self.bounds.contains(p) {
            return None;
        }
        let row = (((p.lat() - self.bounds.south()) / self.lat_step()) as usize).min(self.rows - 1);
        let col = (((p.lon() - self.bounds.west()) / self.lon_step()) as usize).min(self.cols - 1);
        Some((row, col))
    }

    /// Value at cell `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.values[self.index(row, col)]
    }

    /// Set the value of cell `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        let i = self.index(row, col);
        self.values[i] = v;
    }

    /// Add `v` to cell `(row, col)`.
    pub fn add(&mut self, row: usize, col: usize, v: f64) {
        let i = self.index(row, col);
        self.values[i] += v;
    }

    /// Fill every cell by evaluating `f` at the cell center.
    pub fn fill_with(&mut self, mut f: impl FnMut(GeoPoint) -> f64) {
        for row in 0..self.rows {
            for col in 0..self.cols {
                let c = self.cell_center(row, col);
                let i = self.index(row, col);
                self.values[i] = f(c);
            }
        }
    }

    /// Iterate `(row, col, center, value)` over all cells.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize, GeoPoint, f64)> + '_ {
        (0..self.rows).flat_map(move |row| {
            (0..self.cols)
                .map(move |col| (row, col, self.cell_center(row, col), self.get(row, col)))
        })
    }

    /// Sum of all cell values.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Largest cell value with its `(row, col)`; `None` if all values are NaN.
    pub fn argmax(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for row in 0..self.rows {
            for col in 0..self.cols {
                let v = self.get(row, col);
                if v.is_nan() {
                    continue;
                }
                if best.is_none_or(|(_, _, b)| v > b) {
                    best = Some((row, col, v));
                }
            }
        }
        best
    }

    /// Normalize values so they sum to 1 (no-op for an all-zero grid).
    pub fn normalize(&mut self) {
        let t = self.total();
        if t > 0.0 {
            for v in &mut self.values {
                *v /= t;
            }
        }
    }

    /// Render an ASCII heat map, darker glyphs for larger values. Intended
    /// for the experiment harness to echo Figures 3–6 shapes in a terminal.
    pub fn ascii_heatmap(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self
            .values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0_f64, f64::max);
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        // Print north row first so the map reads like a map.
        for row in (0..self.rows).rev() {
            for col in 0..self.cols {
                let v = self.get(row, col);
                let idx = if max > 0.0 && v.is_finite() && v > 0.0 {
                    (((v / max) * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
                } else {
                    0
                };
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    #[inline]
    fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "cell index out of range"
        );
        row * self.cols + col
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::bbox::CONUS;

    fn grid() -> GeoGrid {
        GeoGrid::new(CONUS, 10, 20).unwrap()
    }

    #[test]
    fn rejects_empty_dimensions() {
        assert!(GeoGrid::new(CONUS, 0, 5).is_err());
        assert!(GeoGrid::new(CONUS, 5, 0).is_err());
    }

    #[test]
    fn cell_center_round_trips_through_cell_of() {
        let g = grid();
        for row in 0..g.rows() {
            for col in 0..g.cols() {
                let c = g.cell_center(row, col);
                assert_eq!(g.cell_of(c), Some((row, col)));
            }
        }
    }

    #[test]
    fn cell_of_outside_is_none() {
        let g = grid();
        let outside = GeoPoint::new(10.0, -95.0).unwrap();
        assert_eq!(g.cell_of(outside), None);
    }

    #[test]
    fn cell_of_boundary_points_clamp_into_last_cell() {
        let g = grid();
        let ne = GeoPoint::new(CONUS.north(), CONUS.east()).unwrap();
        assert_eq!(g.cell_of(ne), Some((g.rows() - 1, g.cols() - 1)));
        let sw = GeoPoint::new(CONUS.south(), CONUS.west()).unwrap();
        assert_eq!(g.cell_of(sw), Some((0, 0)));
    }

    #[test]
    fn set_get_add() {
        let mut g = grid();
        g.set(3, 7, 2.5);
        g.add(3, 7, 0.5);
        assert_eq!(g.get(3, 7), 3.0);
        assert_eq!(g.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let g = grid();
        let _ = g.get(10, 0);
    }

    #[test]
    fn fill_with_evaluates_centers() {
        let mut g = grid();
        g.fill_with(|p| p.lat());
        // Every row has constant latitude; rows increase northward.
        for row in 1..g.rows() {
            assert!(g.get(row, 0) > g.get(row - 1, 0));
            for col in 1..g.cols() {
                assert_eq!(g.get(row, col), g.get(row, 0));
            }
        }
    }

    #[test]
    fn normalize_sums_to_one() {
        let mut g = grid();
        g.fill_with(|_| 2.0);
        g.normalize();
        assert!((g.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_zero_grid_is_noop() {
        let mut g = grid();
        g.normalize();
        assert_eq!(g.total(), 0.0);
    }

    #[test]
    fn argmax_finds_peak() {
        let mut g = grid();
        g.set(4, 11, 9.0);
        g.set(2, 3, 5.0);
        assert_eq!(g.argmax(), Some((4, 11, 9.0)));
    }

    #[test]
    fn ascii_heatmap_dimensions() {
        let mut g = grid();
        g.set(0, 0, 1.0);
        let art = g.ascii_heatmap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), g.rows());
        assert!(lines.iter().all(|l| l.len() == g.cols()));
        // Peak cell is at the south-west: bottom-left glyph should be darkest.
        assert_eq!(lines.last().unwrap().as_bytes()[0], b'@');
    }

    #[test]
    fn iter_cells_counts_all() {
        let g = grid();
        assert_eq!(g.iter_cells().count(), g.rows() * g.cols());
    }
}
