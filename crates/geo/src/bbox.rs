//! Axis-aligned latitude/longitude bounding boxes.

use crate::{GeoError, GeoPoint};

/// An axis-aligned box in latitude/longitude space.
///
/// The RiskRoute evaluation is confined to the continental United States, so
/// boxes never straddle the antimeridian; construction enforces
/// `west <= east` implicitly through [`GeoPoint`] validation and ordered
/// corners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    south: f64,
    west: f64,
    north: f64,
    east: f64,
}

/// The continental United States extent used throughout the evaluation
/// (matches the map extents of Figures 1, 3–6 in the paper).
pub const CONUS: BoundingBox = BoundingBox {
    south: 24.5,
    west: -125.0,
    north: 49.5,
    east: -66.9,
};

impl BoundingBox {
    /// Create a box from its south-west and north-east corners (degrees).
    ///
    /// # Errors
    /// Rejects non-finite/out-of-range coordinates and inverted extents.
    pub fn new(south: f64, west: f64, north: f64, east: f64) -> Result<Self, GeoError> {
        // Reuse point validation for range checks.
        GeoPoint::new(south, west)?;
        GeoPoint::new(north, east)?;
        if south > north {
            return Err(GeoError::InvertedBounds { south, north });
        }
        if west > east {
            return Err(GeoError::InvertedBounds {
                south: west,
                north: east,
            });
        }
        Ok(BoundingBox {
            south,
            west,
            north,
            east,
        })
    }

    /// The smallest box containing every point in `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn enclosing(points: &[GeoPoint]) -> Option<Self> {
        let first = points.first()?;
        let mut bb = BoundingBox {
            south: first.lat(),
            north: first.lat(),
            west: first.lon(),
            east: first.lon(),
        };
        for p in &points[1..] {
            bb.south = bb.south.min(p.lat());
            bb.north = bb.north.max(p.lat());
            bb.west = bb.west.min(p.lon());
            bb.east = bb.east.max(p.lon());
        }
        Some(bb)
    }

    /// Southern edge latitude.
    pub fn south(&self) -> f64 {
        self.south
    }
    /// Northern edge latitude.
    pub fn north(&self) -> f64 {
        self.north
    }
    /// Western edge longitude.
    pub fn west(&self) -> f64 {
        self.west
    }
    /// Eastern edge longitude.
    pub fn east(&self) -> f64 {
        self.east
    }

    /// Latitude span in degrees.
    pub fn lat_span(&self) -> f64 {
        self.north - self.south
    }

    /// Longitude span in degrees.
    pub fn lon_span(&self) -> f64 {
        self.east - self.west
    }

    /// Whether `p` lies inside the box (edges inclusive).
    pub fn contains(&self, p: GeoPoint) -> bool {
        p.lat() >= self.south
            && p.lat() <= self.north
            && p.lon() >= self.west
            && p.lon() <= self.east
    }

    /// The box's center point.
    pub fn center(&self) -> GeoPoint {
        match GeoPoint::new(
            (self.south + self.north) / 2.0,
            (self.west + self.east) / 2.0,
        ) {
            Ok(p) => p,
            // Midpoints of in-range coordinates are in range.
            Err(_) => unreachable!("center of valid box is valid"),
        }
    }

    /// Expand every edge outward by `degrees` (clamped to valid ranges).
    pub fn expanded(&self, degrees: f64) -> BoundingBox {
        BoundingBox {
            south: (self.south - degrees).max(-90.0),
            north: (self.north + degrees).min(90.0),
            west: (self.west - degrees).max(-180.0),
            east: (self.east + degrees).min(180.0),
        }
    }

    /// Geographic footprint diagonal in miles: the great-circle distance
    /// between the south-west and north-east corners. The paper's Table 3
    /// characterizes networks by "geographic footprint", taken as the largest
    /// distance between two PoPs; the diagonal of the enclosing box is the
    /// cheap upper proxy used for sanity checks.
    pub fn diagonal_miles(&self) -> f64 {
        // The constructor validated both corners.
        let (Ok(sw), Ok(ne)) = (
            GeoPoint::new(self.south, self.west),
            GeoPoint::new(self.north, self.east),
        ) else {
            unreachable!("box corners are valid");
        };
        crate::distance::great_circle_miles(sw, ne)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn conus_is_valid_and_contains_madison() {
        let madison = GeoPoint::new(43.07, -89.4).unwrap();
        assert!(CONUS.contains(madison));
        assert!(CONUS.lat_span() > 0.0 && CONUS.lon_span() > 0.0);
    }

    #[test]
    fn conus_excludes_honolulu_and_london() {
        assert!(!CONUS.contains(GeoPoint::new(21.3, -157.85).unwrap()));
        assert!(!CONUS.contains(GeoPoint::new(51.5, -0.1).unwrap()));
    }

    #[test]
    fn rejects_inverted_bounds() {
        assert!(BoundingBox::new(40.0, -100.0, 30.0, -90.0).is_err());
        assert!(BoundingBox::new(30.0, -90.0, 40.0, -100.0).is_err());
    }

    #[test]
    fn enclosing_empty_is_none() {
        assert!(BoundingBox::enclosing(&[]).is_none());
    }

    #[test]
    fn enclosing_single_point_is_degenerate_box() {
        let p = GeoPoint::new(33.0, -97.0).unwrap();
        let bb = BoundingBox::enclosing(&[p]).unwrap();
        assert_eq!(bb.lat_span(), 0.0);
        assert_eq!(bb.lon_span(), 0.0);
        assert!(bb.contains(p));
    }

    #[test]
    fn enclosing_covers_all_points() {
        let pts: Vec<GeoPoint> = [(29.76, -95.37), (42.36, -71.06), (47.6, -122.33)]
            .iter()
            .map(|&(a, b)| GeoPoint::new(a, b).unwrap())
            .collect();
        let bb = BoundingBox::enclosing(&pts).unwrap();
        for p in &pts {
            assert!(bb.contains(*p));
        }
        assert!((bb.south() - 29.76).abs() < 1e-12);
        assert!((bb.east() + 71.06).abs() < 1e-12);
    }

    #[test]
    fn edges_are_inclusive() {
        let bb = BoundingBox::new(30.0, -100.0, 40.0, -90.0).unwrap();
        assert!(bb.contains(GeoPoint::new(30.0, -100.0).unwrap()));
        assert!(bb.contains(GeoPoint::new(40.0, -90.0).unwrap()));
    }

    #[test]
    fn expanded_grows_and_clamps() {
        let bb = BoundingBox::new(-89.0, -179.0, 89.0, 179.0).unwrap();
        let big = bb.expanded(5.0);
        assert_eq!(big.south(), -90.0);
        assert_eq!(big.north(), 90.0);
        assert_eq!(big.west(), -180.0);
        assert_eq!(big.east(), 180.0);
    }

    #[test]
    fn center_is_inside() {
        let bb = CONUS;
        assert!(bb.contains(bb.center()));
    }

    #[test]
    fn conus_diagonal_is_cross_country_scale() {
        let d = CONUS.diagonal_miles();
        assert!(d > 2500.0 && d < 4000.0, "got {d}");
    }
}
