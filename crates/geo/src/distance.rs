//! Spherical geodesy: distances, bearings, and derived constructions.
//!
//! The paper's bit-mile metric is defined over "air miles", i.e. great-circle
//! distance. We model the Earth as a sphere of mean radius
//! [`crate::EARTH_RADIUS_MILES`]; the sub-0.5 % error of
//! the spherical model is far below the uncertainty of line-of-sight link
//! placement (§4.1 of the paper).

use crate::{GeoPoint, EARTH_RADIUS_MILES};

/// Great-circle distance between two points in miles (haversine formula).
///
/// The haversine form is numerically stable for the short distances that
/// dominate intra-US routing (unlike the spherical law of cosines, which
/// loses precision below ~1 mile).
pub fn great_circle_miles(a: GeoPoint, b: GeoPoint) -> f64 {
    let dlat = (b.lat_rad() - a.lat_rad()) / 2.0;
    let dlon = (b.lon_rad() - a.lon_rad()) / 2.0;
    let h = dlat.sin().powi(2) + a.lat_rad().cos() * b.lat_rad().cos() * dlon.sin().powi(2);
    // Clamp guards against floating error pushing h infinitesimally above 1
    // for antipodal points.
    2.0 * EARTH_RADIUS_MILES * h.sqrt().min(1.0).asin()
}

/// Great-circle distance in kilometres.
pub fn great_circle_km(a: GeoPoint, b: GeoPoint) -> f64 {
    crate::miles_to_km(great_circle_miles(a, b))
}

/// Initial bearing (forward azimuth) from `a` to `b`, in degrees clockwise
/// from true north, normalized to `[0, 360)`.
pub fn initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> f64 {
    let dlon = b.lon_rad() - a.lon_rad();
    let y = dlon.sin() * b.lat_rad().cos();
    let x =
        a.lat_rad().cos() * b.lat_rad().sin() - a.lat_rad().sin() * b.lat_rad().cos() * dlon.cos();
    (y.atan2(x).to_degrees() + 360.0).rem_euclid(360.0)
}

/// The point reached by travelling `distance_miles` from `start` along the
/// great circle with initial bearing `bearing_deg`.
///
/// Used to trace hurricane wind-field extents and to synthesize census block
/// scatter around city centers.
pub fn destination(start: GeoPoint, bearing_deg: f64, distance_miles: f64) -> GeoPoint {
    let delta = distance_miles / EARTH_RADIUS_MILES;
    let theta = bearing_deg.to_radians();
    let lat1 = start.lat_rad();
    let lon1 = start.lon_rad();
    let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
    let lon2 = lon1
        + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
    let lon_deg = (lon2.to_degrees() + 540.0).rem_euclid(360.0) - 180.0;
    // Clamping and longitude normalization keep the result in range for any
    // finite inputs; a non-finite bearing/distance degrades to the start
    // point instead of aborting the caller.
    GeoPoint::new(lat2.to_degrees().clamp(-90.0, 90.0), lon_deg).unwrap_or(start)
}

/// Cross-track distance in miles: how far point `p` lies from the great
/// circle through `a` and `b` (positive magnitude).
///
/// Useful for asking whether infrastructure sits near a link's line-of-sight
/// corridor.
pub fn cross_track_miles(p: GeoPoint, a: GeoPoint, b: GeoPoint) -> f64 {
    let d13 = great_circle_miles(a, p) / EARTH_RADIUS_MILES;
    let theta13 = initial_bearing_deg(a, p).to_radians();
    let theta12 = initial_bearing_deg(a, b).to_radians();
    (d13.sin() * (theta13 - theta12).sin()).asin().abs() * EARTH_RADIUS_MILES
}

/// Distance from `p` to the great-circle *segment* `a`–`b` in miles.
///
/// Unlike [`cross_track_miles`], this clamps to the segment: if the
/// perpendicular foot falls outside `[a, b]`, the distance to the nearer
/// endpoint is returned.
pub fn segment_distance_miles(p: GeoPoint, a: GeoPoint, b: GeoPoint) -> f64 {
    let dab = great_circle_miles(a, b);
    if dab < 1e-9 {
        return great_circle_miles(p, a);
    }
    // Along-track distance of the perpendicular foot from a.
    let d13 = great_circle_miles(a, p) / EARTH_RADIUS_MILES;
    let theta13 = initial_bearing_deg(a, p).to_radians();
    let theta12 = initial_bearing_deg(a, b).to_radians();
    let dxt = (d13.sin() * (theta13 - theta12).sin()).asin();
    let dat = (d13.cos() / dxt.cos()).clamp(-1.0, 1.0).acos() * EARTH_RADIUS_MILES;
    // Sign of along-track: negative when the foot is behind a.
    let behind = (theta13 - theta12).cos() < 0.0;
    if behind {
        great_circle_miles(p, a)
    } else if dat > dab {
        great_circle_miles(p, b)
    } else {
        dxt.abs() * EARTH_RADIUS_MILES
    }
}

/// Sample `n >= 2` points evenly along the great circle from `a` to `b`,
/// inclusive of the endpoints.
///
/// Used to rasterize line-of-sight links when checking whether a link passes
/// through a disaster's wind field.
pub fn sample_great_circle(a: GeoPoint, b: GeoPoint, n: usize) -> Vec<GeoPoint> {
    assert!(n >= 2, "need at least the two endpoints");
    let total = great_circle_miles(a, b);
    if total < 1e-9 {
        return vec![a; n];
    }
    let bearing_start = initial_bearing_deg(a, b);
    let mut out = Vec::with_capacity(n);
    out.push(a);
    for k in 1..n - 1 {
        let frac = k as f64 / (n - 1) as f64;
        // Re-deriving the bearing at each step would be exact; for CONUS-scale
        // spans the single-bearing approximation deviates by well under the
        // grid resolutions we evaluate at, and interior points are only used
        // for containment tests. Use slerp for exactness instead:
        out.push(slerp(a, b, frac));
    }
    out.push(b);
    let _ = bearing_start;
    out
}

/// Spherical linear interpolation between `a` and `b` at fraction `t ∈ [0,1]`.
pub fn slerp(a: GeoPoint, b: GeoPoint, t: f64) -> GeoPoint {
    let (x1, y1, z1) = to_unit_vec(a);
    let (x2, y2, z2) = to_unit_vec(b);
    let dot = (x1 * x2 + y1 * y2 + z1 * z2).clamp(-1.0, 1.0);
    let omega = dot.acos();
    if omega < 1e-12 {
        return a;
    }
    let so = omega.sin();
    let f1 = ((1.0 - t) * omega).sin() / so;
    let f2 = (t * omega).sin() / so;
    let (x, y, z) = (f1 * x1 + f2 * x2, f1 * y1 + f2 * y2, f1 * z1 + f2 * z2);
    from_unit_vec(x, y, z)
}

fn to_unit_vec(p: GeoPoint) -> (f64, f64, f64) {
    let (lat, lon) = (p.lat_rad(), p.lon_rad());
    (lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin())
}

fn from_unit_vec(x: f64, y: f64, z: f64) -> GeoPoint {
    let norm = (x * x + y * y + z * z).sqrt();
    let (x, y, z) = (x / norm, y / norm, z / norm);
    let lat = z.asin().to_degrees();
    let lon = y.atan2(x).to_degrees();
    match GeoPoint::new(lat.clamp(-90.0, 90.0), lon) {
        Ok(p) => p,
        // Inputs are blends of unit vectors from valid points, so the norm
        // is positive and atan2/asin stay in range.
        Err(_) => unreachable!("unit vector maps to a valid point"),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = pt(40.0, -88.0);
        assert_eq!(great_circle_miles(p, p), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = pt(29.76, -95.37);
        let b = pt(42.36, -71.06);
        assert!((great_circle_miles(a, b) - great_circle_miles(b, a)).abs() < 1e-9);
    }

    #[test]
    fn known_distance_nyc_la() {
        // JFK to LAX is a classic geodesy test pair: ~2,475 miles.
        let jfk = pt(40.6413, -73.7781);
        let lax = pt(33.9416, -118.4085);
        let d = great_circle_miles(jfk, lax);
        assert!((d - 2475.0).abs() < 15.0, "got {d}");
    }

    #[test]
    fn quarter_circumference_pole_to_equator() {
        let pole = pt(90.0, 0.0);
        let equator = pt(0.0, 0.0);
        let d = great_circle_miles(pole, equator);
        let quarter = std::f64::consts::PI * EARTH_RADIUS_MILES / 2.0;
        assert!((d - quarter).abs() < 1e-6);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = pt(0.0, 0.0);
        let b = pt(0.0, 180.0);
        let d = great_circle_miles(a, b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_MILES).abs() < 1e-6);
    }

    #[test]
    fn short_distance_precision() {
        // ~0.069 degrees latitude apart at the equator: ~4.76 miles.
        let a = pt(0.0, 0.0);
        let b = pt(0.069, 0.0);
        let d = great_circle_miles(a, b);
        assert!((d - 4.768).abs() < 0.01, "got {d}");
    }

    #[test]
    fn bearing_due_north_and_east() {
        let a = pt(0.0, 0.0);
        assert!((initial_bearing_deg(a, pt(10.0, 0.0)) - 0.0).abs() < 1e-9);
        assert!((initial_bearing_deg(a, pt(0.0, 10.0)) - 90.0).abs() < 1e-9);
        assert!((initial_bearing_deg(a, pt(-10.0, 0.0)) - 180.0).abs() < 1e-9);
        assert!((initial_bearing_deg(a, pt(0.0, -10.0)) - 270.0).abs() < 1e-9);
    }

    #[test]
    fn destination_inverts_distance_and_bearing() {
        let a = pt(35.0, -90.0);
        let b = pt(41.0, -74.0);
        let d = great_circle_miles(a, b);
        let brg = initial_bearing_deg(a, b);
        let reached = destination(a, brg, d);
        assert!(great_circle_miles(reached, b) < 0.5, "reached {reached}");
    }

    #[test]
    fn destination_zero_distance_is_identity() {
        let a = pt(35.0, -90.0);
        let b = destination(a, 123.0, 0.0);
        assert!(great_circle_miles(a, b) < 1e-9);
    }

    #[test]
    fn cross_track_of_point_on_path_is_zero() {
        let a = pt(0.0, 0.0);
        let b = pt(0.0, 10.0);
        let on_path = pt(0.0, 5.0);
        assert!(cross_track_miles(on_path, a, b) < 1e-6);
    }

    #[test]
    fn cross_track_perpendicular_offset() {
        let a = pt(0.0, 0.0);
        let b = pt(0.0, 10.0);
        let off = pt(1.0, 5.0); // 1 degree of latitude ≈ 69.1 miles
        let d = cross_track_miles(off, a, b);
        assert!((d - 69.09).abs() < 0.2, "got {d}");
    }

    #[test]
    fn segment_distance_clamps_to_endpoints() {
        let a = pt(0.0, 0.0);
        let b = pt(0.0, 10.0);
        // Beyond b along the path: nearest point is b itself.
        let past = pt(0.0, 12.0);
        let d = segment_distance_miles(past, a, b);
        let expect = great_circle_miles(past, b);
        assert!((d - expect).abs() < 1e-6);
        // Behind a: nearest point is a.
        let before = pt(0.0, -3.0);
        let d = segment_distance_miles(before, a, b);
        let expect = great_circle_miles(before, a);
        assert!((d - expect).abs() < 1e-6);
    }

    #[test]
    fn segment_distance_degenerate_segment() {
        let a = pt(40.0, -100.0);
        let p = pt(41.0, -100.0);
        let d = segment_distance_miles(p, a, a);
        assert!((d - great_circle_miles(p, a)).abs() < 1e-9);
    }

    #[test]
    fn slerp_endpoints() {
        let a = pt(29.76, -95.37);
        let b = pt(42.36, -71.06);
        assert!(great_circle_miles(slerp(a, b, 0.0), a) < 1e-6);
        assert!(great_circle_miles(slerp(a, b, 1.0), b) < 1e-6);
    }

    #[test]
    fn slerp_midpoint_equidistant() {
        let a = pt(29.76, -95.37);
        let b = pt(42.36, -71.06);
        let m = slerp(a, b, 0.5);
        let da = great_circle_miles(m, a);
        let db = great_circle_miles(m, b);
        assert!((da - db).abs() < 1e-6);
    }

    #[test]
    fn sample_great_circle_monotone_progress() {
        let a = pt(29.76, -95.37);
        let b = pt(42.36, -71.06);
        let pts = sample_great_circle(a, b, 10);
        assert_eq!(pts.len(), 10);
        let total = great_circle_miles(a, b);
        let mut prev = 0.0;
        for p in &pts {
            let along = great_circle_miles(a, *p);
            assert!(along >= prev - 1e-6);
            assert!(along <= total + 1e-6);
            prev = along;
        }
    }

    #[test]
    fn sample_degenerate_pair() {
        let a = pt(40.0, -100.0);
        let pts = sample_great_circle(a, a, 4);
        assert_eq!(pts.len(), 4);
        for p in pts {
            assert!(great_circle_miles(a, p) < 1e-9);
        }
    }
}
