//! Paths over the sphere and their cumulative lengths.
//!
//! A routing path `p = {p1, ..., pK}` (§5 of the paper) is geographically a
//! polyline over PoP coordinates; its length is the bit-miles term of the
//! bit-risk-mile metric.

use crate::distance::great_circle_miles;
use crate::GeoPoint;

/// An ordered sequence of geographic points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polyline {
    points: Vec<GeoPoint>,
}

impl Polyline {
    /// Create a polyline from points (any length, including empty).
    pub fn new(points: Vec<GeoPoint>) -> Self {
        Polyline { points }
    }

    /// The points of the polyline.
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the polyline has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Append a point.
    pub fn push(&mut self, p: GeoPoint) {
        self.points.push(p);
    }

    /// Total great-circle length in miles (0 for fewer than two points).
    pub fn length_miles(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| great_circle_miles(w[0], w[1]))
            .sum()
    }

    /// Cumulative distance from the start to each point, in miles.
    ///
    /// The result has the same length as the polyline; the first entry is 0.
    pub fn cumulative_miles(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.points.len());
        let mut acc = 0.0;
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                acc += great_circle_miles(self.points[i - 1], *p);
            }
            out.push(acc);
            let _ = p;
        }
        out
    }

    /// The minimum great-circle distance from `p` to any vertex of the
    /// polyline, in miles. `None` when empty.
    pub fn min_vertex_distance_miles(&self, p: GeoPoint) -> Option<f64> {
        self.points
            .iter()
            .map(|q| great_circle_miles(p, *q))
            .min_by(f64::total_cmp)
    }
}

impl FromIterator<GeoPoint> for Polyline {
    fn from_iter<T: IntoIterator<Item = GeoPoint>>(iter: T) -> Self {
        Polyline::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn empty_and_single_point_have_zero_length() {
        assert_eq!(Polyline::default().length_miles(), 0.0);
        assert_eq!(Polyline::new(vec![pt(40.0, -100.0)]).length_miles(), 0.0);
    }

    #[test]
    fn two_point_length_matches_great_circle() {
        let a = pt(29.76, -95.37);
        let b = pt(42.36, -71.06);
        let line = Polyline::new(vec![a, b]);
        assert!((line.length_miles() - great_circle_miles(a, b)).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_detour_is_longer() {
        let a = pt(29.76, -95.37);
        let via = pt(41.88, -87.63); // Chicago detour
        let b = pt(42.36, -71.06);
        let direct = Polyline::new(vec![a, b]).length_miles();
        let detour = Polyline::new(vec![a, via, b]).length_miles();
        assert!(detour > direct);
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_total() {
        let line = Polyline::new(vec![
            pt(29.76, -95.37),
            pt(32.78, -96.8),
            pt(38.63, -90.2),
            pt(42.36, -71.06),
        ]);
        let cum = line.cumulative_miles();
        assert_eq!(cum.len(), 4);
        assert_eq!(cum[0], 0.0);
        for w in cum.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((cum[3] - line.length_miles()).abs() < 1e-9);
    }

    #[test]
    fn min_vertex_distance() {
        let line = Polyline::new(vec![pt(30.0, -95.0), pt(40.0, -75.0)]);
        let near_start = pt(30.1, -95.1);
        let d = line.min_vertex_distance_miles(near_start).unwrap();
        assert!(d < 15.0);
        assert!(Polyline::default()
            .min_vertex_distance_miles(near_start)
            .is_none());
    }

    #[test]
    fn from_iterator_collects() {
        let line: Polyline = [pt(30.0, -95.0), pt(40.0, -75.0)].into_iter().collect();
        assert_eq!(line.len(), 2);
        assert!(!line.is_empty());
    }

    #[test]
    fn push_extends() {
        let mut line = Polyline::default();
        line.push(pt(30.0, -95.0));
        line.push(pt(31.0, -95.0));
        assert_eq!(line.len(), 2);
        assert!(line.length_miles() > 0.0);
    }
}
