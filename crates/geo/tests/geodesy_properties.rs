//! Property-based tests for the geodesy primitives.

use proptest::prelude::*;
use riskroute_geo::distance::{
    destination, great_circle_miles, initial_bearing_deg, sample_great_circle,
    segment_distance_miles, slerp,
};
use riskroute_geo::{BoundingBox, GeoPoint, EARTH_RADIUS_MILES};

fn conus_point() -> impl Strategy<Value = GeoPoint> {
    (24.5..49.5f64, -125.0..-66.9f64).prop_map(|(lat, lon)| GeoPoint::new(lat, lon).unwrap())
}

fn any_point() -> impl Strategy<Value = GeoPoint> {
    (-89.9..89.9f64, -179.9..179.9f64).prop_map(|(lat, lon)| GeoPoint::new(lat, lon).unwrap())
}

proptest! {
    #[test]
    fn distance_nonnegative_and_bounded(a in any_point(), b in any_point()) {
        let d = great_circle_miles(a, b);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_MILES + 1e-6);
    }

    #[test]
    fn distance_symmetric(a in any_point(), b in any_point()) {
        let ab = great_circle_miles(a, b);
        let ba = great_circle_miles(b, a);
        prop_assert!((ab - ba).abs() < 1e-8);
    }

    #[test]
    fn triangle_inequality(a in conus_point(), b in conus_point(), c in conus_point()) {
        let ab = great_circle_miles(a, b);
        let bc = great_circle_miles(b, c);
        let ac = great_circle_miles(a, c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn destination_round_trip(a in conus_point(), b in conus_point()) {
        let d = great_circle_miles(a, b);
        let brg = initial_bearing_deg(a, b);
        let reached = destination(a, brg, d);
        prop_assert!(great_circle_miles(reached, b) < 1.0, "missed by {} miles", great_circle_miles(reached, b));
    }

    #[test]
    fn destination_distance_is_requested(a in conus_point(), brg in 0.0..360.0f64, dist in 0.0..3000.0f64) {
        let p = destination(a, brg, dist);
        let measured = great_circle_miles(a, p);
        prop_assert!((measured - dist).abs() < 0.5, "asked {dist}, measured {measured}");
    }

    #[test]
    fn slerp_stays_on_great_circle(a in conus_point(), b in conus_point(), t in 0.0..1.0f64) {
        let m = slerp(a, b, t);
        let total = great_circle_miles(a, b);
        let via = great_circle_miles(a, m) + great_circle_miles(m, b);
        prop_assert!((via - total).abs() < 1e-3, "detour {} vs {}", via, total);
    }

    #[test]
    fn segment_distance_at_most_endpoint_distance(
        p in conus_point(), a in conus_point(), b in conus_point()
    ) {
        let d = segment_distance_miles(p, a, b);
        let to_a = great_circle_miles(p, a);
        let to_b = great_circle_miles(p, b);
        prop_assert!(d <= to_a.min(to_b) + 1e-6);
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn sampled_path_length_matches_direct(a in conus_point(), b in conus_point()) {
        let pts = sample_great_circle(a, b, 16);
        let total: f64 = pts.windows(2).map(|w| great_circle_miles(w[0], w[1])).sum();
        let direct = great_circle_miles(a, b);
        prop_assert!((total - direct).abs() < 0.01 * direct.max(1.0));
    }

    #[test]
    fn enclosing_box_contains_inputs(pts in proptest::collection::vec(conus_point(), 1..32)) {
        let bb = BoundingBox::enclosing(&pts).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(*p));
        }
    }

    #[test]
    fn midpoint_is_equidistant(a in conus_point(), b in conus_point()) {
        let m = a.midpoint(&b);
        let da = great_circle_miles(m, a);
        let db = great_circle_miles(m, b);
        prop_assert!((da - db).abs() < 1e-3);
    }
}
