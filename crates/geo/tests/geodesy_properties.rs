//! Randomized property tests for the geodesy primitives, driven by the
//! workspace's deterministic PRNG.

use riskroute_geo::distance::{
    destination, great_circle_miles, initial_bearing_deg, sample_great_circle,
    segment_distance_miles, slerp,
};
use riskroute_geo::{BoundingBox, GeoPoint, EARTH_RADIUS_MILES};
use riskroute_rng::StdRng;

const CASES: usize = 256;

fn conus_point(rng: &mut StdRng) -> GeoPoint {
    GeoPoint::new(rng.gen_range(24.5..49.5), rng.gen_range(-125.0..-66.9)).expect("in range")
}

fn any_point(rng: &mut StdRng) -> GeoPoint {
    GeoPoint::new(rng.gen_range(-89.9..89.9), rng.gen_range(-179.9..179.9)).expect("in range")
}

#[test]
fn distance_nonnegative_bounded_and_symmetric() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..CASES {
        let (a, b) = (any_point(&mut rng), any_point(&mut rng));
        let d = great_circle_miles(a, b);
        assert!(d >= 0.0);
        assert!(d <= std::f64::consts::PI * EARTH_RADIUS_MILES + 1e-6);
        assert!((d - great_circle_miles(b, a)).abs() < 1e-8);
    }
}

#[test]
fn triangle_inequality() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..CASES {
        let (a, b, c) = (
            conus_point(&mut rng),
            conus_point(&mut rng),
            conus_point(&mut rng),
        );
        let ab = great_circle_miles(a, b);
        let bc = great_circle_miles(b, c);
        let ac = great_circle_miles(a, c);
        assert!(ac <= ab + bc + 1e-6);
    }
}

#[test]
fn destination_round_trip() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..CASES {
        let (a, b) = (conus_point(&mut rng), conus_point(&mut rng));
        let d = great_circle_miles(a, b);
        let brg = initial_bearing_deg(a, b);
        let reached = destination(a, brg, d);
        assert!(
            great_circle_miles(reached, b) < 1.0,
            "missed by {} miles",
            great_circle_miles(reached, b)
        );
    }
}

#[test]
fn destination_distance_is_requested() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..CASES {
        let a = conus_point(&mut rng);
        let brg = rng.gen_range(0.0..360.0);
        let dist = rng.gen_range(0.0..3000.0);
        let p = destination(a, brg, dist);
        let measured = great_circle_miles(a, p);
        assert!((measured - dist).abs() < 0.5, "asked {dist}, measured {measured}");
    }
}

#[test]
fn slerp_stays_on_great_circle() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..CASES {
        let (a, b) = (conus_point(&mut rng), conus_point(&mut rng));
        let t = rng.gen_range(0.0..1.0);
        let m = slerp(a, b, t);
        let total = great_circle_miles(a, b);
        let via = great_circle_miles(a, m) + great_circle_miles(m, b);
        assert!((via - total).abs() < 1e-3, "detour {via} vs {total}");
    }
}

#[test]
fn segment_distance_at_most_endpoint_distance() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..CASES {
        let (p, a, b) = (
            conus_point(&mut rng),
            conus_point(&mut rng),
            conus_point(&mut rng),
        );
        let d = segment_distance_miles(p, a, b);
        let to_a = great_circle_miles(p, a);
        let to_b = great_circle_miles(p, b);
        assert!(d <= to_a.min(to_b) + 1e-6);
        assert!(d >= 0.0);
    }
}

#[test]
fn sampled_path_length_matches_direct() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..CASES {
        let (a, b) = (conus_point(&mut rng), conus_point(&mut rng));
        let pts = sample_great_circle(a, b, 16);
        let total: f64 = pts
            .windows(2)
            .map(|w| great_circle_miles(w[0], w[1]))
            .sum();
        let direct = great_circle_miles(a, b);
        assert!((total - direct).abs() < 0.01 * direct.max(1.0));
    }
}

#[test]
fn enclosing_box_contains_inputs() {
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..CASES {
        let pts: Vec<GeoPoint> = (0..rng.gen_range(1..32usize))
            .map(|_| conus_point(&mut rng))
            .collect();
        let bb = BoundingBox::enclosing(&pts).expect("non-empty");
        for p in &pts {
            assert!(bb.contains(*p));
        }
    }
}

#[test]
fn midpoint_is_equidistant() {
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..CASES {
        let (a, b) = (conus_point(&mut rng), conus_point(&mut rng));
        let m = a.midpoint(&b);
        let da = great_circle_miles(m, a);
        let db = great_circle_miles(m, b);
        assert!((da - db).abs() < 1e-3);
    }
}
