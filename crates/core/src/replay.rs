//! Disaster replay (§7.3): advisory-by-advisory evaluation of RiskRoute
//! during Hurricanes Irene, Katrina, and Sandy.
//!
//! For each public advisory, the forecast risk field is rebuilt from the
//! advisory *text* (exercising the §4.4 NLP path), every PoP's forecast risk
//! `o_f` is refreshed, and the network's risk-reduction ratio against
//! shortest-path routing is recomputed — producing the Figure 12/13 time
//! series.
//!
//! **Degraded mode.** A replay never aborts on a bad advisory: when the
//! advisory text fails to parse (truncated feed, garbled transmission — the
//! chaos harness injects exactly this), the λ_f forecast term is dropped for
//! that tick, routing continues on historical risk alone, and the tick is
//! flagged [`ReplayTick::degraded`]. The tick count of a corrupted replay is
//! therefore identical to the clean run's; only the flagged ticks' ratios
//! revert to the historical-only baseline.

use crate::budget::{Budgeted, WorkBudget};
use crate::error::{Error, Result};
use crate::intradomain::Planner;
use crate::ratios::RatioReport;
use riskroute_forecast::{advisories_for, ForecastRisk, Storm};
use riskroute_geo::GeoPoint;
use riskroute_par::Parallelism;
use riskroute_topology::Network;

/// How many replay ticks are computed between checkpoint callbacks in
/// [`replay_raw_advisories_budgeted`] — small enough that an interrupted
/// sweep loses little work, large enough that snapshot I/O stays off the
/// hot path.
pub const CHECKPOINT_BATCH: usize = 8;

/// An advisory as it arrives off the wire: number, timestamp label, and the
/// raw text the §4.4 parser consumes. The chaos harness corrupts the `text`
/// field to exercise the degraded replay path.
#[derive(Debug, Clone, PartialEq)]
pub struct RawAdvisory {
    /// Advisory number (1-based).
    pub number: usize,
    /// NHC-style timestamp label.
    pub label: String,
    /// The advisory text to parse.
    pub text: String,
}

/// One advisory tick of a replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayTick {
    /// Advisory number (1-based).
    pub advisory: usize,
    /// NHC-style timestamp label.
    pub label: String,
    /// PoPs currently inside tropical-storm-force winds.
    pub pops_in_scope: usize,
    /// PoPs currently inside hurricane-force winds.
    pub pops_in_hurricane_winds: usize,
    /// The Eq. 5/6 ratios at this tick.
    pub report: RatioReport,
    /// Whether this tick ran in degraded mode: the advisory text failed to
    /// parse, so the forecast term was dropped and the ratios reflect
    /// historical risk only.
    pub degraded: bool,
}

/// A replayed storm over one network (or merged interdomain topology).
#[derive(Debug, Clone, PartialEq)]
pub struct DisasterReplay {
    /// The storm replayed.
    pub storm: String,
    /// The network evaluated.
    pub network: String,
    /// Ticks, in advisory order.
    pub ticks: Vec<ReplayTick>,
}

impl DisasterReplay {
    /// The tick with the largest risk-reduction ratio (the storm's peak
    /// effect on routing), or `None` for an empty replay.
    pub fn peak(&self) -> Option<&ReplayTick> {
        self.ticks.iter().max_by(|a, b| {
            a.report
                .risk_reduction_ratio
                .total_cmp(&b.report.risk_reduction_ratio)
        })
    }

    /// Number of ticks that ran in degraded (forecast-dropped) mode.
    pub fn degraded_ticks(&self) -> usize {
        self.ticks.iter().filter(|t| t.degraded).count()
    }

    /// Maximum number of PoPs ever inside hurricane-force winds — the §7.3
    /// "PoPs in the path of the event" count.
    pub fn max_pops_in_hurricane_winds(&self) -> usize {
        self.ticks
            .iter()
            .map(|t| t.pops_in_hurricane_winds)
            .max()
            .unwrap_or(0)
    }
}

/// Typed resume state for an interrupted replay sweep: the index of the
/// first advisory **not yet** evaluated. Pair it with the partial
/// [`DisasterReplay`] (whose `ticks` are a consistent prefix) to continue
/// via [`replay_raw_advisories_budgeted`]'s `prior_ticks` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayResume {
    /// Index into the raw-advisory stream of the next tick to compute.
    pub next_index: usize,
}

/// Replay a storm over a network using explicit pair sets (merged
/// interdomain callers restrict sources/destinations).
///
/// `base` must carry the historical risk and shares for `locations`'
/// topology; its forecast vector is overwritten per tick and the λ weights
/// are left untouched (use [`crate::metric::RiskWeights::PAPER`] for the
/// paper's configuration). Every `stride`-th advisory is evaluated
/// (Figures 12–13 plot a subsampled series; `stride = 1` evaluates all).
///
/// # Errors
/// [`Error::InvalidArgument`] when `stride` is zero or `locations` does
/// not match the planner's PoP count.
pub fn replay_storm_over_pairs(
    base: &Planner,
    network_name: &str,
    locations: &[GeoPoint],
    storm: Storm,
    stride: usize,
    sources: &[usize],
    dests: &[usize],
) -> Result<DisasterReplay> {
    let raws = raw_advisories(storm, stride)?;
    replay_raw_advisories(base, network_name, locations, storm.name(), &raws, sources, dests)
}

/// The storm's advisory series rendered to wire form ([`RawAdvisory`]),
/// every `stride`-th advisory. This is the text stream
/// [`replay_raw_advisories`] consumes — and the one the chaos harness
/// corrupts before feeding it back in.
///
/// # Errors
/// [`Error::InvalidArgument`] when `stride` is zero.
pub fn raw_advisories(storm: Storm, stride: usize) -> Result<Vec<RawAdvisory>> {
    check_stride(stride)?;
    Ok(advisories_for(storm)
        .iter()
        .step_by(stride)
        .map(|adv| RawAdvisory {
            number: adv.number,
            label: adv.timestamp.label(),
            text: adv.to_text(),
        })
        .collect())
}

fn check_stride(stride: usize) -> Result<()> {
    if stride == 0 {
        return Err(Error::InvalidArgument {
            context: "stride".into(),
            message: "must be positive (got 0)".into(),
        });
    }
    Ok(())
}

fn check_locations(locations: &[GeoPoint], base: &Planner) -> Result<()> {
    if locations.len() != base.pop_count() {
        return Err(Error::InvalidArgument {
            context: "locations".into(),
            message: format!(
                "must cover every PoP ({} locations for {} PoPs)",
                locations.len(),
                base.pop_count()
            ),
        });
    }
    Ok(())
}

/// Replay an explicit raw-advisory stream over explicit pair sets — the
/// lowest-level replay entry point, used by the chaos harness to feed
/// corrupted advisory text. Each advisory that fails to parse yields a
/// *degraded* tick (forecast term dropped, historical risk only) instead of
/// aborting; the returned replay always has exactly `raws.len()` ticks.
///
/// # Errors
/// [`Error::InvalidArgument`] when `locations` does not match the
/// planner's PoP count.
pub fn replay_raw_advisories(
    base: &Planner,
    network_name: &str,
    locations: &[GeoPoint],
    storm_name: &str,
    raws: &[RawAdvisory],
    sources: &[usize],
    dests: &[usize],
) -> Result<DisasterReplay> {
    let run = replay_raw_advisories_budgeted(
        base,
        network_name,
        locations,
        storm_name,
        raws,
        sources,
        dests,
        Vec::new(),
        &WorkBudget::unlimited(),
        |_, _| {},
    )?;
    let (replay, _) = run.into_parts();
    Ok(replay)
}

/// Budget-aware replay of a raw-advisory stream, resumable at any tick
/// boundary.
///
/// Each replay tick is an independent function of the base planner and one
/// advisory (the forecast field is rebuilt from scratch per tick), so a
/// sweep can stop after any tick and continue later with **bit-identical**
/// results: pass the partial replay's `ticks` back as `prior_ticks` and the
/// loop picks up at `prior_ticks.len()`.
///
/// The budget is checked before each tick and charged one work unit per
/// tick computed. `on_batch` fires with the replay-so-far and the next
/// tick index after every [`CHECKPOINT_BATCH`] newly computed ticks —
/// the hook the CLI uses to write crash-safe snapshots
/// (see [`crate::checkpoint::Snapshot::replay`]).
///
/// # Errors
/// [`Error::InvalidArgument`] when `locations` does not match the
/// planner's PoP count or `prior_ticks` is longer than `raws`.
#[allow(clippy::too_many_arguments)]
pub fn replay_raw_advisories_budgeted(
    base: &Planner,
    network_name: &str,
    locations: &[GeoPoint],
    storm_name: &str,
    raws: &[RawAdvisory],
    sources: &[usize],
    dests: &[usize],
    prior_ticks: Vec<ReplayTick>,
    budget: &WorkBudget,
    mut on_batch: impl FnMut(&DisasterReplay, usize),
) -> Result<Budgeted<DisasterReplay, ReplayResume>> {
    // Attribute the whole replay to the budget owner's trace.
    let _obs = budget.scope().enter();
    check_locations(locations, base)?;
    if prior_ticks.len() > raws.len() {
        return Err(Error::InvalidArgument {
            context: "prior_ticks".into(),
            message: format!(
                "resume state has {} ticks but the advisory stream has only {}",
                prior_ticks.len(),
                raws.len()
            ),
        });
    }
    let start = prior_ticks.len();
    let mut planner = base.clone();
    let mut replay = DisasterReplay {
        storm: storm_name.to_string(),
        network: network_name.to_string(),
        ticks: prior_ticks,
    };
    let mut since_batch = 0usize;
    match base.parallelism() {
        Parallelism::Sequential => {
            for (i, raw) in raws.iter().enumerate().skip(start) {
                if let Some(stopped) = budget.exhausted() {
                    return Ok(Budgeted::Partial {
                        completed: replay,
                        resume_state: ReplayResume { next_index: i },
                        stopped,
                    });
                }
                let mut tick_span = riskroute_obs::span!("replay_tick");
                let tick = tick_for_raw(&mut planner, raw, locations, sources, dests);
                if tick_span.is_active() {
                    tick_span.field("advisory", tick.advisory);
                    tick_span.field("degraded", u64::from(tick.degraded));
                    riskroute_obs::counter_add("replay_ticks", 1);
                    if tick.degraded {
                        riskroute_obs::counter_add("replay_degraded_ticks", 1);
                    }
                }
                drop(tick_span);
                replay.ticks.push(tick);
                budget.charge(1);
                since_batch += 1;
                if since_batch == CHECKPOINT_BATCH {
                    since_batch = 0;
                    on_batch(&replay, i + 1);
                }
            }
        }
        par => {
            // Ticks are dispatched in waves sized by the distance to the
            // next checkpoint boundary AND the remaining work budget, so a
            // deterministic (max-work) cut lands on exactly the tick index
            // where the sequential loop would have stopped, and `on_batch`
            // fires on exactly the sequential boundaries. Wall-clock limits
            // (deadline, cancel) are observed between waves — a clean batch
            // boundary; their cut point is timing-dependent either way.
            let mut i = start;
            while i < raws.len() {
                if let Some(stopped) = budget.exhausted() {
                    return Ok(Budgeted::Partial {
                        completed: replay,
                        resume_state: ReplayResume { next_index: i },
                        stopped,
                    });
                }
                // ≥ 1: since_batch < CHECKPOINT_BATCH, i < len, and an
                // unexhausted work cap has at least one unit left.
                let mut take = (CHECKPOINT_BATCH - since_batch).min(raws.len() - i);
                if let Some(left) = budget.work_remaining() {
                    take = take.min(usize::try_from(left).unwrap_or(usize::MAX));
                }
                let wave = &raws[i..i + take];
                let ticks = riskroute_par::try_par_map_collect(par, wave, |_, raw| {
                    // Each tick is an independent function of the base
                    // planner and one advisory; within-tick sweeps run
                    // sequentially since the fan-out is already tick-level.
                    let mut p = base.clone();
                    p.set_parallelism(Parallelism::Sequential);
                    let mut tick_span = riskroute_obs::span!("replay_tick");
                    let tick = tick_for_raw(&mut p, raw, locations, sources, dests);
                    if tick_span.is_active() {
                        tick_span.field("advisory", tick.advisory);
                        tick_span.field("degraded", u64::from(tick.degraded));
                        riskroute_obs::counter_add("replay_ticks", 1);
                        if tick.degraded {
                            riskroute_obs::counter_add("replay_degraded_ticks", 1);
                        }
                    }
                    budget.charge(1);
                    tick
                })
                .map_err(Error::from)?;
                replay.ticks.extend(ticks);
                i += take;
                since_batch += take;
                if since_batch == CHECKPOINT_BATCH {
                    since_batch = 0;
                    on_batch(&replay, i);
                }
            }
        }
    }
    Ok(Budgeted::Complete(replay))
}

/// Replay a storm over one network, all PoP pairs (the Figure-12
/// intradomain configuration).
///
/// # Errors
/// Same contract as [`replay_storm_over_pairs`].
pub fn replay_storm(
    base: &Planner,
    network: &Network,
    storm: Storm,
    stride: usize,
) -> Result<DisasterReplay> {
    let locations: Vec<GeoPoint> = network.pops().iter().map(|p| p.location).collect();
    let all: Vec<usize> = (0..network.pop_count()).collect();
    replay_storm_over_pairs(base, network.name(), &locations, storm, stride, &all, &all)
}

/// A continuously fed replay against one warm planner — the engine behind
/// `riskroute replay --stream`, which parses NDJSON advisories as they
/// arrive and evaluates each against the warm engine.
///
/// Unlike the batch replays, a session has no advisory list up front: feed
/// [`tick`](Self::tick) one [`RawAdvisory`] at a time and it returns the
/// finished [`ReplayTick`]. The session owns a single planner clone and
/// mutates its forecast in place, so consecutive advisories chain
/// cost-state deltas — with delta invalidation on, each tick repairs the
/// previous tick's route trees instead of recomputing them, and a tick
/// whose forecast is bitwise-unchanged (or ρ-invisible) recomputes nothing
/// at all. Ticks are evaluated exactly like the sequential batch loop, so
/// streaming a recorded advisory series reproduces
/// [`replay_raw_advisories`] byte for byte.
#[derive(Debug)]
pub struct ReplaySession {
    planner: Planner,
    locations: Vec<GeoPoint>,
    sources: Vec<usize>,
    dests: Vec<usize>,
    ticks: usize,
    degraded: usize,
}

impl ReplaySession {
    /// Open a session over all PoP pairs of the planner's network.
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] when `locations` does not match the
    /// planner's PoP count.
    pub fn all_pairs(base: &Planner, locations: &[GeoPoint]) -> Result<ReplaySession> {
        check_locations(locations, base)?;
        let all: Vec<usize> = (0..base.pop_count()).collect();
        Ok(ReplaySession {
            planner: base.clone(),
            locations: locations.to_vec(),
            sources: all.clone(),
            dests: all,
            ticks: 0,
            degraded: 0,
        })
    }

    /// Evaluate one advisory against the warm engine and return the tick.
    pub fn tick(&mut self, raw: &RawAdvisory) -> ReplayTick {
        let mut tick_span = riskroute_obs::span!("replay_tick");
        let tick = tick_for_raw(
            &mut self.planner,
            raw,
            &self.locations,
            &self.sources,
            &self.dests,
        );
        if tick_span.is_active() {
            tick_span.field("advisory", tick.advisory);
            tick_span.field("degraded", u64::from(tick.degraded));
            riskroute_obs::counter_add("replay_ticks", 1);
            if tick.degraded {
                riskroute_obs::counter_add("replay_degraded_ticks", 1);
            }
        }
        self.ticks += 1;
        if tick.degraded {
            self.degraded += 1;
        }
        tick
    }

    /// Number of advisories evaluated so far.
    pub fn ticks_processed(&self) -> usize {
        self.ticks
    }

    /// Number of degraded (unparseable-advisory) ticks so far.
    pub fn degraded_ticks(&self) -> usize {
        self.degraded
    }
}

fn tick_for_raw(
    planner: &mut Planner,
    raw: &RawAdvisory,
    locations: &[GeoPoint],
    sources: &[usize],
    dests: &[usize],
) -> ReplayTick {
    // §4.4: risk is derived from the advisory *text*. A parse failure drops
    // the forecast term for this tick (degraded mode) rather than aborting
    // the replay.
    let (forecast, pops_in_scope, pops_in_hurricane_winds, degraded) =
        match ForecastRisk::from_advisory_text(&raw.text) {
            Ok(field) => {
                let forecast: Vec<f64> = locations.iter().map(|&p| field.risk(p)).collect();
                let in_scope = locations.iter().filter(|&&p| field.in_scope(p)).count();
                let in_hurricane = locations
                    .iter()
                    .filter(|&&p| field.in_hurricane_winds(p))
                    .count();
                (forecast, in_scope, in_hurricane, false)
            }
            Err(_) => (vec![0.0; locations.len()], 0, 0, true),
        };
    planner.set_forecast(forecast);
    let sweep = planner.pair_sweep(sources, dests);
    let report =
        RatioReport::aggregate_with_stranded(sweep.outcomes.iter(), sweep.stranded.len());
    ReplayTick {
        advisory: raw.number,
        label: raw.label.clone(),
        pops_in_scope,
        pops_in_hurricane_winds,
        report,
        degraded,
    }
}

/// Replay a storm *proactively*: at each tick the forecast risk is built
/// from the storm's **projected** position `lead_hours` ahead (motion
/// extrapolated from the previous advisory, uncertainty cone widened,
/// confidence-discounted) instead of its current position — the
/// reroute-before-landfall behaviour the paper's §1 motivation describes
/// operators doing by hand before Sandy.
///
/// The first advisory has no predecessor to infer motion from, so the
/// series starts at the second advisory.
///
/// # Errors
/// Same contract as [`replay_storm`].
pub fn replay_storm_proactive(
    base: &Planner,
    network: &Network,
    storm: Storm,
    stride: usize,
    lead_hours: f64,
) -> Result<DisasterReplay> {
    check_stride(stride)?;
    let locations: Vec<GeoPoint> = network.pops().iter().map(|p| p.location).collect();
    check_locations(&locations, base)?;
    let all: Vec<usize> = (0..network.pop_count()).collect();
    let advisories = advisories_for(storm);
    let mut planner = base.clone();
    let mut ticks = Vec::new();
    for pair in advisories.windows(2).step_by(stride) {
        let (prev, adv) = (&pair[0], &pair[1]);
        let projected = riskroute_forecast::project(prev, adv, lead_hours);
        let field = projected.field;
        let forecast: Vec<f64> = locations.iter().map(|&p| field.risk(p)).collect();
        let pops_in_scope = locations.iter().filter(|&&p| field.in_scope(p)).count();
        let pops_in_hurricane_winds = locations
            .iter()
            .filter(|&&p| field.in_hurricane_winds(p))
            .count();
        planner.set_forecast(forecast);
        let sweep = planner.pair_sweep(&all, &all);
        let report =
            RatioReport::aggregate_with_stranded(sweep.outcomes.iter(), sweep.stranded.len());
        ticks.push(ReplayTick {
            advisory: adv.number,
            label: adv.timestamp.label(),
            pops_in_scope,
            pops_in_hurricane_winds,
            report,
            degraded: false,
        });
    }
    Ok(DisasterReplay {
        storm: storm.name().to_string(),
        network: network.name().to_string(),
        ticks,
    })
}

/// Fraction of `locations` that ever fall inside the storm's scope
/// (tropical-storm-force winds) over its whole advisory series — the §7.3
/// filter for regional networks ("more than 20 % of their PoPs in locations
/// contained in the scope of each event").
pub fn fraction_in_storm_scope(locations: &[GeoPoint], storm: Storm) -> f64 {
    fraction_hit(locations, storm, |f, p| f.in_scope(p))
}

/// Fraction of `locations` that ever fall inside *hurricane-force* winds —
/// the stricter §7.3 "PoPs in the path of the event" count (the paper finds
/// 86 Tier-1 PoPs for Irene, 8 for Katrina, 115 for Sandy).
pub fn fraction_in_hurricane_winds(locations: &[GeoPoint], storm: Storm) -> f64 {
    fraction_hit(locations, storm, |f, p| f.in_hurricane_winds(p))
}

fn fraction_hit(
    locations: &[GeoPoint],
    storm: Storm,
    hit: impl Fn(&ForecastRisk, GeoPoint) -> bool,
) -> f64 {
    if locations.is_empty() {
        return 0.0;
    }
    let advisories = advisories_for(storm);
    let fields: Vec<ForecastRisk> = advisories.iter().map(ForecastRisk::from_advisory).collect();
    let n = locations
        .iter()
        .filter(|&&p| fields.iter().any(|f| hit(f, p)))
        .count();
    n as f64 / locations.len() as f64
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::metric::{NodeRisk, RiskWeights};
    use riskroute_population::PopShares;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// A Gulf-coast diamond: the southern PoP (New Orleans) sits in
    /// Katrina's path; the northern detour (Little Rock) does not.
    fn gulf_network() -> Network {
        Network::new(
            "gulf",
            NetworkKind::Regional,
            vec![
                pop("Houston", 29.76, -95.37),
                pop("Little Rock", 34.75, -92.29),
                pop("New Orleans", 29.95, -90.07),
                pop("Atlanta", 33.75, -84.39),
            ],
            vec![(0, 1), (1, 3), (0, 2), (2, 3)],
        )
        .unwrap()
    }

    fn base_planner(net: &Network) -> Planner {
        let n = net.pop_count();
        Planner::new(
            net,
            NodeRisk::new(vec![0.0; n], vec![0.0; n]),
            PopShares::from_shares(vec![1.0 / n as f64; n]),
            RiskWeights::PAPER,
        )
    }

    #[test]
    fn katrina_forces_detours_around_new_orleans() {
        let net = gulf_network();
        let replay = replay_storm(&base_planner(&net), &net, Storm::Katrina, 4).unwrap();
        assert_eq!(replay.storm, "KATRINA");
        assert!(!replay.ticks.is_empty());
        // Early advisories: storm far offshore, nothing in scope, ratio 0.
        let first = &replay.ticks[0];
        assert_eq!(first.pops_in_hurricane_winds, 0);
        assert!(first.report.risk_reduction_ratio.abs() < 1e-9);
        // At peak, New Orleans is inside hurricane winds and RiskRoute gains.
        let peak = replay.peak().unwrap();
        assert!(peak.pops_in_hurricane_winds >= 1);
        assert!(
            peak.report.risk_reduction_ratio > 0.05,
            "peak ratio {}",
            peak.report.risk_reduction_ratio
        );
        assert!(replay.max_pops_in_hurricane_winds() >= 1);
    }

    #[test]
    fn sandy_misses_the_gulf_network() {
        let net = gulf_network();
        let replay = replay_storm(&base_planner(&net), &net, Storm::Sandy, 6).unwrap();
        for t in &replay.ticks {
            assert_eq!(t.pops_in_hurricane_winds, 0, "{}", t.label);
            assert!(t.report.risk_reduction_ratio.abs() < 1e-9);
        }
    }

    #[test]
    fn stride_controls_tick_count() {
        let net = gulf_network();
        let p = base_planner(&net);
        let all = replay_storm(&p, &net, Storm::Katrina, 1).unwrap();
        assert_eq!(all.ticks.len(), 61);
        let sparse = replay_storm(&p, &net, Storm::Katrina, 10).unwrap();
        assert_eq!(sparse.ticks.len(), 7);
        assert_eq!(sparse.ticks[1].advisory, 11);
    }

    #[test]
    fn base_planner_is_not_mutated() {
        let net = gulf_network();
        let p = base_planner(&net);
        let _ = replay_storm(&p, &net, Storm::Katrina, 8).unwrap();
        assert_eq!(p.risk().forecast(2), 0.0, "replay works on a clone");
    }

    #[test]
    fn scope_fraction_flags_gulf_for_katrina_only() {
        let net = gulf_network();
        let locs: Vec<GeoPoint> = net.pops().iter().map(|p| p.location).collect();
        let katrina = fraction_in_storm_scope(&locs, Storm::Katrina);
        let sandy = fraction_in_storm_scope(&locs, Storm::Sandy);
        assert!(katrina >= 0.25, "katrina fraction {katrina}");
        assert_eq!(sandy, 0.0);
        assert_eq!(fraction_in_storm_scope(&[], Storm::Katrina), 0.0);
        // Hurricane-force winds are a strict subset of the scope.
        let hf = fraction_in_hurricane_winds(&locs, Storm::Katrina);
        assert!(hf <= katrina);
    }

    #[test]
    fn zero_stride_is_a_typed_error() {
        let net = gulf_network();
        let err = replay_storm(&base_planner(&net), &net, Storm::Katrina, 0).unwrap_err();
        assert!(
            matches!(&err, Error::InvalidArgument { context, .. } if context == "stride"),
            "got {err:?}"
        );
        let err = raw_advisories(Storm::Sandy, 0).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument { .. }));
        let err =
            replay_storm_proactive(&base_planner(&net), &net, Storm::Katrina, 0, 24.0)
                .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument { .. }));
    }

    #[test]
    fn mismatched_locations_are_a_typed_error() {
        let net = gulf_network();
        let planner = base_planner(&net);
        let locs: Vec<GeoPoint> = net.pops().iter().take(2).map(|p| p.location).collect();
        let err = replay_raw_advisories(&planner, "gulf", &locs, "KATRINA", &[], &[], &[])
            .unwrap_err();
        assert!(
            matches!(&err, Error::InvalidArgument { context, .. } if context == "locations"),
            "got {err:?}"
        );
    }

    #[test]
    fn budgeted_replay_stops_and_resumes_bit_identically() {
        use crate::budget::StopReason;
        let net = gulf_network();
        let planner = base_planner(&net);
        let locs: Vec<GeoPoint> = net.pops().iter().map(|p| p.location).collect();
        let all: Vec<usize> = (0..net.pop_count()).collect();
        let raws = raw_advisories(Storm::Katrina, 2).unwrap();
        let clean = replay_raw_advisories(&planner, "gulf", &locs, "KATRINA", &raws, &all, &all)
            .unwrap();
        // Stop after 5 ticks, then resume with the partial prefix.
        let budget = WorkBudget::unlimited().with_max_work(5);
        let run = replay_raw_advisories_budgeted(
            &planner, "gulf", &locs, "KATRINA", &raws, &all, &all,
            Vec::new(), &budget, |_, _| {},
        )
        .unwrap();
        let Budgeted::Partial {
            completed,
            resume_state,
            stopped,
        } = run
        else {
            panic!("5-unit budget must interrupt a {}-tick sweep", raws.len());
        };
        assert_eq!(stopped, StopReason::WorkExhausted);
        assert_eq!(completed.ticks.len(), 5);
        assert_eq!(resume_state.next_index, 5);
        assert_eq!(completed.ticks[..], clean.ticks[..5], "consistent prefix");
        let resumed = replay_raw_advisories_budgeted(
            &planner, "gulf", &locs, "KATRINA", &raws, &all, &all,
            completed.ticks, &WorkBudget::unlimited(), |_, _| {},
        )
        .unwrap();
        let Budgeted::Complete(resumed) = resumed else {
            panic!("unlimited resume must complete");
        };
        assert_eq!(resumed, clean, "resume must be bit-identical");
    }

    #[test]
    fn batch_callback_fires_every_checkpoint_batch_ticks() {
        let net = gulf_network();
        let planner = base_planner(&net);
        let locs: Vec<GeoPoint> = net.pops().iter().map(|p| p.location).collect();
        let all: Vec<usize> = (0..net.pop_count()).collect();
        let raws = raw_advisories(Storm::Katrina, 3).unwrap();
        assert!(raws.len() > CHECKPOINT_BATCH);
        let mut seen = Vec::new();
        let _ = replay_raw_advisories_budgeted(
            &planner, "gulf", &locs, "KATRINA", &raws, &all, &all,
            Vec::new(), &WorkBudget::unlimited(),
            |replay, next| {
                assert_eq!(replay.ticks.len(), next);
                seen.push(next);
            },
        )
        .unwrap();
        let expected: Vec<usize> = (1..=raws.len() / CHECKPOINT_BATCH)
            .map(|k| k * CHECKPOINT_BATCH)
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn oversized_resume_state_is_rejected() {
        let net = gulf_network();
        let planner = base_planner(&net);
        let locs: Vec<GeoPoint> = net.pops().iter().map(|p| p.location).collect();
        let all: Vec<usize> = (0..net.pop_count()).collect();
        let raws = raw_advisories(Storm::Katrina, 2).unwrap();
        let clean = replay_raw_advisories(&planner, "gulf", &locs, "KATRINA", &raws, &all, &all)
            .unwrap();
        let err = replay_raw_advisories_budgeted(
            &planner, "gulf", &locs, "KATRINA", &raws[..3], &all, &all,
            clean.ticks, &WorkBudget::unlimited(), |_, _| {},
        )
        .unwrap_err();
        assert!(
            matches!(&err, Error::InvalidArgument { context, .. } if context == "prior_ticks"),
            "got {err:?}"
        );
    }

    #[test]
    fn proactive_replay_reacts_before_reactive() {
        // With a 48 h lead, the Gulf diamond should see Katrina risk at an
        // earlier advisory than the live-field replay does.
        let net = gulf_network();
        let planner = base_planner(&net);
        let reactive = replay_storm(&planner, &net, Storm::Katrina, 1).unwrap();
        let proactive =
            replay_storm_proactive(&planner, &net, Storm::Katrina, 1, 48.0).unwrap();
        let first_reaction = |r: &DisasterReplay| {
            r.ticks
                .iter()
                .find(|t| t.report.risk_reduction_ratio > 1e-6)
                .map(|t| t.advisory)
        };
        let re = first_reaction(&reactive).expect("Katrina hits the gulf");
        let pro = first_reaction(&proactive).expect("projection sees it coming");
        assert!(
            pro < re,
            "proactive first reaction at advisory {pro}, reactive at {re}"
        );
    }

    #[test]
    fn proactive_with_zero_lead_tracks_reactive() {
        let net = gulf_network();
        let planner = base_planner(&net);
        let reactive = replay_storm(&planner, &net, Storm::Katrina, 1).unwrap();
        let proactive =
            replay_storm_proactive(&planner, &net, Storm::Katrina, 1, 0.0).unwrap();
        // Proactive at lead 0 sees the same fields one advisory later
        // (it starts at advisory 2); compare aligned ticks.
        for tick in &proactive.ticks {
            let matching = reactive
                .ticks
                .iter()
                .find(|t| t.advisory == tick.advisory)
                .expect("same advisory exists");
            assert_eq!(tick.pops_in_scope, matching.pops_in_scope);
            assert!(
                (tick.report.risk_reduction_ratio - matching.report.risk_reduction_ratio).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn corrupted_advisories_degrade_without_changing_tick_count() {
        // The degraded-mode contract: a replay over a feed where 20% of the
        // advisory texts are garbled yields the same tick count as the clean
        // run, with exactly the corrupted ticks flagged degraded, historical-
        // only ratios on those ticks, and finite ratios throughout.
        let net = gulf_network();
        let planner = base_planner(&net);
        let locs: Vec<GeoPoint> = net.pops().iter().map(|p| p.location).collect();
        let all: Vec<usize> = (0..net.pop_count()).collect();
        let mut raws = raw_advisories(Storm::Katrina, 1).unwrap();
        assert_eq!(raws.len(), 61);
        let clean = replay_raw_advisories(&planner, "gulf", &locs, "KATRINA", &raws, &all, &all)
            .unwrap();
        let mut corrupted = 0;
        for (i, raw) in raws.iter_mut().enumerate() {
            if i % 5 == 0 {
                raw.text = format!("...STATIC... {}", &raw.text[..raw.text.len().min(8)]);
                corrupted += 1;
            }
        }
        let dirty = replay_raw_advisories(&planner, "gulf", &locs, "KATRINA", &raws, &all, &all)
            .unwrap();
        assert_eq!(dirty.ticks.len(), clean.ticks.len(), "no tick is dropped");
        assert_eq!(dirty.degraded_ticks(), corrupted);
        for (d, c) in dirty.ticks.iter().zip(&clean.ticks) {
            assert!(d.report.risk_reduction_ratio.is_finite());
            assert!(d.report.distance_increase_ratio.is_finite());
            if d.degraded {
                // Forecast dropped: this planner has zero historical risk, so
                // the degraded tick reverts to the zero-ratio baseline.
                assert_eq!(d.pops_in_scope, 0);
                assert!(d.report.risk_reduction_ratio.abs() < 1e-12);
            } else {
                assert_eq!(d.report, c.report, "clean ticks are untouched");
            }
        }
        assert_eq!(clean.degraded_ticks(), 0);
    }

    #[test]
    fn labels_carry_timestamps() {
        let net = gulf_network();
        let replay = replay_storm(&base_planner(&net), &net, Storm::Katrina, 20).unwrap();
        assert!(replay.ticks[0].label.contains("AUG"));
        assert!(replay.ticks[0].label.contains("2005"));
    }
}
