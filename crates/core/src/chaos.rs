//! Seeded chaos-injection harness.
//!
//! A [`FaultPlan`] is a deterministic, seed-derived bundle of faults —
//! dropped links, garbled or truncated advisory text, deleted hazard
//! events, zeroed population blocks, and non-finite entry costs — that
//! [`run_chaos`] injects into a full corpus pipeline (topology → population
//! → hazards → planner → disaster replay → ratio aggregation). The driver
//! asserts the degraded-mode invariants the rest of the crate promises:
//!
//! - **No panic**: every stage completes under every plan.
//! - **Defined degradation**: corrupted advisories yield *flagged* degraded
//!   ticks (never dropped ticks), partitions yield *counted* stranded pairs
//!   (never aborted sweeps), poisoned entry costs *isolate* their PoPs
//!   (never crash the search), and every reported ratio stays finite.
//!
//! Everything is keyed off the plan's seed, so a failing plan replays
//! exactly with `FaultPlan::from_seed(seed)`.
//!
//! Two harness extensions cover **interruption of the process itself**
//! (PR 2's crash-consistency work):
//!
//! - Each plan also injects a [`SnapshotFault`] — truncated snapshot bytes
//!   or a stale format version — and asserts the checkpoint loader rejects
//!   the damage with a *typed* error ([`Error::SnapshotIntegrity`] /
//!   [`Error::SnapshotVersion`], never a panic) while
//!   [`crate::checkpoint::load_snapshot_with_fallback`] still recovers the
//!   job line whenever possible, so `resume` can fall back to a fresh run.
//! - [`run_kill_resume`] kills a provisioning run and a replay sweep at a
//!   seeded iteration via the cooperative cancel flag, round-trips the last
//!   checkpoint through the wire format, resumes, and asserts the resumed
//!   result is **bit-identical** to the uninterrupted run.
//!
//! A third extension covers the **scenario-fork engine**
//! ([`crate::scenario`]): [`run_fork_faults`] kills an N-1 resilience sweep
//! mid-run and resumes it through a wire-format sweep snapshot (bit-identical
//! resume), forks with *every* node deactivated (must degrade to all-stranded
//! accounting, never panic), and forks with an empty delta (must alias the
//! base planner — same cost stamp, same bits, cache reuse included).

use crate::budget::{Budgeted, WorkBudget};
use crate::checkpoint::{self, LoadOutcome, Snapshot, SnapshotProgress};
use crate::error::Error;
use crate::intradomain::Planner;
use crate::metric::{NodeRisk, RiskWeights};
use crate::provisioning::{greedy_links, greedy_links_budgeted, greedy_links_resume};
use crate::replay::{
    raw_advisories, replay_raw_advisories, replay_raw_advisories_budgeted, RawAdvisory,
};
use crate::routing::risk_sssp;
use crate::scenario::{
    base_exposure, run_sweep, run_sweep_budgeted, scenario_specs, ScenarioDelta, ScenarioFork,
    SweepMode, SweepPrior,
};
use riskroute_forecast::{Storm, ALL_STORMS};
use riskroute_geo::GeoPoint;
use riskroute_hazard::HistoricalRisk;
use riskroute_par::Parallelism;
use riskroute_population::{PopShares, PopulationModel};
use riskroute_rng::StdRng;
use riskroute_topology::{Corpus, Network, NetworkKind, Pop};

/// Replay stride used by the harness (every 4th advisory — enough ticks to
/// exercise the storm's approach, peak, and decay without dominating the
/// suite's runtime).
const CHAOS_STRIDE: usize = 4;
/// Synthetic census blocks per plan.
const CHAOS_BLOCKS: usize = 800;
/// Hazard events per kind before deletion faults.
const CHAOS_EVENT_CAP: usize = 60;

/// A fault injected into the *checkpoint snapshot* after the replay runs —
/// the crash-corruption half of the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFault {
    /// Leave the snapshot intact (it must then load and round-trip).
    None,
    /// Truncate the snapshot at a seeded byte offset (a crash mid-`write`
    /// without the atomic-rename discipline).
    TruncateBytes,
    /// Rewrite the header to an unsupported future format version.
    StaleVersion,
}

impl SnapshotFault {
    /// Stable name used in reports and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            SnapshotFault::None => "none",
            SnapshotFault::TruncateBytes => "truncate-bytes",
            SnapshotFault::StaleVersion => "stale-version",
        }
    }
}

/// A deterministic, seed-derived bundle of faults to inject into one
/// pipeline run. Identical seeds produce identical plans (and identical
/// [`ChaosReport`]s), so failures replay exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; all fault placement derives from it.
    pub seed: u64,
    /// Fraction of the chosen network's links to drop (may partition it).
    pub drop_link_fraction: f64,
    /// Fraction of advisory texts to garble (character noise).
    pub garble_advisory_fraction: f64,
    /// Fraction of advisory texts to truncate mid-sentence.
    pub truncate_advisory_fraction: f64,
    /// Fraction of each hazard corpus' events to delete.
    pub delete_event_fraction: f64,
    /// Fraction of PoP population shares to zero out.
    pub zero_population_fraction: f64,
    /// Fraction of PoPs whose entry cost is poisoned non-finite.
    pub poison_cost_fraction: f64,
    /// Corruption applied to the run's checkpoint snapshot.
    pub snapshot_fault: SnapshotFault,
}

impl FaultPlan {
    /// Derive a plan from a seed. Fault intensities are drawn from ranges
    /// wide enough to partition topologies and blind the forecast, but they
    /// never take a fraction past ~0.45 — a plan that deletes *everything*
    /// tests vacuous behaviour, not degradation.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        FaultPlan {
            seed,
            drop_link_fraction: rng.gen_range(0.05..0.40),
            garble_advisory_fraction: rng.gen_range(0.05..0.30),
            truncate_advisory_fraction: rng.gen_range(0.05..0.30),
            delete_event_fraction: rng.gen_range(0.0..0.45),
            zero_population_fraction: rng.gen_range(0.0..0.40),
            poison_cost_fraction: rng.gen_range(0.05..0.35),
            snapshot_fault: match rng.gen_range(0..3usize) {
                0 => SnapshotFault::None,
                1 => SnapshotFault::TruncateBytes,
                _ => SnapshotFault::StaleVersion,
            },
        }
    }

    /// The `count` plans of a suite rooted at `base_seed` (seeds
    /// `base_seed..base_seed + count`).
    pub fn suite(base_seed: u64, count: usize) -> Vec<FaultPlan> {
        (0..count as u64)
            .map(|i| FaultPlan::from_seed(base_seed.wrapping_add(i)))
            .collect()
    }
}

/// What one chaos run did and how the pipeline degraded — the
/// defined-degradation evidence for one [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The plan's seed.
    pub seed: u64,
    /// Network the faults were injected into.
    pub network: String,
    /// Storm replayed under the faults.
    pub storm: String,
    /// Links dropped from the topology.
    pub dropped_links: usize,
    /// Advisory texts corrupted (garbled + truncated).
    pub corrupted_advisories: usize,
    /// Hazard events deleted across all corpora.
    pub deleted_events: usize,
    /// Population shares zeroed.
    pub zeroed_blocks: usize,
    /// PoPs with poisoned (non-finite) entry costs.
    pub poisoned_pops: usize,
    /// Ticks the replay produced (always the full advisory count).
    pub total_ticks: usize,
    /// Ticks that ran in degraded (forecast-dropped) mode.
    pub degraded_ticks: usize,
    /// Stranded pairs in the post-storm ratio sweep.
    pub stranded_pairs: usize,
    /// PoPs isolated by the poisoned-cost search.
    pub isolated_pops: usize,
    /// Whether every reported ratio stayed finite.
    pub finite_ratios: bool,
    /// Which snapshot corruption was injected (stable name).
    pub snapshot_fault: String,
    /// Whether the checkpoint loader honoured its contract: a clean
    /// snapshot loads and round-trips bit-identically; a corrupted one is
    /// rejected with a typed error (never a panic).
    pub snapshot_contract_held: bool,
    /// Whether the job line was still recoverable from the (possibly
    /// corrupted) snapshot, enabling the fresh-run fallback.
    pub snapshot_job_recovered: bool,
}

impl ChaosReport {
    /// One-line summary for the CLI table.
    pub fn summary_line(&self) -> String {
        format!(
            "seed {:>4}  {:<16} {:<8} links -{:<3} adv x{:<3} events -{:<4} \
             shares 0x{:<3} poisoned {:<3} | ticks {:>2} degraded {:>2} \
             stranded {:>4} isolated {:>2} finite {} | snap {:<14} held {} job {}",
            self.seed,
            self.network,
            self.storm,
            self.dropped_links,
            self.corrupted_advisories,
            self.deleted_events,
            self.zeroed_blocks,
            self.poisoned_pops,
            self.total_ticks,
            self.degraded_ticks,
            self.stranded_pairs,
            self.isolated_pops,
            self.finite_ratios,
            self.snapshot_fault,
            self.snapshot_contract_held,
            self.snapshot_job_recovered,
        )
    }

    /// Which fault-plan entries actually fired (injected a nonzero amount
    /// of damage), as `"kind(count)"` labels. A plan can request a fault
    /// that lands nowhere (e.g. a tiny fraction of a tiny network), so the
    /// fired list — not the plan — is the ground truth of what this run
    /// exercised.
    pub fn fired_faults(&self) -> Vec<String> {
        let mut fired = Vec::new();
        let mut push = |label: &str, n: usize| {
            if n > 0 {
                fired.push(format!("{label}({n})"));
            }
        };
        push("drop_links", self.dropped_links);
        push("corrupt_advisories", self.corrupted_advisories);
        push("delete_events", self.deleted_events);
        push("zero_shares", self.zeroed_blocks);
        push("poison_costs", self.poisoned_pops);
        if self.snapshot_fault != SnapshotFault::None.name() {
            fired.push(format!("snapshot({})", self.snapshot_fault));
        }
        fired
    }
}

/// Pick `fraction` of `0..n` (rounded, at least one when the fraction is
/// positive and `n > 0`, never all of them for n > 1).
fn pick_indices(rng: &mut StdRng, n: usize, fraction: f64) -> Vec<usize> {
    if n == 0 || fraction <= 0.0 {
        return Vec::new();
    }
    let want = ((n as f64 * fraction).round() as usize)
        .max(1)
        .min(n.saturating_sub(1).max(1));
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    idx.truncate(want);
    idx.sort_unstable();
    idx
}

/// Drop a fraction of links from `network`. The surviving link set is a
/// subset of a valid network's links, so rebuilding cannot fail.
fn drop_links(network: &Network, fraction: f64, rng: &mut StdRng) -> (Network, usize) {
    let doomed = pick_indices(rng, network.link_count(), fraction);
    let keep: Vec<(usize, usize)> = network
        .links()
        .iter()
        .enumerate()
        .filter(|(i, _)| !doomed.contains(i))
        .map(|(_, l)| (l.a, l.b))
        .collect();
    let degraded = match Network::new(
        network.name(),
        network.kind(),
        network.pops().to_vec(),
        keep,
    ) {
        Ok(net) => net,
        // A subset of already-validated links cannot introduce range,
        // self-link, or duplicate violations.
        Err(_) => unreachable!("dropping links from a valid network keeps it valid"),
    };
    (degraded, doomed.len())
}

/// Corrupt a fraction of the advisory stream: garbled texts get character
/// noise heavy enough to defeat the §4.4 parser; truncated texts are cut
/// off before the positional sentence. Returns how many were touched.
fn corrupt_advisories(raws: &mut [RawAdvisory], plan: &FaultPlan, rng: &mut StdRng) -> usize {
    let garble = pick_indices(rng, raws.len(), plan.garble_advisory_fraction);
    for &i in &garble {
        raws[i].text = raws[i]
            .text
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() && rng.gen_bool(0.6) {
                    '#'
                } else {
                    c
                }
            })
            .collect();
    }
    let truncate = pick_indices(rng, raws.len(), plan.truncate_advisory_fraction);
    for &i in &truncate {
        let cut = raws[i].text.len().min(rng.gen_range(0..40usize));
        let at = (0..=cut).rev().find(|&b| raws[i].text.is_char_boundary(b));
        raws[i].text.truncate(at.unwrap_or(0));
    }
    let mut touched: Vec<usize> = garble;
    touched.extend(truncate);
    touched.sort_unstable();
    touched.dedup();
    touched.len()
}

/// Run the full corpus pipeline under one fault plan, asserting the
/// degraded-mode invariants along the way.
///
/// # Errors
/// Propagates [`Error::UnknownNetwork`] if the corpus has no regional
/// network to target (cannot happen with the standard corpus) — every fault
/// itself must degrade, not error.
///
/// # Panics
/// Panics only when a degradation invariant is violated — which is exactly
/// the regression the harness exists to catch.
pub fn run_chaos(plan: &FaultPlan) -> Result<ChaosReport, Error> {
    run_chaos_at(plan, Parallelism::Sequential)
}

/// [`run_chaos`] with the pipeline's sweeps running under an explicit
/// [`Parallelism`] setting — the harness's *threads* dimension. The report
/// must be identical at every setting (the determinism contract), so the
/// suite runs each plan at two worker counts and diffs the reports: any
/// divergence is a data race or a broken ordered reduction.
///
/// # Errors
/// Same contract as [`run_chaos`].
pub fn run_chaos_at(plan: &FaultPlan, parallelism: Parallelism) -> Result<ChaosReport, Error> {
    let mut rng = StdRng::seed_from_u64(plan.seed);

    // --- Substrate: corpus topology, population, hazards ----------------
    let corpus = Corpus::standard(plan.seed);
    let regionals: Vec<&Network> = corpus
        .all_networks()
        .filter(|n| n.kind() == NetworkKind::Regional)
        .collect();
    if regionals.is_empty() {
        return Err(Error::UnknownNetwork("<any regional>".into()));
    }
    let target = regionals[rng.gen_range(0..regionals.len())];
    let storm = ALL_STORMS[rng.gen_range(0..ALL_STORMS.len())];

    // --- Fault: drop links (may partition the topology) ------------------
    let (network, dropped_links) = drop_links(target, plan.drop_link_fraction, &mut rng);

    // --- Fault: delete hazard events (thinner KDE corpus) ----------------
    let survivors = ((CHAOS_EVENT_CAP as f64) * (1.0 - plan.delete_event_fraction))
        .round()
        .max(1.0) as usize;
    let deleted_events = (CHAOS_EVENT_CAP - survivors) * 5; // five corpora
    let hazards = HistoricalRisk::standard(plan.seed, Some(survivors));

    // --- Fault: zero population blocks -----------------------------------
    let population = PopulationModel::synthesize(plan.seed, CHAOS_BLOCKS);
    let mut shares = PopShares::assign(&population, &network, None)
        .shares()
        .to_vec();
    let zeroed = pick_indices(&mut rng, shares.len(), plan.zero_population_fraction);
    for &i in &zeroed {
        shares[i] = 0.0;
    }
    let planner = Planner::new(
        &network,
        NodeRisk::from_historical(&network, &hazards),
        PopShares::from_shares(shares),
        RiskWeights::PAPER,
    )
    .with_parallelism(parallelism);

    // --- Fault: corrupt the advisory feed, then replay --------------------
    let mut raws = raw_advisories(storm, CHAOS_STRIDE)?;
    let expected_ticks = raws.len();
    let corrupted_advisories = corrupt_advisories(&mut raws, plan, &mut rng);
    let locations: Vec<GeoPoint> = network.pops().iter().map(|p| p.location).collect();
    let all: Vec<usize> = (0..network.pop_count()).collect();
    let replay = replay_raw_advisories(
        &planner,
        network.name(),
        &locations,
        storm.name(),
        &raws,
        &all,
        &all,
    )?;
    assert_eq!(
        replay.ticks.len(),
        expected_ticks,
        "degraded replay must keep every tick"
    );
    let mut finite_ratios = true;
    for tick in &replay.ticks {
        finite_ratios &= tick.report.risk_reduction_ratio.is_finite()
            && tick.report.distance_increase_ratio.is_finite();
    }

    // --- Fault: poison entry costs (non-finite weights) -------------------
    let poisoned = pick_indices(&mut rng, network.pop_count(), plan.poison_cost_fraction);
    let adjacency = planner.adjacency();
    let source = all
        .iter()
        .copied()
        .find(|s| !poisoned.contains(s))
        .unwrap_or(0);
    let tree = risk_sssp(adjacency, source, |v| {
        if poisoned.contains(&v) {
            f64::NAN
        } else {
            0.0
        }
    });
    let isolated_pops = all.iter().filter(|&&v| !tree.reachable(v)).count();
    for &p in &poisoned {
        assert!(
            p == source || !tree.reachable(p),
            "poisoned PoP {p} must be unroutable, not crash the search"
        );
    }

    // --- Fault: corrupt the run's checkpoint snapshot ----------------------
    let weights = RiskWeights::PAPER;
    let snapshot = Snapshot::replay(
        network.name(),
        &storm.name().to_lowercase(),
        CHAOS_STRIDE,
        weights.lambda_h,
        weights.lambda_f,
        &replay,
        replay.ticks.len(),
    );
    let text = snapshot.to_text();
    let corrupted_text = match plan.snapshot_fault {
        SnapshotFault::None => None,
        SnapshotFault::TruncateBytes => {
            // Stop short of len-1: cutting only the trailing newline leaves
            // a document that still parses, which tests nothing.
            let cut = rng.gen_range(1..text.len() - 1);
            let at = (0..=cut)
                .rev()
                .find(|&b| text.is_char_boundary(b))
                .unwrap_or(0);
            Some(text[..at].to_string())
        }
        SnapshotFault::StaleVersion => {
            Some(text.replacen("riskroute-snapshot/1", "riskroute-snapshot/99", 1))
        }
    };
    let (snapshot_contract_held, snapshot_job_recovered) = match &corrupted_text {
        // Clean snapshot: must load and round-trip bit-identically.
        None => (
            checkpoint::load_snapshot(&text)
                .map(|s| s == snapshot)
                .unwrap_or(false),
            true,
        ),
        // Corrupted snapshot: the strict loader must reject it with a typed
        // error (reaching this line at all proves it did not panic), and the
        // fallback loader may still salvage the job line.
        Some(bad) => (
            checkpoint::load_snapshot(bad).is_err(),
            matches!(
                checkpoint::load_snapshot_with_fallback(bad),
                Ok(LoadOutcome::Fallback { .. })
            ),
        ),
    };

    // --- Aggregate ratios on the degraded topology -------------------------
    let report = planner.ratio_report();
    finite_ratios &= report.risk_reduction_ratio.is_finite()
        && report.distance_increase_ratio.is_finite();
    assert!(
        report.is_informative() || report.stranded_pairs > 0 || network.pop_count() < 2,
        "an uninformative sweep must account for its pairs as stranded"
    );

    let chaos_report = ChaosReport {
        seed: plan.seed,
        network: network.name().to_string(),
        storm: storm.name().to_string(),
        dropped_links,
        corrupted_advisories,
        deleted_events,
        zeroed_blocks: zeroed.len(),
        poisoned_pops: poisoned.len(),
        total_ticks: replay.ticks.len(),
        degraded_ticks: replay.degraded_ticks(),
        stranded_pairs: report.stranded_pairs,
        isolated_pops,
        finite_ratios,
        snapshot_fault: plan.snapshot_fault.name().to_string(),
        snapshot_contract_held,
        snapshot_job_recovered,
    };
    if riskroute_obs::is_enabled() {
        riskroute_obs::counter_add("chaos_runs", 1);
        riskroute_obs::counter_add("chaos_faults_links_dropped", dropped_links as u64);
        riskroute_obs::counter_add(
            "chaos_faults_advisories_corrupted",
            corrupted_advisories as u64,
        );
        riskroute_obs::counter_add("chaos_faults_events_deleted", deleted_events as u64);
        riskroute_obs::counter_add("chaos_faults_shares_zeroed", zeroed.len() as u64);
        riskroute_obs::counter_add("chaos_faults_costs_poisoned", poisoned.len() as u64);
        if plan.snapshot_fault != SnapshotFault::None {
            riskroute_obs::counter_add("chaos_faults_snapshot", 1);
        }
    }
    Ok(chaos_report)
}

/// Worker counts the suites exercise for the *threads* dimension: the exact
/// sequential path plus a small pool (2 workers keeps chunk hand-offs and
/// steals in play without starving CI machines).
pub const CHAOS_THREAD_MATRIX: &[Parallelism] =
    &[Parallelism::Sequential, Parallelism::Threads(2)];

/// Run a whole suite of seeded plans; every plan must complete (the no-panic
/// invariant) and every report must have finite ratios. Each plan runs at
/// every [`CHAOS_THREAD_MATRIX`] worker count and the reports are diffed —
/// the returned reports are the sequential ones.
///
/// # Errors
/// Propagates the first [`run_chaos_at`] error.
///
/// # Panics
/// Panics when a parallel run's report diverges from the sequential one —
/// evidence of a data race or a broken ordered reduction.
pub fn run_chaos_suite(base_seed: u64, count: usize) -> Result<Vec<ChaosReport>, Error> {
    FaultPlan::suite(base_seed, count)
        .iter()
        .map(|plan| {
            let sequential = run_chaos_at(plan, Parallelism::Sequential)?;
            for &par in CHAOS_THREAD_MATRIX {
                if par.is_sequential() {
                    continue;
                }
                let parallel = run_chaos_at(plan, par)?;
                assert_eq!(
                    parallel, sequential,
                    "seed {}: chaos report diverged at {par}",
                    plan.seed
                );
            }
            Ok(sequential)
        })
        .collect()
}

/// Sanity check a completed report against the defined-degradation
/// contract; returns the violations (empty = clean).
pub fn violations(report: &ChaosReport) -> Vec<String> {
    let mut v = Vec::new();
    if !report.finite_ratios {
        v.push(format!("seed {}: non-finite ratio reported", report.seed));
    }
    if report.degraded_ticks > report.corrupted_advisories {
        v.push(format!(
            "seed {}: {} degraded ticks but only {} corrupted advisories",
            report.seed, report.degraded_ticks, report.corrupted_advisories
        ));
    }
    if report.total_ticks == 0 {
        v.push(format!("seed {}: replay produced no ticks", report.seed));
    }
    if !report.snapshot_contract_held {
        v.push(format!(
            "seed {}: snapshot loader broke its contract under fault {:?}",
            report.seed, report.snapshot_fault
        ));
    }
    if report.snapshot_fault == SnapshotFault::StaleVersion.name() && !report.snapshot_job_recovered
    {
        v.push(format!(
            "seed {}: stale-version snapshot must still yield its job for the \
             fresh-run fallback",
            report.seed
        ));
    }
    v
}

// --- Kill/resume crash-consistency harness ----------------------------------

/// Evidence from one [`run_kill_resume`] crash-consistency run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillResumeReport {
    /// The seed that placed the kill points.
    pub seed: u64,
    /// Greedy iterations completed before the provisioning run was killed.
    pub provision_killed_after: usize,
    /// Whether the resumed provisioning run reproduced the uninterrupted
    /// [`crate::provisioning::GreedyLinks`] bit-identically.
    pub provision_identical: bool,
    /// Replay ticks completed before the sweep was killed.
    pub replay_killed_after: usize,
    /// Whether the resumed replay reproduced the uninterrupted
    /// [`crate::replay::DisasterReplay`] bit-identically.
    pub replay_identical: bool,
}

impl KillResumeReport {
    /// The crash-consistency invariant: both legs resumed bit-identically.
    pub fn identical(&self) -> bool {
        self.provision_identical && self.replay_identical
    }

    /// One-line summary for the CLI table.
    pub fn summary_line(&self) -> String {
        format!(
            "seed {:>4}  provision killed@{:<2} identical {:<5}  replay killed@{:<3} identical {}",
            self.seed,
            self.provision_killed_after,
            self.provision_identical,
            self.replay_killed_after,
            self.replay_identical,
        )
    }
}

fn fixture_pop(name: &str, lat: f64, lon: f64) -> Pop {
    let location = match GeoPoint::new(lat, lon) {
        Ok(p) => p,
        Err(_) => unreachable!("fixture coordinates are valid"),
    };
    Pop {
        name: name.into(),
        location,
    }
}

/// A horseshoe-with-gap topology rich enough to admit several greedy links,
/// with one risky PoP forcing detours — the provisioning leg's fixture.
fn provisioning_fixture() -> (Network, Planner) {
    let net = match Network::new(
        "chaos-horseshoe",
        NetworkKind::Regional,
        vec![
            fixture_pop("P0", 35.0, -100.0),
            fixture_pop("P1", 35.0, -97.0),
            fixture_pop("P2", 35.0, -94.0),
            fixture_pop("P3", 35.8, -94.0),
            fixture_pop("P4", 35.8, -100.0),
            fixture_pop("P5", 35.8, -97.0),
        ],
        vec![(0, 1), (1, 2), (2, 3), (3, 5), (5, 4)],
    ) {
        Ok(n) => n,
        Err(_) => unreachable!("static fixture is valid"),
    };
    let risk = NodeRisk::new(vec![0.0, 0.0, 2e-3, 0.0, 0.0, 0.0], vec![0.0; 6]);
    let shares = PopShares::from_shares(vec![1.0 / 6.0; 6]);
    let planner = Planner::new(&net, risk, shares, RiskWeights::historical_only(1e5));
    (net, planner)
}

/// The Gulf-coast diamond in Katrina's path — the replay leg's fixture.
fn replay_fixture() -> (Network, Planner) {
    let net = match Network::new(
        "chaos-gulf",
        NetworkKind::Regional,
        vec![
            fixture_pop("Houston", 29.76, -95.37),
            fixture_pop("Little Rock", 34.75, -92.29),
            fixture_pop("New Orleans", 29.95, -90.07),
            fixture_pop("Atlanta", 33.75, -84.39),
        ],
        vec![(0, 1), (1, 3), (0, 2), (2, 3)],
    ) {
        Ok(n) => n,
        Err(_) => unreachable!("static fixture is valid"),
    };
    let n = net.pop_count();
    let planner = Planner::new(
        &net,
        NodeRisk::new(vec![0.0; n], vec![0.0; n]),
        PopShares::from_shares(vec![1.0 / n as f64; n]),
        RiskWeights::PAPER,
    );
    (net, planner)
}

/// Kill a provisioning run and a replay sweep at seeded iterations, resume
/// each from a checkpoint round-tripped through the wire format, and check
/// the crash-consistency invariant: the resumed result must be
/// **bit-identical** to the uninterrupted run.
///
/// The kill is delivered through the cooperative cancel flag
/// ([`WorkBudget::cancel_handle`]) exactly as an operator or signal handler
/// would deliver it, and the resume state travels through
/// [`Snapshot::to_text`] → [`checkpoint::load_snapshot`], so the test
/// covers the serialization layer, not just the in-memory resume path.
///
/// # Errors
/// Propagates checkpoint or replay errors — any of which is itself a
/// harness failure, since this pipeline injects no input faults.
pub fn run_kill_resume(seed: u64) -> Result<KillResumeReport, Error> {
    run_kill_resume_at(seed, Parallelism::Sequential)
}

/// [`run_kill_resume`] with both legs' sweeps running under an explicit
/// [`Parallelism`] setting. A parallel run must place its seeded kill at
/// the same boundary and resume to the same bits as the sequential one —
/// the suite diffs the reports across [`CHAOS_THREAD_MATRIX`].
///
/// # Errors
/// Same contract as [`run_kill_resume`].
pub fn run_kill_resume_at(
    seed: u64,
    parallelism: Parallelism,
) -> Result<KillResumeReport, Error> {
    use std::sync::atomic::Ordering;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);

    // --- Provisioning leg -------------------------------------------------
    let (net, planner) = provisioning_fixture();
    let planner = planner.with_parallelism(parallelism);
    let k = 3;
    let weights = planner.weights();
    let rebuild = |risk: NodeRisk, shares_src: &Planner| {
        let shares = PopShares::from_shares(shares_src.shares().shares().to_vec());
        move |n: &Network| Planner::new(n, risk.clone(), shares.clone(), weights)
    };
    let uninterrupted = greedy_links(
        &net,
        &planner,
        k,
        rebuild(planner.risk().clone(), &planner),
    );
    let total = uninterrupted.added.len();
    // Kill strictly before the run finishes so the resume leg is exercised.
    let provision_killed_after = 1 + rng.gen_range(0..total.saturating_sub(1).max(1));
    let budget = WorkBudget::unlimited();
    let cancel = budget.cancel_handle();
    let mut last_snapshot = String::new();
    let run = greedy_links_budgeted(
        &net,
        &planner,
        k,
        rebuild(planner.risk().clone(), &planner),
        &budget,
        |links| {
            // Checkpoint every iteration (what the CLI does), then deliver
            // the kill at the seeded one.
            last_snapshot =
                Snapshot::provision(net.name(), k, weights.lambda_h, weights.lambda_f, links)
                    .to_text();
            if links.added.len() == provision_killed_after {
                cancel.store(true, Ordering::Relaxed);
            }
        },
    );
    let provision_identical = match run {
        Budgeted::Partial { completed, .. } => {
            let loaded = checkpoint::load_snapshot(&last_snapshot)?;
            let SnapshotProgress::Provision(prior) = loaded.progress else {
                return Err(Error::SnapshotIntegrity {
                    reason: "provisioning snapshot decoded to a replay progress".into(),
                });
            };
            if prior != completed {
                false
            } else {
                let resumed = greedy_links_resume(
                    &net,
                    &planner,
                    k,
                    rebuild(planner.risk().clone(), &planner),
                    prior,
                    &WorkBudget::unlimited(),
                    |_| {},
                );
                let (resumed, stopped) = resumed.into_parts();
                stopped.is_none() && resumed == uninterrupted
            }
        }
        // Degenerate fixture (fewer than two links): nothing to kill.
        Budgeted::Complete(completed) => completed == uninterrupted,
    };

    // --- Replay leg -------------------------------------------------------
    let (net, planner) = replay_fixture();
    let planner = planner.with_parallelism(parallelism);
    let weights = planner.weights();
    let locations: Vec<GeoPoint> = net.pops().iter().map(|p| p.location).collect();
    let all: Vec<usize> = (0..net.pop_count()).collect();
    let raws = raw_advisories(Storm::Katrina, CHAOS_STRIDE)?;
    let clean = replay_raw_advisories(
        &planner,
        net.name(),
        &locations,
        Storm::Katrina.name(),
        &raws,
        &all,
        &all,
    )?;
    let replay_killed_after = 1 + rng.gen_range(0..raws.len().saturating_sub(1).max(1));
    let budget = WorkBudget::unlimited().with_max_work(replay_killed_after as u64);
    let run = replay_raw_advisories_budgeted(
        &planner,
        net.name(),
        &locations,
        Storm::Katrina.name(),
        &raws,
        &all,
        &all,
        Vec::new(),
        &budget,
        |_, _| {},
    )?;
    let replay_identical = match run {
        Budgeted::Partial {
            completed,
            resume_state,
            ..
        } => {
            let text = Snapshot::replay(
                net.name(),
                "katrina",
                CHAOS_STRIDE,
                weights.lambda_h,
                weights.lambda_f,
                &completed,
                resume_state.next_index,
            )
            .to_text();
            let loaded = checkpoint::load_snapshot(&text)?;
            let SnapshotProgress::Replay { replay, next_index } = loaded.progress else {
                return Err(Error::SnapshotIntegrity {
                    reason: "replay snapshot decoded to a provisioning progress".into(),
                });
            };
            if next_index != replay.ticks.len() {
                false
            } else {
                let resumed = replay_raw_advisories_budgeted(
                    &planner,
                    net.name(),
                    &locations,
                    Storm::Katrina.name(),
                    &raws,
                    &all,
                    &all,
                    replay.ticks,
                    &WorkBudget::unlimited(),
                    |_, _| {},
                )?;
                let (resumed, stopped) = resumed.into_parts();
                stopped.is_none() && resumed == clean
            }
        }
        Budgeted::Complete(completed) => completed == clean,
    };

    Ok(KillResumeReport {
        seed,
        provision_killed_after,
        provision_identical,
        replay_killed_after,
        replay_identical,
    })
}

/// Run [`run_kill_resume`] across `count` seeds rooted at `base_seed`,
/// each seed at every [`CHAOS_THREAD_MATRIX`] worker count; the returned
/// reports are the sequential ones.
///
/// # Errors
/// Propagates the first failing run.
///
/// # Panics
/// Panics when a parallel run's report diverges from the sequential one.
pub fn run_kill_resume_suite(
    base_seed: u64,
    count: usize,
) -> Result<Vec<KillResumeReport>, Error> {
    (0..count as u64)
        .map(|i| {
            let seed = base_seed.wrapping_add(i);
            let sequential = run_kill_resume_at(seed, Parallelism::Sequential)?;
            for &par in CHAOS_THREAD_MATRIX {
                if par.is_sequential() {
                    continue;
                }
                let parallel = run_kill_resume_at(seed, par)?;
                assert_eq!(
                    parallel, sequential,
                    "seed {seed}: kill/resume report diverged at {par}"
                );
            }
            Ok(sequential)
        })
        .collect()
}

// --- Scenario-fork fault harness ---------------------------------------------

/// Evidence from one [`run_fork_faults`] run over the scenario-fork engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ForkFaultReport {
    /// The seed that placed the mid-sweep kill.
    pub seed: u64,
    /// Scenarios evaluated before the N-1 sweep was killed.
    pub sweep_killed_after: usize,
    /// Whether the sweep resumed from its wire-format snapshot to bits
    /// identical with the uninterrupted run.
    pub sweep_identical: bool,
    /// Stranded pairs reported by the fork with every node deactivated.
    pub all_off_stranded: usize,
    /// Whether the all-nodes-off fork degraded correctly: zero routable
    /// pairs, every pair stranded, zero accumulated bit-risk, no panic.
    pub all_off_ok: bool,
    /// Whether the empty-delta fork aliased the base planner: same cost
    /// stamp and bit-identical exposure.
    pub empty_delta_ok: bool,
}

impl ForkFaultReport {
    /// The fork-fault invariant: every leg held.
    pub fn identical(&self) -> bool {
        self.sweep_identical && self.all_off_ok && self.empty_delta_ok
    }

    /// One-line summary for the CLI table.
    pub fn summary_line(&self) -> String {
        format!(
            "seed {:>4}  sweep killed@{:<3} identical {:<5}  all-off stranded {:>3} ok {:<5}  \
             empty-delta alias {}",
            self.seed,
            self.sweep_killed_after,
            self.sweep_identical,
            self.all_off_stranded,
            self.all_off_ok,
            self.empty_delta_ok,
        )
    }
}

/// Inject fork-level faults into the scenario engine: kill an N-1 sweep at
/// a seeded scenario and resume it through a wire-format snapshot, fork
/// with every node deactivated, and fork with an empty delta — asserting
/// bit-identical resume, all-stranded degradation, and base aliasing
/// respectively.
///
/// # Errors
/// Propagates sweep or checkpoint errors — any of which is itself a harness
/// failure, since this pipeline injects no input faults.
pub fn run_fork_faults(seed: u64) -> Result<ForkFaultReport, Error> {
    run_fork_faults_at(seed, Parallelism::Sequential)
}

/// [`run_fork_faults`] with the sweep fanned out under an explicit
/// [`Parallelism`] setting; the suite diffs reports across
/// [`CHAOS_THREAD_MATRIX`].
///
/// # Errors
/// Same contract as [`run_fork_faults`].
pub fn run_fork_faults_at(
    seed: u64,
    parallelism: Parallelism,
) -> Result<ForkFaultReport, Error> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);

    // --- Fault: kill the N-1 sweep mid-run, resume from the snapshot ------
    let (net, planner) = provisioning_fixture();
    let planner = planner.with_parallelism(parallelism);
    let weights = planner.weights();
    let mode = SweepMode::N1;
    let clean = run_sweep(&planner, &net, mode)?;
    let total = scenario_specs(&net, mode).len();
    let sweep_killed_after = 1 + rng.gen_range(0..total.saturating_sub(1).max(1));
    let budget = WorkBudget::unlimited().with_max_work(sweep_killed_after as u64);
    let run = run_sweep_budgeted(&planner, &net, mode, None, &budget, |_, _| {})?;
    let sweep_identical = match run {
        Budgeted::Partial {
            completed,
            resume_state,
            ..
        } => {
            let text = Snapshot::sweep(
                net.name(),
                mode,
                weights.lambda_h,
                weights.lambda_f,
                completed.baseline,
                &completed.records,
                resume_state.next_index,
            )
            .to_text();
            let loaded = checkpoint::load_snapshot(&text)?;
            let SnapshotProgress::Sweep {
                baseline,
                records,
                next_index,
            } = loaded.progress
            else {
                return Err(Error::SnapshotIntegrity {
                    reason: "sweep snapshot decoded to another progress kind".into(),
                });
            };
            if next_index != records.len() {
                false
            } else {
                let resumed = run_sweep_budgeted(
                    &planner,
                    &net,
                    mode,
                    Some(SweepPrior { baseline, records }),
                    &WorkBudget::unlimited(),
                    |_, _| {},
                )?;
                let (resumed, stopped) = resumed.into_parts();
                stopped.is_none() && resumed == clean
            }
        }
        // Degenerate fixture (a single scenario): nothing to kill.
        Budgeted::Complete(completed) => completed == clean,
    };

    // --- Fault: fork with every node deactivated ---------------------------
    let n = net.pop_count();
    let all_off = (0..n).fold(ScenarioDelta::new(), |d, v| d.deactivate_node(v));
    let exp = ScenarioFork::fork(&planner, all_off).exposure();
    let all_off_stranded = exp.stranded_pairs;
    let all_off_ok =
        exp.routable_pairs == 0 && exp.stranded_pairs == n * (n - 1) / 2 && exp.bit_risk_total == 0.0;

    // --- Fault: fork with an empty delta -----------------------------------
    let base_exp = base_exposure(&planner);
    let fork = ScenarioFork::fork(&planner, ScenarioDelta::new());
    let fork_exp = fork.exposure();
    let empty_delta_ok = fork.is_base_alias()
        && fork.planner().cost_stamp() == planner.cost_stamp()
        && fork_exp.bit_risk_total.to_bits() == base_exp.bit_risk_total.to_bits()
        && fork_exp.routable_pairs == base_exp.routable_pairs
        && fork_exp.stranded_pairs == base_exp.stranded_pairs;

    Ok(ForkFaultReport {
        seed,
        sweep_killed_after,
        sweep_identical,
        all_off_stranded,
        all_off_ok,
        empty_delta_ok,
    })
}

/// Run [`run_fork_faults`] across `count` seeds rooted at `base_seed`, each
/// seed at every [`CHAOS_THREAD_MATRIX`] worker count; the returned reports
/// are the sequential ones.
///
/// # Errors
/// Propagates the first failing run.
///
/// # Panics
/// Panics when a parallel run's report diverges from the sequential one.
pub fn run_fork_fault_suite(
    base_seed: u64,
    count: usize,
) -> Result<Vec<ForkFaultReport>, Error> {
    (0..count as u64)
        .map(|i| {
            let seed = base_seed.wrapping_add(i);
            let sequential = run_fork_faults_at(seed, Parallelism::Sequential)?;
            for &par in CHAOS_THREAD_MATRIX {
                if par.is_sequential() {
                    continue;
                }
                let parallel = run_fork_faults_at(seed, par)?;
                assert_eq!(
                    parallel, sequential,
                    "seed {seed}: fork-fault report diverged at {par}"
                );
            }
            Ok(sequential)
        })
        .collect()
}

/// Connection-level fault kinds the serve daemon must absorb without
/// process exit (the fourth harness extension — transport chaos).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Random non-protocol bytes terminated by a newline.
    GarbageBytes,
    /// A valid request frame cut mid-document, then disconnect.
    TruncatedFrame,
    /// A complete request, then disconnect before reading the response.
    MidRequestDisconnect,
    /// A partial frame, then the client stalls without ever finishing it.
    StalledWriter,
    /// A frame nested deeper than the wire parse limit allows.
    DeepNesting,
    /// A single frame larger than the connection's frame cap.
    OversizedFrame,
}

impl ConnFault {
    /// Stable kebab-case name (used in reports and counter assertions).
    pub fn name(self) -> &'static str {
        match self {
            ConnFault::GarbageBytes => "garbage-bytes",
            ConnFault::TruncatedFrame => "truncated-frame",
            ConnFault::MidRequestDisconnect => "mid-request-disconnect",
            ConnFault::StalledWriter => "stalled-writer",
            ConnFault::DeepNesting => "deep-nesting",
            ConnFault::OversizedFrame => "oversized-frame",
        }
    }

    /// The obs counter this fault must drive when thrown at a live daemon.
    pub fn expected_counter(self) -> &'static str {
        match self {
            ConnFault::GarbageBytes | ConnFault::DeepNesting => "serve_frames_malformed",
            ConnFault::TruncatedFrame => "serve_frames_truncated",
            // The request itself is well-formed; the daemon must still have
            // executed it (and survived the dead peer on write-back).
            ConnFault::MidRequestDisconnect => "serve_requests_total",
            ConnFault::StalledWriter => "serve_clients_stalled",
            ConnFault::OversizedFrame => "serve_frames_oversized",
        }
    }
}

/// All connection fault kinds, in suite order.
pub const ALL_CONN_FAULTS: &[ConnFault] = &[
    ConnFault::GarbageBytes,
    ConnFault::TruncatedFrame,
    ConnFault::MidRequestDisconnect,
    ConnFault::StalledWriter,
    ConnFault::DeepNesting,
    ConnFault::OversizedFrame,
];

/// A seed-derived adversarial client script for one connection: the exact
/// bytes written and how the client behaves afterwards. The serve chaos
/// suite replays these against a live daemon; everything is a pure
/// function of the seed, so a failing plan replays exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnFaultPlan {
    /// The driving seed.
    pub seed: u64,
    /// Which fault this connection injects.
    pub fault: ConnFault,
    /// The bytes the chaotic client writes before its fault behavior.
    pub payload: Vec<u8>,
    /// Whether the client reads responses before closing (`false` models
    /// a peer that vanishes or stalls).
    pub reads_response: bool,
}

/// The frame cap the serve chaos suite configures, so
/// [`ConnFault::OversizedFrame`] payloads are reliably over it without
/// being expensive to generate.
pub const CHAOS_FRAME_CAP: usize = 4 << 10;

/// The wire nesting limit the suite assumes (matches
/// `riskroute_json::ParseLimits::strict`).
pub const CHAOS_WIRE_DEPTH: usize = 32;

impl ConnFaultPlan {
    /// Derive the plan for `seed` deterministically.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ed_270b_8d3c_91a7);
        let fault = ALL_CONN_FAULTS[rng.gen_range(0..ALL_CONN_FAULTS.len())];
        let base = br#"{"op":"ratio","network":"Sprint"}"#;
        let (payload, reads_response) = match fault {
            ConnFault::GarbageBytes => {
                let len = rng.gen_range(16..200usize);
                let mut bytes: Vec<u8> =
                    (0..len).map(|_| rng.gen_range(0x21..0x7fusize) as u8).collect();
                // Never start with 'G': the daemon multiplexes an HTTP
                // scrape endpoint on a "GET " prefix, and this fault must
                // exercise the NDJSON parse path.
                bytes[0] = b'?';
                bytes.push(b'\n');
                (bytes, true)
            }
            ConnFault::TruncatedFrame => {
                let cut = rng.gen_range(1..base.len());
                (base[..cut].to_vec(), false)
            }
            ConnFault::MidRequestDisconnect => {
                let mut bytes = base.to_vec();
                bytes.push(b'\n');
                (bytes, false)
            }
            ConnFault::StalledWriter => {
                let cut = rng.gen_range(1..base.len());
                (base[..cut].to_vec(), false)
            }
            ConnFault::DeepNesting => {
                let depth = CHAOS_WIRE_DEPTH + 1 + rng.gen_range(0..32usize);
                let mut doc = String::from(r#"{"op":"#);
                doc.push_str(&"[".repeat(depth));
                doc.push('0');
                doc.push_str(&"]".repeat(depth));
                doc.push('}');
                doc.push('\n');
                (doc.into_bytes(), true)
            }
            ConnFault::OversizedFrame => {
                let pad = CHAOS_FRAME_CAP + rng.gen_range(1..1024usize);
                let mut doc = String::from(r#"{"op":"ping","pad":""#);
                doc.push_str(&"x".repeat(pad));
                doc.push_str("\"}\n");
                (doc.into_bytes(), true)
            }
        };
        ConnFaultPlan {
            seed,
            fault,
            payload,
            reads_response,
        }
    }

    /// A deterministic suite of `count` plans seeded `base_seed..`,
    /// extended so every [`ConnFault`] kind appears at least once (tail
    /// plans use seeds `base_seed + 1000 + kind_index`).
    pub fn suite(base_seed: u64, count: usize) -> Vec<ConnFaultPlan> {
        let mut plans: Vec<ConnFaultPlan> = (0..count as u64)
            .map(|i| ConnFaultPlan::from_seed(base_seed + i))
            .collect();
        for (i, &fault) in ALL_CONN_FAULTS.iter().enumerate() {
            if !plans.iter().any(|p| p.fault == fault) {
                let mut extra = ConnFaultPlan::from_seed(base_seed + 1000 + i as u64);
                // from_seed picks the fault from the seed; force the kind
                // while keeping the payload deterministic for it.
                if extra.fault != fault {
                    extra = ConnFaultPlan::forced(base_seed + 1000 + i as u64, fault);
                }
                plans.push(extra);
            }
        }
        plans
    }

    /// Derive a plan for a specific fault kind (payload still seeded).
    pub fn forced(seed: u64, fault: ConnFault) -> Self {
        // Scan nearby derived seeds until the kind matches; bounded because
        // the kind draw is uniform over six variants.
        for probe in 0..1024u64 {
            let plan = ConnFaultPlan::from_seed(seed.wrapping_add(probe.wrapping_mul(7919)));
            if plan.fault == fault {
                return ConnFaultPlan { seed, ..plan };
            }
        }
        // Statistically unreachable (p ≈ (5/6)^1024); fall back to the
        // plain derivation so callers still get a valid plan.
        ConnFaultPlan::from_seed(seed)
    }

    /// One-line description for suite logs.
    pub fn summary_line(&self) -> String {
        format!(
            "conn seed {:>4}  fault {:<22}  payload {:>5} B  reads_response {}",
            self.seed,
            self.fault.name(),
            self.payload.len(),
            self.reads_response
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn plans_are_deterministic_and_distinct() {
        let a = FaultPlan::from_seed(7);
        let b = FaultPlan::from_seed(7);
        assert_eq!(a, b);
        let c = FaultPlan::from_seed(8);
        assert_ne!(a, c);
        for p in [&a, &c] {
            assert!(p.drop_link_fraction > 0.0 && p.drop_link_fraction < 0.5);
            assert!(p.poison_cost_fraction > 0.0 && p.poison_cost_fraction < 0.5);
        }
    }

    #[test]
    fn suite_derives_sequential_seeds() {
        let plans = FaultPlan::suite(100, 3);
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].seed, 100);
        assert_eq!(plans[2].seed, 102);
    }

    #[test]
    fn single_run_is_reproducible() {
        let plan = FaultPlan::from_seed(3);
        let a = run_chaos(&plan).unwrap();
        let b = run_chaos(&plan).unwrap();
        assert_eq!(a, b, "same plan, same report");
        assert!(a.finite_ratios);
        assert!(a.total_ticks > 0);
        assert!(violations(&a).is_empty(), "{:?}", violations(&a));
    }

    #[test]
    fn corruption_defeats_the_parser_often_enough() {
        // Garbling is probabilistic character noise; make sure it actually
        // produces degraded ticks somewhere across a few seeds (otherwise
        // the harness would silently stop exercising the degraded path).
        let any_degraded = (0..4)
            .map(|s| run_chaos(&FaultPlan::from_seed(s)).unwrap())
            .any(|r| r.degraded_ticks > 0);
        assert!(any_degraded, "no seed produced a degraded tick");
    }

    #[test]
    fn dropping_links_reports_them() {
        let plan = FaultPlan {
            seed: 11,
            drop_link_fraction: 0.35,
            garble_advisory_fraction: 0.0,
            truncate_advisory_fraction: 0.0,
            delete_event_fraction: 0.0,
            zero_population_fraction: 0.0,
            poison_cost_fraction: 0.1,
            snapshot_fault: SnapshotFault::None,
        };
        let r = run_chaos(&plan).unwrap();
        assert!(r.dropped_links > 0);
        assert_eq!(r.corrupted_advisories, 0);
        assert_eq!(r.degraded_ticks, 0, "clean feed, no degraded ticks");
        assert!(r.snapshot_contract_held, "clean snapshot must round-trip");
    }

    fn plan_with_snapshot_fault(seed: u64, fault: SnapshotFault) -> FaultPlan {
        FaultPlan {
            snapshot_fault: fault,
            ..FaultPlan::from_seed(seed)
        }
    }

    #[test]
    fn truncated_snapshots_error_typed_never_panic() {
        for seed in 0..4 {
            let r =
                run_chaos(&plan_with_snapshot_fault(seed, SnapshotFault::TruncateBytes)).unwrap();
            assert_eq!(r.snapshot_fault, "truncate-bytes");
            assert!(r.snapshot_contract_held, "seed {seed}: untyped rejection");
            assert!(violations(&r).is_empty(), "{:?}", violations(&r));
        }
    }

    #[test]
    fn stale_version_snapshots_error_typed_and_keep_the_job() {
        for seed in 0..4 {
            let r =
                run_chaos(&plan_with_snapshot_fault(seed, SnapshotFault::StaleVersion)).unwrap();
            assert_eq!(r.snapshot_fault, "stale-version");
            assert!(r.snapshot_contract_held, "seed {seed}: untyped rejection");
            assert!(
                r.snapshot_job_recovered,
                "seed {seed}: job must survive a stale header"
            );
            assert!(violations(&r).is_empty(), "{:?}", violations(&r));
        }
    }

    #[test]
    fn kill_resume_is_bit_identical_across_seeds() {
        // Acceptance criterion: ≥ 4 seeds, provisioning interrupted at a
        // seeded iteration, resumed from its snapshot, bit-identical output.
        let reports = run_kill_resume_suite(0, 5).unwrap();
        assert_eq!(reports.len(), 5);
        for r in &reports {
            assert!(r.identical(), "{}", r.summary_line());
            assert!(r.provision_killed_after >= 1);
            assert!(r.replay_killed_after >= 1);
        }
        // The kill point actually moves with the seed.
        assert!(
            reports
                .iter()
                .any(|r| r.replay_killed_after != reports[0].replay_killed_after),
            "seeded kill points must vary"
        );
    }

    #[test]
    fn chaos_reports_are_thread_count_invariant() {
        let plan = FaultPlan::from_seed(5);
        let seq = run_chaos_at(&plan, Parallelism::Sequential).unwrap();
        let par = run_chaos_at(&plan, Parallelism::Threads(2)).unwrap();
        assert_eq!(seq, par, "threads dimension must not change the report");
    }

    #[test]
    fn kill_resume_is_thread_count_invariant() {
        let seq = run_kill_resume_at(9, Parallelism::Sequential).unwrap();
        let par = run_kill_resume_at(9, Parallelism::Threads(2)).unwrap();
        assert_eq!(seq, par);
        assert!(seq.identical());
    }

    #[test]
    fn kill_resume_is_reproducible() {
        let a = run_kill_resume(2).unwrap();
        let b = run_kill_resume(2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn kill_resume_of_forked_sweeps_is_bit_identical_across_seeds() {
        let reports = run_fork_fault_suite(0, 4).unwrap();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.identical(), "{}", r.summary_line());
            assert!(r.sweep_killed_after >= 1);
        }
        // The kill point actually moves with the seed.
        assert!(
            reports
                .iter()
                .any(|r| r.sweep_killed_after != reports[0].sweep_killed_after),
            "seeded kill points must vary"
        );
    }

    #[test]
    fn fork_fault_reports_are_thread_count_invariant() {
        let seq = run_fork_faults_at(6, Parallelism::Sequential).unwrap();
        let par = run_fork_faults_at(6, Parallelism::Threads(2)).unwrap();
        assert_eq!(seq, par);
        assert!(seq.identical());
    }

    #[test]
    fn fork_faults_are_reproducible() {
        let a = run_fork_faults(1).unwrap();
        let b = run_fork_faults(1).unwrap();
        assert_eq!(a, b);
    }
}
