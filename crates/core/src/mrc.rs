//! Multiple Routing Configurations (MRC) for fast recovery — the §3.1
//! offline backup-configuration method the paper points to ("backup
//! configurations that use a composite link metric that includes RiskRoute
//! can be computed off line following the method described in [38]",
//! Kvalbein et al., INFOCOM 2006).
//!
//! This is the MRC idea in its node-protecting form: nodes are partitioned
//! into a small number of groups; configuration `c` *isolates* group `c`
//! (no transit through those nodes), and stays connected for everyone else.
//! When PoP `f` fails, traffic switches to the configuration isolating `f`
//! — whose routes provably avoid `f` — without any re-convergence. Routing
//! inside each configuration uses the full bit-risk metric, so recovery
//! paths are risk-aware too.

use crate::intradomain::Planner;
use crate::routing::RoutedPath;
use riskroute_graph::components::is_connected;
use riskroute_graph::Graph;
use riskroute_topology::{Network, PopId};

/// A set of backup configurations covering every single-PoP failure.
#[derive(Debug, Clone, PartialEq)]
pub struct MrcConfigurations {
    /// `group[v]` = index of the configuration isolating PoP v.
    group: Vec<usize>,
    /// Number of configurations.
    configs: usize,
}

impl MrcConfigurations {
    /// Greedily assign every PoP to one of `k` configurations such that,
    /// for every configuration `c`:
    ///
    /// 1. the topology minus `c`'s whole group stays connected (the
    ///    backbone every other flow keeps using), and
    /// 2. every node of `c` retains at least one neighbor *outside* `c`
    ///    (the restricted attachment MRC uses to let isolated nodes source
    ///    and sink traffic).
    ///
    /// Nodes are placed high-degree-first into the least-loaded feasible
    /// configuration. Returns `None` when the greedy finds no assignment
    /// with `k` configurations — raise `k`; topologies with articulation
    /// points are uncoverable at any `k` (no partition can protect a node
    /// whose removal disconnects the graph).
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn build(network: &Network, k: usize) -> Option<Self> {
        assert!(k > 0, "need at least one configuration");
        let n = network.pop_count();
        let mut group = vec![usize::MAX; n];
        // Assign high-degree nodes first: they are the hardest to isolate.
        let mut order: Vec<PopId> = (0..n).collect();
        let degree = |v: PopId| {
            network
                .links()
                .iter()
                .filter(|l| l.a == v || l.b == v)
                .count()
        };
        order.sort_by_key(|&v| std::cmp::Reverse(degree(v)));

        let mut sizes = vec![0usize; k];
        for &v in &order {
            // Try configurations least-loaded first (balance keeps groups
            // small, which is what makes both constraints satisfiable).
            let mut candidates: Vec<usize> = (0..k).collect();
            candidates.sort_by_key(|&c| (sizes[c], c));
            let mut placed = false;
            for c in candidates {
                group[v] = c;
                if Self::config_valid(network, &group, c) {
                    sizes[c] += 1;
                    placed = true;
                    break;
                }
                group[v] = usize::MAX;
            }
            if !placed {
                return None;
            }
        }
        Some(MrcConfigurations { group, configs: k })
    }

    /// Check both MRC validity constraints for configuration `c` under the
    /// (partial) assignment `group`.
    fn config_valid(network: &Network, group: &[usize], c: usize) -> bool {
        let n = network.pop_count();
        // (2) every member keeps an outside neighbor.
        for v in 0..n {
            if group[v] != c {
                continue;
            }
            let attached = network
                .links()
                .iter()
                .any(|l| (l.a == v && group[l.b] != c) || (l.b == v && group[l.a] != c));
            if !attached {
                return false;
            }
        }
        // (1) the complement stays connected.
        let keep: Vec<PopId> = (0..n).filter(|&v| group[v] != c).collect();
        if keep.len() <= 1 {
            // A backbone of at most one node cannot carry transit.
            return keep.len() == n || keep.len() + 1 == n;
        }
        let index: std::collections::HashMap<PopId, usize> =
            keep.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut g = Graph::with_nodes(keep.len());
        for l in network.links() {
            if let (Some(&a), Some(&b)) = (index.get(&l.a), index.get(&l.b)) {
                // Compacted indices are in range; lengths come from a valid
                // network.
                if g.add_edge(a, b, l.miles).is_err() {
                    debug_assert!(false, "complement link ({a},{b}) rejected");
                }
            }
        }
        is_connected(&g)
    }

    /// Number of configurations.
    pub fn config_count(&self) -> usize {
        self.configs
    }

    /// The configuration that isolates (protects against) PoP `v`.
    pub fn config_for(&self, v: PopId) -> usize {
        self.group[v]
    }

    /// The PoPs isolated by configuration `c`.
    pub fn isolated_by(&self, c: usize) -> Vec<PopId> {
        (0..self.group.len())
            .filter(|&v| self.group[v] == c)
            .collect()
    }

    /// Route `src → dst` after PoP `failed` has failed: bit-risk routing in
    /// the configuration isolating `failed`, which transits neither the
    /// failed PoP nor any other PoP of its group (MRC's no-reconvergence
    /// guarantee). `None` when `src`/`dst` is the failed PoP itself or no
    /// route exists.
    pub fn route_around_failure(
        &self,
        planner: &Planner,
        network: &Network,
        failed: PopId,
        src: PopId,
        dst: PopId,
    ) -> Option<RoutedPath> {
        if src == failed || dst == failed || src == dst {
            return None;
        }
        let c = self.config_for(failed);
        // Build the restricted planner view: drop every link touching an
        // isolated node of configuration c (except links at src/dst when
        // they themselves are isolated — MRC lets isolated nodes source and
        // sink traffic via restricted links; we model that by keeping their
        // links but never transiting other isolated nodes).
        let isolated: std::collections::HashSet<PopId> = self.isolated_by(c).into_iter().collect();
        let transit_banned = |v: PopId| isolated.contains(&v) && v != src && v != dst;
        let links: Vec<(PopId, PopId)> = network
            .links()
            .iter()
            .filter(|l| !transit_banned(l.a) && !transit_banned(l.b))
            .map(|l| (l.a, l.b))
            .collect();
        // A subset of a valid network's links stays valid.
        let restricted = match Network::new(
            network.name(),
            network.kind(),
            network.pops().to_vec(),
            links,
        ) {
            Ok(net) => net,
            Err(_) => unreachable!("restriction preserves validity"),
        };
        let restricted_planner = Planner::new(
            &restricted,
            planner.risk().clone(),
            riskroute_population::PopShares::from_shares(planner.shares().shares().to_vec()),
            planner.weights(),
        );
        restricted_planner.risk_route(src, dst)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::metric::{NodeRisk, RiskWeights};
    use riskroute_geo::GeoPoint;
    use riskroute_population::PopShares;
    use riskroute_topology::{NetworkKind, Pop};

    fn pop(name: &str, lat: f64, lon: f64) -> Pop {
        Pop {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    /// A 6-node ring: 2-connected, so every single failure is survivable.
    fn ring() -> Network {
        let coords = [
            (35.0, -100.0),
            (37.0, -98.0),
            (37.0, -94.0),
            (35.0, -92.0),
            (33.0, -94.0),
            (33.0, -98.0),
        ];
        let pops = coords
            .iter()
            .enumerate()
            .map(|(i, &(lat, lon))| pop(&format!("R{i}"), lat, lon))
            .collect();
        let links = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        Network::new("ring", NetworkKind::Regional, pops, links).unwrap()
    }

    fn planner(net: &Network) -> Planner {
        let n = net.pop_count();
        Planner::new(
            net,
            NodeRisk::new(vec![0.0; n], vec![0.0; n]),
            PopShares::from_shares(vec![1.0 / n as f64; n]),
            RiskWeights::historical_only(1e5),
        )
    }

    #[test]
    fn ring_is_coverable_with_enough_configurations() {
        let net = ring();
        // One isolated node at a time always works on a ring: k = 6
        // trivially; the greedy usually needs far fewer.
        let mrc = MrcConfigurations::build(&net, 4).expect("4 configs suffice");
        assert_eq!(mrc.config_count(), 4);
        // Every node is assigned exactly one configuration.
        let total: usize = (0..4).map(|c| mrc.isolated_by(c).len()).sum();
        assert_eq!(total, net.pop_count());
        // Each configuration's complement is connected.
        for c in 0..4 {
            let isolated: std::collections::HashSet<_> = mrc.isolated_by(c).into_iter().collect();
            let mut g = Graph::with_nodes(net.pop_count());
            for l in net.links() {
                if !isolated.contains(&l.a) && !isolated.contains(&l.b) {
                    g.add_edge(l.a, l.b, 1.0).unwrap();
                }
            }
            // Connectivity over the kept nodes only.
            let kept: Vec<_> = (0..net.pop_count())
                .filter(|v| !isolated.contains(v))
                .collect();
            for w in kept.windows(2) {
                assert!(
                    riskroute_graph::dijkstra::shortest_path(&g, w[0], w[1]).is_some(),
                    "config {c} complement disconnected"
                );
            }
        }
    }

    #[test]
    fn recovery_routes_avoid_the_failed_pop() {
        let net = ring();
        let p = planner(&net);
        let mrc = MrcConfigurations::build(&net, 4).unwrap();
        for failed in 0..net.pop_count() {
            for src in 0..net.pop_count() {
                for dst in 0..net.pop_count() {
                    if src == dst || src == failed || dst == failed {
                        continue;
                    }
                    let route = mrc
                        .route_around_failure(&p, &net, failed, src, dst)
                        .unwrap_or_else(|| panic!("({failed},{src},{dst}) unroutable"));
                    assert!(
                        !route.nodes.contains(&failed),
                        "recovery path {:?} transits failed PoP {failed}",
                        route.nodes
                    );
                }
            }
        }
    }

    #[test]
    fn failed_endpoints_are_unroutable() {
        let net = ring();
        let p = planner(&net);
        let mrc = MrcConfigurations::build(&net, 4).unwrap();
        assert!(mrc.route_around_failure(&p, &net, 0, 0, 3).is_none());
        assert!(mrc.route_around_failure(&p, &net, 3, 0, 3).is_none());
        assert!(mrc.route_around_failure(&p, &net, 1, 2, 2).is_none());
    }

    #[test]
    fn star_topology_is_uncoverable() {
        // A star's hub is an articulation point: isolating it disconnects
        // the leaves, so no k can cover it.
        let pops = vec![
            pop("Hub", 35.0, -95.0),
            pop("L1", 36.0, -95.0),
            pop("L2", 34.0, -95.0),
            pop("L3", 35.0, -96.0),
        ];
        let net = Network::new(
            "star",
            NetworkKind::Regional,
            pops,
            vec![(0, 1), (0, 2), (0, 3)],
        )
        .unwrap();
        assert!(MrcConfigurations::build(&net, 4).is_none());
    }

    #[test]
    fn recovery_paths_are_risk_aware() {
        // Put risk on one side of the ring: the recovery route between two
        // nodes adjacent to a failure should still prefer the safer arc
        // when both survive.
        let net = ring();
        let n = net.pop_count();
        let mut hist = vec![0.0; n];
        hist[4] = 5e-3; // southern arc is risky
        let p = Planner::new(
            &net,
            NodeRisk::new(hist, vec![0.0; n]),
            PopShares::from_shares(vec![1.0 / n as f64; n]),
            RiskWeights::historical_only(1e6),
        );
        let mrc = MrcConfigurations::build(&net, 4).unwrap();
        // Fail node 1 (northern arc); route 0 -> 2 must go the long way and
        // still avoid node 4 if its configuration permits… at minimum the
        // returned route avoids the failed node and is bit-risk scored.
        let route = mrc.route_around_failure(&p, &net, 1, 0, 2).unwrap();
        assert!(!route.nodes.contains(&1));
        assert!(route.bit_risk_miles >= route.bit_miles);
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn zero_k_panics() {
        let _ = MrcConfigurations::build(&ring(), 0);
    }
}
